//! The differential configuration matrix, plus injectable decoder bugs.
//!
//! [`run_case`] decodes one generated case through every configuration
//! the repository claims equivalent and returns the first divergence it
//! finds. Two kinds of claims are distinguished:
//!
//! * **semantic equivalence** (on-the-fly vs offline-composed oracle,
//!   the two-pass cost bound): compared under a small cost tolerance,
//!   because the two implementations sum the same weights in different
//!   association orders — and exact-cost ties may legitimately pick
//!   different transcripts;
//! * **bit identity** (OLT on/off, fresh vs warm scratch, `jobs`
//!   ∈ {1, N}, streaming vs whole-utterance, compressed models vs their
//!   `to_wfst()` round-trips): words, cost *bits*, and search statistics
//!   must match exactly.
//!
//! [`Mutation`] wraps the LM source with a known-broken variant so the
//! campaign's detection and shrinking machinery can be exercised on a
//! bug we control; `Mutation::OltAliasing` reproduces exactly the
//! hardware-faithful OLT hazard DESIGN.md §7 documents the software
//! table avoiding (a memo hit trusted without the full-key compare).

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};

use unfold::decode_batch;
use unfold_am::acoustic::FRAME_SECONDS;
use unfold_am::Utterance;
use unfold_bias::{BiasedLm, BiasingFst, OfflineBiasedLm};
use unfold_compress::{Bundle, BundleError, BundleWriter, SharedAm, SharedLm};
use unfold_decoder::{
    decode_pipelined, oracle_wer, AcousticScorer, DecodeConfig, DecodeKernel, DecodeResult,
    DecodeScratch, FrameInput, FullyComposedDecoder, LmSource, NullSink, OtfDecoder, OtfStream,
    PrecomputedScorer, ScoreError, StreamSession, TraceRecorder, TwoPassDecoder, WorkScratch,
};
use unfold_sim::{Accelerator, AcceleratorConfig};
use unfold_wfst::{compose_am_lm, Arc, ComposeOptions, Label, StateId, Wfst, EPSILON};

use crate::case::{CaseModels, CaseSpec};

/// Cost tolerance for the semantic-equivalence checks: the decoders sum
/// identical weights in different association orders, so exact f32
/// equality is not expected there (the bit-identity checks are exact).
pub const COST_TOLERANCE: f32 = 1e-2;

/// Which equivalence a divergence broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckId {
    /// On-the-fly vs offline-composed oracle.
    Oracle,
    /// SoA vs legacy frame kernel: result *and* ordered trace-event
    /// bit identity (implies identical OLT install/evict order).
    SoaIdentity,
    /// OLT sizes {0, small, large} bit identity.
    OltIdentity,
    /// Fresh vs warm `DecodeScratch` bit identity.
    ScratchReuse,
    /// Streaming vs whole-utterance bit identity (result and trace).
    Streaming,
    /// `decode_batch` jobs ∈ {1, N} bit identity.
    Jobs,
    /// Compressed models vs their `to_wfst()` round-trips.
    CompressRoundtrip,
    /// Owned compressed models vs zero-copy views of an mmap-ed
    /// `.unfb` bundle (also hosts the stale-checksum detection).
    MmapIdentity,
    /// Two-pass determinism and rescoring cost bound.
    TwoPass,
    /// Trace replay through the accelerator simulator is deterministic.
    SimReplay,
    /// Exact word lattices: the recorded-tape lattice's path set and
    /// costs against exhaustive enumeration over the offline-composed
    /// WFST, 1-best-in-lattice, lattice-beam respect, oracle-WER
    /// monotonicity in the lattice beam, and lattice bit identity
    /// across kernels, OLT sizes, warm scratch, and streaming.
    LatticeOracle,
    /// Personalized biasing: the on-the-fly `base LM x biasing FST`
    /// union composition against the eagerly composed biased
    /// reference, bit for bit (words, cost bits, word frames).
    BiasOracle,
    /// Two-stage pipelined decode (scoring stage feeding search
    /// through a bounded ring) vs the lockstep baseline: words, cost
    /// bits, full stats, and the ordered trace-event stream must be
    /// bit-identical for every `(scorer_batch, max_search_lag)`
    /// pairing swept. This is where `Mutation::StaleLag` surfaces.
    PipelineIdentity,
    /// A check panicked instead of returning.
    Panic,
}

impl CheckId {
    /// Stable kebab-case name (used in repro files and file names).
    pub fn name(self) -> &'static str {
        match self {
            CheckId::Oracle => "oracle",
            CheckId::SoaIdentity => "soa-identity",
            CheckId::OltIdentity => "olt-identity",
            CheckId::ScratchReuse => "scratch-reuse",
            CheckId::Streaming => "streaming",
            CheckId::Jobs => "jobs",
            CheckId::CompressRoundtrip => "compress-roundtrip",
            CheckId::MmapIdentity => "mmap-identity",
            CheckId::TwoPass => "two-pass",
            CheckId::SimReplay => "sim-replay",
            CheckId::LatticeOracle => "lattice-oracle",
            CheckId::BiasOracle => "bias-oracle",
            CheckId::PipelineIdentity => "pipeline-identity",
            CheckId::Panic => "panic",
        }
    }

    /// Parses [`CheckId::name`] output.
    pub fn parse(s: &str) -> Option<CheckId> {
        [
            CheckId::Oracle,
            CheckId::SoaIdentity,
            CheckId::OltIdentity,
            CheckId::ScratchReuse,
            CheckId::Streaming,
            CheckId::Jobs,
            CheckId::CompressRoundtrip,
            CheckId::MmapIdentity,
            CheckId::TwoPass,
            CheckId::SimReplay,
            CheckId::LatticeOracle,
            CheckId::BiasOracle,
            CheckId::PipelineIdentity,
            CheckId::Panic,
        ]
        .into_iter()
        .find(|c| c.name() == s)
    }
}

impl std::fmt::Display for CheckId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One broken equivalence: which check failed and how.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// The check that failed.
    pub check: CheckId,
    /// Human-readable description of the mismatch.
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.check, self.detail)
    }
}

/// An intentionally-injected decoder bug, applied to the on-the-fly
/// LM-lookup path (the offline-composed oracle never sees it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mutation {
    /// No bug: the LM source is passed through unchanged.
    #[default]
    None,
    /// A small lookup memo indexed by `(state ^ word)` that trusts any
    /// occupied slot *without comparing the full key* — the exact
    /// aliasing hazard of a tag-only direct-mapped OLT (DESIGN.md §7).
    /// Aliased hits return another `(state, word)`'s destination and
    /// weight.
    OltAliasing,
    /// Back-off arcs are traversed at zero cost, silently dropping the
    /// back-off penalties the n-gram model assigns.
    FreeBackoff,
    /// One payload byte of the packed `.unfb` bundle is flipped
    /// *without* updating the section checksum — a producer writing
    /// garbage, a torn copy, bit rot. The checksum machinery must
    /// reject the bundle with a typed error (never a panic) on *both*
    /// open paths: the eager owned open, and the lazy mapped open no
    /// later than `SharedAm`/`SharedLm` binding. The mmap-identity
    /// check reports either the rejections or — worse — that the
    /// corruption sailed through.
    StaleChecksum,
    /// The word-lattice builder skips lattice-beam pruning (builds with
    /// an effectively infinite beam) while still claiming the
    /// configured beam. Not an LM mutation — the decode itself is
    /// untouched, so every bit-identity check still passes and only
    /// the lattice-oracle check's `max_path_slack` assertion can catch
    /// it.
    LatticeBeamSkip,
    /// The biasing join keeps the composite destination state but
    /// drops the bias delta, returning the unmodified base weight — a
    /// personalization layer that tracks phrase progress yet never
    /// pays out (or claws back) a bonus. The decode itself stays
    /// deterministic, so every bit-identity check still passes; only
    /// the bias-oracle comparison against the offline-composed biased
    /// reference can catch it.
    BiasBonusSkip,
    /// The pipelined scorer's ring hand-off is off by one: each score
    /// request returns the *previous* frame's row (the classic shared
    /// -buffer bug — search consuming a stale slot the scoring stage
    /// has not refilled). The stale scorer exists only inside the
    /// pipeline-identity check, so every other check still passes;
    /// only the pipelined-vs-lockstep comparison can catch it.
    StaleLag,
}

impl Mutation {
    /// Stable kebab-case name (used in repro files and the CLI).
    pub fn name(self) -> &'static str {
        match self {
            Mutation::None => "none",
            Mutation::OltAliasing => "olt-aliasing",
            Mutation::FreeBackoff => "free-backoff",
            Mutation::StaleChecksum => "stale-checksum",
            Mutation::LatticeBeamSkip => "lattice-beam-skip",
            Mutation::BiasBonusSkip => "bias-bonus-skip",
            Mutation::StaleLag => "stale-lag",
        }
    }

    /// Parses [`Mutation::name`] output.
    pub fn parse(s: &str) -> Option<Mutation> {
        match s {
            "none" => Some(Mutation::None),
            "olt-aliasing" => Some(Mutation::OltAliasing),
            "free-backoff" => Some(Mutation::FreeBackoff),
            "stale-checksum" => Some(Mutation::StaleChecksum),
            "lattice-beam-skip" => Some(Mutation::LatticeBeamSkip),
            "bias-bonus-skip" => Some(Mutation::BiasBonusSkip),
            "stale-lag" => Some(Mutation::StaleLag),
            _ => None,
        }
    }
}

/// Slots in the aliasing memo: tiny on purpose, so even minimized
/// models (a handful of LM states) collide.
const MEMO_SLOTS: usize = 8;

/// An [`LmSource`] wrapper applying a [`Mutation`] to a [`Wfst`] LM.
/// Each decode gets a fresh wrapper, so individual decodes stay
/// deterministic and the bit-identity checks still pass — only the
/// comparison against the composed oracle exposes the bug.
struct MutatedLm<'a> {
    inner: &'a Wfst,
    mutation: Mutation,
    memo: RefCell<[Option<(StateId, f32)>; MEMO_SLOTS]>,
}

impl<'a> MutatedLm<'a> {
    fn new(inner: &'a Wfst, mutation: Mutation) -> Self {
        MutatedLm {
            inner,
            mutation,
            memo: RefCell::new([None; MEMO_SLOTS]),
        }
    }
}

impl LmSource for MutatedLm<'_> {
    fn start(&self) -> StateId {
        LmSource::start(self.inner)
    }

    fn num_states(&self) -> usize {
        LmSource::num_states(self.inner)
    }

    fn state_addr(&self, s: StateId) -> u64 {
        LmSource::state_addr(self.inner, s)
    }

    fn lookup_word_into(
        &self,
        s: StateId,
        word: Label,
        probes: &mut Vec<unfold_decoder::sources::Fetch>,
    ) -> Option<Arc> {
        if self.mutation == Mutation::OltAliasing {
            let slot = ((s ^ word) as usize) % MEMO_SLOTS;
            if let Some((dest, weight)) = self.memo.borrow()[slot] {
                // BUG under test: the occupied slot is trusted without
                // the full-key compare, so an aliased (state, word)
                // entry is returned as if it matched.
                return Some(Arc::new(word, word, weight, dest));
            }
            let found = self.inner.lookup_word_into(s, word, probes);
            if let Some(arc) = found {
                self.memo.borrow_mut()[slot] = Some((arc.nextstate, arc.weight));
            }
            return found;
        }
        self.inner.lookup_word_into(s, word, probes)
    }

    fn backoff(&self, s: StateId) -> Option<(Arc, unfold_decoder::sources::Fetch)> {
        let (arc, fetch) = LmSource::backoff(self.inner, s)?;
        match self.mutation {
            Mutation::FreeBackoff => {
                Some((Arc::new(arc.ilabel, arc.olabel, 0.0, arc.nextstate), fetch))
            }
            _ => Some((arc, fetch)),
        }
    }
}

/// The [`Mutation::BiasBonusSkip`] wrapper: delegates every
/// [`LmSource`] method — including the memo-composition hooks, so the
/// composite state tracking stays intact — but its `memo_join` throws
/// the joined weight away and returns the unbiased base weight.
struct SkipBonus<'a, L: LmSource>(&'a L);

impl<L: LmSource> LmSource for SkipBonus<'_, L> {
    fn start(&self) -> StateId {
        self.0.start()
    }

    fn num_states(&self) -> usize {
        self.0.num_states()
    }

    fn state_addr(&self, s: StateId) -> u64 {
        self.0.state_addr(s)
    }

    fn lookup_word_into(
        &self,
        s: StateId,
        word: Label,
        probes: &mut Vec<unfold_decoder::sources::Fetch>,
    ) -> Option<Arc> {
        self.0.lookup_word_into(s, word, probes)
    }

    fn backoff(&self, s: StateId) -> Option<(Arc, unfold_decoder::sources::Fetch)> {
        self.0.backoff(s)
    }

    fn memo_split(&self, s: StateId) -> (StateId, u32) {
        self.0.memo_split(s)
    }

    fn memo_pack(&self, ctx: u32, base: StateId) -> StateId {
        self.0.memo_pack(ctx, base)
    }

    fn memo_join(&self, ctx: u32, word: Label, dest: StateId, weight: f32) -> (StateId, f32) {
        // BUG under test: the phrase walk advances (composite dest is
        // kept) but the bias delta is dropped on the floor.
        let (joined, _biased) = self.0.memo_join(ctx, word, dest, weight);
        (joined, weight)
    }

    fn has_memo_ctx(&self) -> bool {
        self.0.has_memo_ctx()
    }

    fn validation_addr(&self) -> usize {
        self.0.validation_addr()
    }
}

/// The [`Mutation::StaleLag`] wrapper: a passthrough scorer whose
/// hand-off is off by one — every request after the first returns the
/// *previous* frame's row. Deliberately stateful, violating the
/// [`AcousticScorer`] purity contract the pipeline's bit-identity
/// argument rests on; the divergence it plants is exactly what a
/// search stage reading a stale shared-buffer slot would decode.
#[derive(Debug)]
struct StaleLagScorer {
    inner: PrecomputedScorer,
    prev: std::sync::Mutex<Option<Vec<f32>>>,
}

impl StaleLagScorer {
    fn new(width: usize) -> Self {
        StaleLagScorer {
            inner: PrecomputedScorer::new(width),
            prev: std::sync::Mutex::new(None),
        }
    }
}

impl AcousticScorer for StaleLagScorer {
    fn num_pdfs(&self) -> usize {
        self.inner.num_pdfs()
    }

    fn score_into(&self, frame: &FrameInput, out: &mut Vec<f32>) -> Result<(), ScoreError> {
        let mut current = Vec::new();
        self.inner.score_into(frame, &mut current)?;
        // BUG under test: the slot handed to search is the one scored
        // for the previous frame (the first frame scores itself).
        let mut prev = self.prev.lock().expect("stale-lag slot");
        let stale = prev.replace(current.clone()).unwrap_or(current);
        out.clear();
        out.extend_from_slice(&stale);
        Ok(())
    }
}

/// `true` when two best-path costs agree within [`COST_TOLERANCE`]
/// (both-infinite counts as agreement: neither decode completed).
fn costs_close(a: f32, b: f32) -> bool {
    if a.is_infinite() && b.is_infinite() {
        return true;
    }
    (a - b).abs() <= COST_TOLERANCE
}

/// Exact comparison for the bit-identity family: words, cost bits, and
/// the full search statistics.
fn bit_diff(label: &str, a: &DecodeResult, b: &DecodeResult) -> Option<String> {
    if a.words != b.words {
        return Some(format!("{label}: words {:?} vs {:?}", a.words, b.words));
    }
    if a.cost.to_bits() != b.cost.to_bits() {
        return Some(format!("{label}: cost bits {} vs {}", a.cost, b.cost));
    }
    if a.stats != b.stats {
        return Some(format!("{label}: stats {:?} vs {:?}", a.stats, b.stats));
    }
    None
}

/// Comparison for configurations whose fetch counts legitimately differ
/// (OLT hits skip probes; compressed lookups probe differently): words
/// and cost bits exact, search-shape statistics exact, fetch counters
/// ignored.
fn search_diff(label: &str, a: &DecodeResult, b: &DecodeResult) -> Option<String> {
    if a.words != b.words {
        return Some(format!("{label}: words {:?} vs {:?}", a.words, b.words));
    }
    if a.cost.to_bits() != b.cost.to_bits() {
        return Some(format!("{label}: cost bits {} vs {}", a.cost, b.cost));
    }
    let sa = &a.stats;
    let sb = &b.stats;
    if (sa.frames, sa.tokens_created, sa.lm_lookups, sa.backoff_hops)
        != (sb.frames, sb.tokens_created, sb.lm_lookups, sb.backoff_hops)
    {
        return Some(format!(
            "{label}: search shape (frames/tokens/lookups/hops) \
             ({}/{}/{}/{}) vs ({}/{}/{}/{})",
            sa.frames,
            sa.tokens_created,
            sa.lm_lookups,
            sa.backoff_hops,
            sb.frames,
            sb.tokens_created,
            sb.lm_lookups,
            sb.backoff_hops
        ));
    }
    None
}

/// Runs one case through the full configuration matrix and returns the
/// first divergence, or `None` when every equivalence held.
pub fn run_case(spec: &CaseSpec, mutation: Mutation) -> Option<Divergence> {
    run_case_filtered(spec, mutation, None)
}

/// [`run_case`] restricted to a single check (`None` runs them all).
/// The baseline decode always runs; every other configuration is built
/// only when its check is selected, so a `--check lattice-oracle`
/// campaign does not pay for the rest of the matrix.
pub fn run_case_filtered(
    spec: &CaseSpec,
    mutation: Mutation,
    only: Option<CheckId>,
) -> Option<Divergence> {
    let want = |c: CheckId| only.is_none_or(|o| o == c);
    let m = CaseModels::build(spec);
    let cfg = DecodeConfig::builder()
        .beam(spec.beam)
        .max_active(spec.max_active)
        .preemptive_pruning(true)
        .olt_entries(0)
        .build()
        .expect("case spec yields a valid config");
    let dec = OtfDecoder::new(cfg);
    let scores = &m.utt.scores;

    // Baseline on-the-fly decode, trace recorded for the streaming and
    // simulator checks.
    let mut base_rec = TraceRecorder::new();
    let baseline = {
        let lm = MutatedLm::new(&m.lm_fst, mutation);
        dec.decode(&m.am.fst, &lm, scores, &mut base_rec)
    };

    // The offline-composed graph serves both the 1-best oracle (check
    // 1) and the lattice oracle's exhaustive path enumeration (check 9).
    let composed = (want(CheckId::Oracle) || want(CheckId::LatticeOracle))
        .then(|| compose_am_lm(&m.am.fst, &m.lm_fst, ComposeOptions::default()));

    // 1. On-the-fly vs offline-composed oracle (semantic equivalence;
    //    a transcript difference at equal cost is an accepted tie).
    if want(CheckId::Oracle) {
        let composed = composed.as_ref().expect("composed graph built above");
        let oracle = FullyComposedDecoder::new(cfg).decode(composed, scores, &mut NullSink);
        if !costs_close(baseline.cost, oracle.cost) {
            return Some(Divergence {
                check: CheckId::Oracle,
                detail: format!(
                    "otf cost {} words {:?} vs composed cost {} words {:?}",
                    baseline.cost, baseline.words, oracle.cost, oracle.words
                ),
            });
        }
    }

    // 2. SoA vs legacy kernel: the strongest claim in the matrix —
    //    words, cost bits, full stats, and the *ordered* trace-event
    //    stream must all match, whichever kernel the baseline ran.
    if want(CheckId::SoaIdentity) {
        let other = match cfg.kernel {
            DecodeKernel::Legacy => DecodeKernel::Soa,
            DecodeKernel::Soa => DecodeKernel::Legacy,
        };
        let lm = MutatedLm::new(&m.lm_fst, mutation);
        let mut rec = TraceRecorder::new();
        let alt = OtfDecoder::new(
            cfg.to_builder()
                .kernel(other)
                .build()
                .expect("case spec yields a valid config"),
        )
        .decode(&m.am.fst, &lm, scores, &mut rec);
        if let Some(d) = bit_diff("soa vs legacy kernel", &alt, &baseline) {
            return Some(Divergence {
                check: CheckId::SoaIdentity,
                detail: d,
            });
        }
        if rec.events() != base_rec.events() {
            return Some(Divergence {
                check: CheckId::SoaIdentity,
                detail: format!(
                    "kernel trace diverged: {} events ({other:?}) vs {} ({:?})",
                    rec.len(),
                    base_rec.len(),
                    cfg.kernel
                ),
            });
        }
    }

    // 3. OLT sizes {small, large} vs disabled: bit identity of the
    //    search, fetch savings allowed.
    for entries in [spec.olt_small, spec.olt_large] {
        if !want(CheckId::OltIdentity) {
            break;
        }
        let on = {
            let lm = MutatedLm::new(&m.lm_fst, mutation);
            OtfDecoder::new(
                cfg.to_builder()
                    .olt_entries(entries)
                    .build()
                    .expect("case spec yields a valid config"),
            )
            .decode(&m.am.fst, &lm, scores, &mut NullSink)
        };
        if let Some(d) = search_diff(&format!("olt_entries={entries}"), &on, &baseline) {
            return Some(Divergence {
                check: CheckId::OltIdentity,
                detail: d,
            });
        }
        if on.stats.lm_fetches > baseline.stats.lm_fetches {
            return Some(Divergence {
                check: CheckId::OltIdentity,
                detail: format!(
                    "olt_entries={entries}: {} lm fetches, more than the {} without a table",
                    on.stats.lm_fetches, baseline.stats.lm_fetches
                ),
            });
        }
    }

    // 3. Warm scratch: the second decode through a reused scratch must
    //    be bit-identical to the fresh-scratch baseline.
    if want(CheckId::ScratchReuse) {
        let mut scratch = DecodeScratch::new();
        let lm = MutatedLm::new(&m.lm_fst, mutation);
        let _first = dec.decode_with(&m.am.fst, &lm, scores, &mut scratch, &mut NullSink);
        let lm = MutatedLm::new(&m.lm_fst, mutation);
        let warm = dec.decode_with(&m.am.fst, &lm, scores, &mut scratch, &mut NullSink);
        if let Some(d) = bit_diff("warm scratch", &warm, &baseline) {
            return Some(Divergence {
                check: CheckId::ScratchReuse,
                detail: d,
            });
        }
    }

    // 4. Streaming vs whole-utterance: result and trace bit identity.
    if want(CheckId::Streaming) {
        let lm = MutatedLm::new(&m.lm_fst, mutation);
        let mut rec = TraceRecorder::new();
        let mut stream = OtfStream::new(cfg, &m.am.fst, &lm, &mut rec);
        for t in 0..scores.num_frames() {
            stream.push_frame(scores.frame(t), &mut rec);
        }
        let streamed = stream.finish_with(&mut rec);
        if let Some(d) = bit_diff("streaming", &streamed, &baseline) {
            return Some(Divergence {
                check: CheckId::Streaming,
                detail: d,
            });
        }
        if rec.events() != base_rec.events() {
            return Some(Divergence {
                check: CheckId::Streaming,
                detail: format!(
                    "trace diverged: {} streamed events vs {} batch events",
                    rec.len(),
                    base_rec.len()
                ),
            });
        }
    }

    // 5. decode_batch jobs ∈ {1, N}: every per-utterance result
    //    bit-identical, and the pool never over-spawns.
    if want(CheckId::Jobs) {
        let batch = m.batch(spec, 2);
        let decode_one = |_i: usize, utt: &Utterance, scratch: &mut DecodeScratch| {
            let lm = MutatedLm::new(&m.lm_fst, mutation);
            let mut sink = NullSink;
            dec.decode_with(&m.am.fst, &lm, &utt.scores, scratch, &mut sink)
        };
        let (serial, _) = decode_batch(&batch, 1, decode_one);
        let (parallel, pool) = decode_batch(&batch, batch.len(), decode_one);
        if pool.workers > batch.len() {
            return Some(Divergence {
                check: CheckId::Jobs,
                detail: format!("{} workers for {} utterances", pool.workers, batch.len()),
            });
        }
        for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
            if let Some(d) = bit_diff(&format!("jobs utt {i}"), b, a) {
                return Some(Divergence {
                    check: CheckId::Jobs,
                    detail: d,
                });
            }
        }
    }

    // 6. Compressed models vs their to_wfst() round-trips: both sides
    //    serve the same quantized weights, so the decodes must agree
    //    bit for bit (probe counts differ by layout and are ignored).
    if want(CheckId::CompressRoundtrip) {
        let comp = dec.decode(&m.cam, &m.clm, scores, &mut NullSink);
        let am_rt = m.cam.to_wfst();
        let lm_rt = m.clm.to_wfst();
        let roundtrip = dec.decode(&am_rt, &lm_rt, scores, &mut NullSink);
        if let Some(d) = search_diff("compressed vs to_wfst round-trip", &comp, &roundtrip) {
            return Some(Divergence {
                check: CheckId::CompressRoundtrip,
                detail: d,
            });
        }
    }

    // 6b. Zero-copy bundle identity: pack the compressed models into a
    //     `.unfb`, mmap it back, and decode through the borrowed views
    //     — words, cost bits, and the full stats must match the owned
    //     compressed decode bit for bit. Under `StaleChecksum` the
    //     bundle is corrupted after packing and *both* open paths must
    //     reject it typed: the eager owned open, and the lazy mapped
    //     open no later than `SharedAm::new`/`SharedLm::new` binding
    //     (after which decode bytes are reachable). The typed rejection
    //     (or its absence) is the reported divergence.
    if want(CheckId::MmapIdentity) {
        let comp = dec.decode(&m.cam, &m.clm, scores, &mut NullSink);
        let mut w = BundleWriter::new();
        w.add_am(&m.cam);
        w.add_lm("default", &m.clm);
        let mut bytes = w.finish().expect("well-formed models pack");
        static BUNDLE_SERIAL: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "unfold-verify-{}-{}.unfb",
            std::process::id(),
            BUNDLE_SERIAL.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        if mutation == Mutation::StaleChecksum {
            // Flip a payload byte of the last section; its table CRC
            // is now stale.
            let last = bytes.len() - 1;
            bytes[last] ^= 0x40;
            // The eager owned open must reject it outright...
            let owned_section = match Bundle::from_bytes(bytes.clone()) {
                Err(BundleError::ChecksumMismatch(section)) => section,
                Err(e) => {
                    return Some(Divergence {
                        check: CheckId::MmapIdentity,
                        detail: format!("stale checksum rejected with the wrong error: {e}"),
                    });
                }
                Ok(_) => {
                    return Some(Divergence {
                        check: CheckId::MmapIdentity,
                        detail: "stale checksum NOT detected: corrupt bundle opened clean".into(),
                    });
                }
            };
            // ...and the mapped path must reject it at model binding:
            // `Bundle::open_mmap` checks only the section table, but
            // `SharedAm::new`/`SharedLm::new` stream each payload's CRC
            // before any decode path can see the bytes.
            if let Err(e) = std::fs::write(&path, &bytes) {
                return Some(Divergence {
                    check: CheckId::MmapIdentity,
                    detail: format!("bundle temp write failed: {e}"),
                });
            }
            let mapped = (|| -> Result<(), BundleError> {
                let bundle = std::sync::Arc::new(Bundle::open_mmap(&path)?);
                SharedAm::new(std::sync::Arc::clone(&bundle))?;
                SharedLm::new(bundle, "default")?;
                Ok(())
            })();
            std::fs::remove_file(&path).ok();
            return Some(match mapped {
                Err(BundleError::ChecksumMismatch(section)) => Divergence {
                    check: CheckId::MmapIdentity,
                    detail: format!(
                        "stale checksum on section '{owned_section}' rejected at owned open \
                         and at mmap model binding ('{section}')"
                    ),
                },
                Err(e) => Divergence {
                    check: CheckId::MmapIdentity,
                    detail: format!(
                        "stale checksum: mmap model binding rejected with the wrong error: {e}"
                    ),
                },
                Ok(()) => Divergence {
                    check: CheckId::MmapIdentity,
                    detail: "stale checksum NOT detected on the mmap path: \
                             corrupt payload bound clean"
                        .into(),
                },
            });
        }
        if let Err(e) = std::fs::write(&path, &bytes) {
            return Some(Divergence {
                check: CheckId::MmapIdentity,
                detail: format!("bundle temp write failed: {e}"),
            });
        }
        let mapped = (|| -> Result<DecodeResult, unfold_compress::BundleError> {
            let bundle = std::sync::Arc::new(Bundle::open_mmap(&path)?);
            let am = SharedAm::new(std::sync::Arc::clone(&bundle))?;
            let lm = SharedLm::new(bundle, "default")?;
            Ok(dec.decode(&am, &lm, scores, &mut NullSink))
        })();
        std::fs::remove_file(&path).ok();
        match mapped {
            Ok(mapped) => {
                if let Some(d) = bit_diff("mmap bundle views", &mapped, &comp) {
                    return Some(Divergence {
                        check: CheckId::MmapIdentity,
                        detail: d,
                    });
                }
            }
            Err(e) => {
                return Some(Divergence {
                    check: CheckId::MmapIdentity,
                    detail: format!("clean bundle failed to open mapped: {e}"),
                });
            }
        }
    }

    // 7. Two-pass: bitwise deterministic across runs; and under a wide
    //    beam on the unrounded model, its exact full-LM rescore of a
    //    first-pass candidate can never beat the one-pass optimum.
    if want(CheckId::TwoPass) {
        let tp = TwoPassDecoder::new(cfg, 8);
        let a = tp.decode(&m.am.fst, &m.lm_model, scores, &mut NullSink);
        let b = tp.decode(&m.am.fst, &m.lm_model, scores, &mut NullSink);
        if let Some(d) = bit_diff("two-pass determinism", &b.result, &a.result) {
            return Some(Divergence {
                check: CheckId::TwoPass,
                detail: d,
            });
        }
        let bound_applies = mutation == Mutation::None
            && spec.weight_grid == 0.0
            && spec.beam >= 12.0
            && spec.max_active >= 1000
            && baseline.cost.is_finite()
            && a.result.cost.is_finite();
        if bound_applies && a.result.cost < baseline.cost - COST_TOLERANCE {
            return Some(Divergence {
                check: CheckId::TwoPass,
                detail: format!(
                    "rescored cost {} beats the one-pass optimum {}",
                    a.result.cost, baseline.cost
                ),
            });
        }
    }

    // 8. Trace replay through the accelerator simulator twice: the
    //    SimReports must be equal (the simulator is deterministic in
    //    the trace). Zero-frame utterances carry no audio, and
    //    `Accelerator::finish` documents a positive-audio contract, so
    //    they are skipped here.
    if want(CheckId::SimReplay) && scores.num_frames() > 0 {
        let audio = scores.num_frames() as f64 * FRAME_SECONDS;
        let replay = || {
            let mut acc = Accelerator::new(AcceleratorConfig::unfold());
            base_rec.replay(&mut acc);
            acc.finish(audio)
        };
        let r1 = replay();
        let r2 = replay();
        if r1 != r2 {
            return Some(Divergence {
                check: CheckId::SimReplay,
                detail: "replaying the same trace produced different SimReports".into(),
            });
        }
    }

    // 8b. Pipeline identity: the two-stage (scoring → search) decode
    //     over a bounded ring must reproduce the lockstep baseline —
    //     words, cost bits, full stats, and the ordered trace-event
    //     stream — for every (scorer_batch, max_search_lag) pairing
    //     swept, including the strictly synchronous lag-0 hand-off.
    //     Under `Mutation::StaleLag` the scorer returns the previous
    //     frame's row; only this comparison can see it.
    if want(CheckId::PipelineIdentity) {
        if let Some(d) = pipeline_identity_check(mutation, &m, cfg, &baseline, &base_rec) {
            return Some(d);
        }
    }

    // 9. Lattice oracle: build the exact word lattice from the
    //    recorded expansion tape and pin it four ways — the decode it
    //    rides on is bit-identical to the plain decode, its 1-best
    //    reproduces the baseline, no surviving arc exceeds the claimed
    //    lattice beam, its path set is sound (and, under a wide clean
    //    beam, complete) against exhaustive enumeration over the
    //    offline-composed graph, its oracle WER is monotone in the
    //    lattice beam, and the lattice itself is bit-identical across
    //    kernels, OLT sizes, warm scratch, and streaming.
    if want(CheckId::LatticeOracle) {
        if let Some(d) = lattice_oracle_check(
            spec,
            mutation,
            &m,
            cfg,
            &baseline,
            composed.as_ref().expect("composed graph built above"),
        ) {
            return Some(d);
        }
    }

    // 10. Bias oracle: a per-case personalized decode — the on-the-fly
    //     union composition over the case LM vs the eagerly composed
    //     biased reference, bit for bit, plus two-layer-cache bit
    //     identity. This is where `Mutation::BiasBonusSkip` surfaces.
    if want(CheckId::BiasOracle) {
        if let Some(d) = bias_oracle_check(spec, mutation, &m, cfg) {
            return Some(d);
        }
    }

    None
}

/// The `(scorer_batch, max_search_lag)` pairings the pipeline-identity
/// check sweeps: strictly synchronous hand-off, a ragged small batch
/// against a shallow ring, and deep batches against a deep ring.
const PIPELINE_GRID: [(usize, usize); 3] = [(1, 0), (3, 2), (8, 8)];

fn pipeline_identity_check(
    mutation: Mutation,
    m: &CaseModels,
    cfg: DecodeConfig,
    baseline: &DecodeResult,
    base_rec: &TraceRecorder,
) -> Option<Divergence> {
    let div = |detail: String| {
        Some(Divergence {
            check: CheckId::PipelineIdentity,
            detail,
        })
    };
    let scores = &m.utt.scores;
    let width = if scores.num_frames() > 0 {
        scores.frame(0).len()
    } else {
        0
    };
    let frames: Vec<FrameInput> = (0..scores.num_frames())
        .map(|t| FrameInput::Scores(scores.frame(t).to_vec()))
        .collect();
    for (batch, lag) in PIPELINE_GRID {
        let pcfg = cfg
            .to_builder()
            .scorer_batch(batch)
            .max_search_lag(lag)
            .build()
            .expect("pipeline grid yields a valid config");
        // A fresh scorer per pairing: the planted stale-lag slot is
        // per-decode state, like every other mutation wrapper.
        let passthrough = PrecomputedScorer::new(width);
        let stale = StaleLagScorer::new(width);
        let scorer: &dyn AcousticScorer = if mutation == Mutation::StaleLag {
            &stale
        } else {
            &passthrough
        };
        let lm = MutatedLm::new(&m.lm_fst, mutation);
        let mut rec = TraceRecorder::new();
        let res = match decode_pipelined(pcfg, &m.am.fst, &lm, scorer, &frames, &mut rec) {
            Ok(res) => res,
            Err(e) => {
                return div(format!(
                    "batch={batch} lag={lag}: scorer refused a frame: {e}"
                ));
            }
        };
        if let Some(d) = bit_diff(
            &format!("pipelined batch={batch} lag={lag}"),
            &res,
            baseline,
        ) {
            return div(d);
        }
        if rec.events() != base_rec.events() {
            return div(format!(
                "batch={batch} lag={lag}: trace diverged: {} pipelined events vs {} lockstep",
                rec.len(),
                base_rec.len()
            ));
        }
    }
    None
}

/// The lattice-beam the lattice-oracle check builds (and claims) for a
/// spec: half the search beam, clamped into a range where both the
/// soundness enumeration and the monotonicity comparison stay cheap.
fn lattice_oracle_beam(spec: &CaseSpec) -> f32 {
    (spec.beam * 0.5).clamp(1.0, 6.0)
}

/// Heap-pop budget for the lattice-side path enumerations.
const LATTICE_PATH_BUDGET: usize = 200_000;
/// Pop budget for the exhaustive composed-graph enumeration.
const GRAPH_PATH_BUDGET: usize = 400_000;

fn lattice_oracle_check(
    spec: &CaseSpec,
    mutation: Mutation,
    m: &CaseModels,
    cfg: DecodeConfig,
    baseline: &DecodeResult,
    composed: &Wfst,
) -> Option<Divergence> {
    let div = |detail: String| {
        Some(Divergence {
            check: CheckId::LatticeOracle,
            detail,
        })
    };
    let scores = &m.utt.scores;
    let claimed = lattice_oracle_beam(spec);
    // The planted bug: build with an effectively infinite beam while
    // still claiming `claimed`.
    let built = |b: f32| {
        if mutation == Mutation::LatticeBeamSkip {
            1e9
        } else {
            b
        }
    };
    let lat_cfg = cfg
        .to_builder()
        .lattice_beam(built(claimed))
        .build()
        .expect("case spec yields a valid config");
    let lat_dec = OtfDecoder::new(lat_cfg);
    let (lat_res, lattice) = {
        let lm = MutatedLm::new(&m.lm_fst, mutation);
        lat_dec.decode_lattice(&m.am.fst, &lm, scores, &mut NullSink)
    };

    // Recording the expansion tape must not perturb the search.
    if let Some(d) = bit_diff("decode_lattice vs decode", &lat_res, baseline) {
        return div(d);
    }
    if lat_res.is_complete() == lattice.is_empty() {
        return div(format!(
            "complete={} but the lattice has {} final nodes",
            lat_res.is_complete(),
            lattice.finals().len()
        ));
    }
    if !lat_res.is_complete() {
        return None; // nothing reached a final state; no lattice to pin
    }

    // (a) 1-best-in-lattice: the lattice's best path reproduces the
    //     Viterbi result. Under a coarse weight grid equal-cost paths
    //     tie and the tie-break orders differ, so the transcript
    //     compare is gated the same way the oracle check treats ties.
    let nb = lattice.nbest(1);
    match nb.first() {
        Some((words, cost)) => {
            if !costs_close(*cost, baseline.cost)
                || !costs_close(lattice.best_cost(), baseline.cost)
            {
                return div(format!(
                    "lattice best cost {} / 1-best cost {} vs decode cost {}",
                    lattice.best_cost(),
                    cost,
                    baseline.cost
                ));
            }
            if spec.weight_grid == 0.0 && *words != baseline.words {
                return div(format!(
                    "lattice 1-best {words:?} vs decode words {:?}",
                    baseline.words
                ));
            }
        }
        None => return div("complete decode but nbest(1) is empty".into()),
    }

    // (b) lattice-beam respect: no surviving arc lies on a path worse
    //     than best + claimed beam. This is the assertion that catches
    //     `Mutation::LatticeBeamSkip`.
    let slack = lattice.max_path_slack();
    if slack > claimed + COST_TOLERANCE {
        return div(format!(
            "max path slack {slack} exceeds the claimed lattice beam {claimed}"
        ));
    }

    // (c) determinism: the lattice is bit-identical whichever kernel,
    //     OLT size, scratch history, or frame-delivery mode produced
    //     it.
    {
        let other = match cfg.kernel {
            DecodeKernel::Legacy => DecodeKernel::Soa,
            DecodeKernel::Soa => DecodeKernel::Legacy,
        };
        let lm = MutatedLm::new(&m.lm_fst, mutation);
        let (ares, alat) = OtfDecoder::new(
            lat_cfg
                .to_builder()
                .kernel(other)
                .build()
                .expect("case spec yields a valid config"),
        )
        .decode_lattice(&m.am.fst, &lm, scores, &mut NullSink);
        if let Some(d) = bit_diff("lattice kernel swap", &ares, &lat_res) {
            return div(d);
        }
        if !alat.bit_identical(&lattice) {
            return div(format!("kernel swap ({other:?}) changed the lattice"));
        }
    }
    for entries in [spec.olt_small, spec.olt_large] {
        let lm = MutatedLm::new(&m.lm_fst, mutation);
        let (ores, olat) = OtfDecoder::new(
            lat_cfg
                .to_builder()
                .olt_entries(entries)
                .build()
                .expect("case spec yields a valid config"),
        )
        .decode_lattice(&m.am.fst, &lm, scores, &mut NullSink);
        if let Some(d) = search_diff(&format!("lattice olt_entries={entries}"), &ores, &lat_res) {
            return div(d);
        }
        if !olat.bit_identical(&lattice) {
            return div(format!("olt_entries={entries} changed the lattice"));
        }
    }
    {
        let mut scratch = DecodeScratch::new();
        let lm = MutatedLm::new(&m.lm_fst, mutation);
        let _first =
            lat_dec.decode_lattice_with(&m.am.fst, &lm, scores, &mut scratch, &mut NullSink);
        let lm = MutatedLm::new(&m.lm_fst, mutation);
        let (wres, wlat) =
            lat_dec.decode_lattice_with(&m.am.fst, &lm, scores, &mut scratch, &mut NullSink);
        if let Some(d) = bit_diff("lattice warm scratch", &wres, &lat_res) {
            return div(d);
        }
        if !wlat.bit_identical(&lattice) {
            return div("warm scratch changed the lattice".into());
        }
    }
    {
        let lm = MutatedLm::new(&m.lm_fst, mutation);
        let mut work = WorkScratch::new();
        work.begin(&lat_cfg);
        let mut sess = StreamSession::new(lat_cfg);
        sess.enable_lattice();
        sess.seed(&m.am.fst, &lm, &mut work, &mut NullSink);
        for t in 0..scores.num_frames() {
            sess.push_frame(&m.am.fst, &lm, &mut work, scores.frame(t), &mut NullSink);
        }
        let (sres, slat) = sess.finalize_lattice(&m.am.fst, &mut NullSink);
        if let Some(d) = bit_diff("lattice streaming", &sres, &lat_res) {
            return div(d);
        }
        if !slat.bit_identical(&lattice) {
            return div("streaming frame delivery changed the lattice".into());
        }
    }

    // (d) soundness against the offline-composed graph: every word
    //     sequence the lattice holds within `best + claimed` must have
    //     a composed-graph path no cheaper than tolerance below the
    //     lattice's cost for it — the lattice can never invent a path
    //     or undercut the graph. Both enumerations are budgeted; a
    //     blow-up skips the comparison rather than failing it.
    let bound = lattice.best_cost() + claimed;
    let lat_paths = lattice.paths_within(bound, LATTICE_PATH_BUDGET);
    if let Some(lat_paths) = &lat_paths {
        if let Some(true_paths) = enumerate_composed_paths(
            composed,
            scores,
            f64::from(bound) + f64::from(COST_TOLERANCE),
            GRAPH_PATH_BUDGET,
        ) {
            let tol = 2.0 * f64::from(COST_TOLERANCE);
            for (words, &c) in lat_paths {
                match true_paths.get(words) {
                    Some(&tc) if tc <= c + tol => {}
                    Some(&tc) => {
                        return div(format!(
                            "lattice path {words:?} costs {c:.4} but the composed graph's \
                             best is {tc:.4}"
                        ));
                    }
                    None => {
                        return div(format!(
                            "lattice path {words:?} (cost {c:.4}) has no composed-graph \
                             path within {bound:.4}"
                        ));
                    }
                }
            }
            // Completeness, gated like the two-pass cost bound: under a
            // wide clean beam every composed-graph path within *half*
            // the lattice beam must appear in the lattice (per-frame
            // beam and histogram pruning can legitimately drop
            // low-global-slack paths under tight budgets).
            let complete_applies = mutation == Mutation::None
                && spec.weight_grid == 0.0
                && spec.beam >= 12.0
                && spec.max_active >= 1000;
            if complete_applies {
                let tight = f64::from(lattice.best_cost() + claimed * 0.5);
                for (words, &tc) in &true_paths {
                    if tc <= tight && !lat_paths.contains_key(words) {
                        return div(format!(
                            "composed-graph path {words:?} (cost {tc:.4}, within half the \
                             lattice beam) is missing from the lattice"
                        ));
                    }
                }
            }
        }
    }

    // (e) oracle-WER monotonicity in the lattice beam: a narrower
    //     build's path set is a subset of the wider one's, so its
    //     oracle WER can only be equal or worse.
    {
        let lm = MutatedLm::new(&m.lm_fst, mutation);
        let (nres, nlat) = OtfDecoder::new(
            cfg.to_builder()
                .lattice_beam(built(claimed * 0.5))
                .build()
                .expect("case spec yields a valid config"),
        )
        .decode_lattice(&m.am.fst, &lm, scores, &mut NullSink);
        // The lattice beam is a post-pass knob: the search is untouched.
        if let Some(d) = bit_diff("lattice narrow-beam decode", &nres, &lat_res) {
            return div(d);
        }
        let narrow = nlat.paths_within(nlat.best_cost() + claimed * 0.5, LATTICE_PATH_BUDGET);
        if let (Some(narrow), Some(wide)) = (&narrow, &lat_paths) {
            for words in narrow.keys() {
                if !wide.contains_key(words) {
                    return div(format!(
                        "narrow-beam lattice path {words:?} is missing from the \
                         wider-beam lattice"
                    ));
                }
            }
            if !narrow.is_empty() && !wide.is_empty() {
                let errors = |paths: &std::collections::BTreeMap<Vec<u32>, f64>| {
                    let cands: Vec<Vec<u32>> = paths.keys().cloned().collect();
                    let r = oracle_wer(&m.utt.words, &cands);
                    r.substitutions + r.deletions + r.insertions
                };
                let (en, ew) = (errors(narrow), errors(wide));
                if en < ew {
                    return div(format!(
                        "oracle WER worsened as the lattice beam widened: \
                         {en} errors at beam {}, {ew} at beam {claimed}",
                        claimed * 0.5
                    ));
                }
            }
        }
    }

    None
}

/// Salt folded into the case seed to derive its biasing phrase list.
/// A *derived* quantity — not a [`CaseSpec`] knob — so the spec's own
/// RNG draw sequence (and every existing repro file) is untouched.
const BIAS_SALT: u64 = 0xB1A5;

/// Phrases minted per case for the bias-oracle check.
const BIAS_PHRASES: usize = 4;

/// The biasing model the bias-oracle check decodes `spec` against.
/// Shrinking the spec re-derives the phrases, so minimized cases keep
/// a well-formed (and usually still-firing) bias.
pub fn case_bias(spec: &CaseSpec) -> BiasingFst {
    BiasingFst::mint(spec.seed ^ BIAS_SALT, spec.vocab_size as u32, BIAS_PHRASES)
}

/// Comparison for the bias-oracle pair: the two sides resolve through
/// different arc layouts (on-the-fly walk vs materialized composite
/// arcs), so fetch and probe counters legitimately differ — words,
/// cost bits, and per-word frame alignments must still match exactly.
fn bias_diff(label: &str, a: &DecodeResult, b: &DecodeResult) -> Option<String> {
    if a.words != b.words {
        return Some(format!("{label}: words {:?} vs {:?}", a.words, b.words));
    }
    if a.cost.to_bits() != b.cost.to_bits() {
        return Some(format!("{label}: cost bits {} vs {}", a.cost, b.cost));
    }
    if a.word_frames != b.word_frames {
        return Some(format!(
            "{label}: word frames {:?} vs {:?}",
            a.word_frames, b.word_frames
        ));
    }
    None
}

fn bias_oracle_check(
    spec: &CaseSpec,
    mutation: Mutation,
    m: &CaseModels,
    cfg: DecodeConfig,
) -> Option<Divergence> {
    let div = |detail: String| {
        Some(Divergence {
            check: CheckId::BiasOracle,
            detail,
        })
    };
    let scores = &m.utt.scores;
    let bias = case_bias(spec);
    let dec = OtfDecoder::new(cfg);

    // The reference: everything UNFOLD avoids — the eagerly
    // materialized `base LM x biasing FST` product. Composed over the
    // *clean* LM: the stateful mutation wrappers apply to the
    // on-the-fly side only (same convention as the plain oracle).
    let oracle = OfflineBiasedLm::compose(&m.lm_fst, &bias);
    let reference = dec.decode(&m.am.fst, &oracle, scores, &mut NullSink);

    let lm = MutatedLm::new(&m.lm_fst, mutation);
    let biased = BiasedLm::new(&lm, &bias);
    let otf = if mutation == Mutation::BiasBonusSkip {
        dec.decode(&m.am.fst, &SkipBonus(&biased), scores, &mut NullSink)
    } else {
        dec.decode(&m.am.fst, &biased, scores, &mut NullSink)
    };
    if let Some(d) = bias_diff("biased otf vs offline-composed oracle", &otf, &reference) {
        return div(d);
    }

    // Two-layer cache identity: turning the shared worker OLT on (the
    // base-expansion layer under the per-session bias cache) must not
    // change a bit of the biased decode.
    for entries in [spec.olt_small, spec.olt_large] {
        let lm = MutatedLm::new(&m.lm_fst, mutation);
        let biased = BiasedLm::new(&lm, &bias);
        let olt_cfg = cfg
            .to_builder()
            .olt_entries(entries)
            .build()
            .expect("case spec yields a valid config");
        let on = if mutation == Mutation::BiasBonusSkip {
            OtfDecoder::new(olt_cfg).decode(&m.am.fst, &SkipBonus(&biased), scores, &mut NullSink)
        } else {
            OtfDecoder::new(olt_cfg).decode(&m.am.fst, &biased, scores, &mut NullSink)
        };
        if let Some(d) = bias_diff(&format!("biased olt_entries={entries}"), &on, &otf) {
            return div(d);
        }
    }

    None
}

/// Exhaustively enumerates every word sequence the offline-composed
/// graph accepts over the utterance with total cost at most `bound`,
/// returning each sequence's cheapest cost, or `None` when the budget
/// runs out. Alignment variants of one word sequence are merged via a
/// best-cost table keyed by `(state, frame, words)` — exactly the merge
/// the lattice's own enumerator performs — and the search prunes with
/// an admissible per-frame minimum-emission suffix bound (every
/// acoustic cost and arc weight in the generated models is
/// non-negative).
fn enumerate_composed_paths(
    fst: &Wfst,
    scores: &unfold_am::AcousticScores,
    bound: f64,
    budget: usize,
) -> Option<std::collections::BTreeMap<Vec<u32>, f64>> {
    use std::collections::{BTreeMap, HashMap};
    let frames = scores.num_frames();
    let mut suffix = vec![0f64; frames + 1];
    for t in (0..frames).rev() {
        let row = scores.frame(t);
        let mn = row.iter().copied().fold(f32::INFINITY, f32::min);
        suffix[t] = suffix[t + 1] + f64::from(mn);
    }

    let mut seen: HashMap<(StateId, usize, Vec<u32>), f64> = HashMap::new();
    let mut out: BTreeMap<Vec<u32>, f64> = BTreeMap::new();
    let mut stack: Vec<(StateId, usize, f64, Vec<u32>)> = Vec::new();
    if suffix[0] <= bound {
        seen.insert((fst.start(), 0, Vec::new()), 0.0);
        stack.push((fst.start(), 0, 0.0, Vec::new()));
    }
    let mut pops = 0usize;
    while let Some((s, t, g, words)) = stack.pop() {
        pops += 1;
        if pops > budget {
            return None;
        }
        // A cheaper route to this (state, frame, words) superseded us
        // after we were pushed.
        if seen.get(&(s, t, words.clone())).is_some_and(|&g0| g0 < g) {
            continue;
        }
        if t == frames {
            if let Some(fw) = fst.final_weight(s) {
                let total = g + f64::from(fw);
                if total <= bound {
                    out.entry(words.clone())
                        .and_modify(|c| *c = c.min(total))
                        .or_insert(total);
                }
            }
        }
        for arc in fst.arcs(s) {
            let (nt, ng) = if arc.ilabel == EPSILON {
                (t, g + f64::from(arc.weight))
            } else if t < frames {
                (
                    t + 1,
                    g + f64::from(arc.weight) + f64::from(scores.cost(t, arc.ilabel)),
                )
            } else {
                continue; // no frames left to consume
            };
            if ng + suffix[nt] > bound {
                continue;
            }
            let mut nw = words.clone();
            if arc.olabel != EPSILON {
                nw.push(arc.olabel);
            }
            let key = (arc.nextstate, nt, nw);
            match seen.get(&key) {
                Some(&g0) if g0 <= ng => continue, // dominated (also breaks 0-cost ε-cycles)
                _ => {}
            }
            seen.insert(key.clone(), ng);
            stack.push((key.0, key.1, ng, key.2));
        }
    }
    Some(out)
}

/// [`run_case`] with panics converted into [`CheckId::Panic`]
/// divergences, so a crashing configuration is shrunk like any other.
pub fn run_case_caught(spec: &CaseSpec, mutation: Mutation) -> Option<Divergence> {
    run_case_caught_filtered(spec, mutation, None)
}

/// [`run_case_filtered`] with panics converted into
/// [`CheckId::Panic`] divergences.
pub fn run_case_caught_filtered(
    spec: &CaseSpec,
    mutation: Mutation,
    only: Option<CheckId>,
) -> Option<Divergence> {
    match catch_unwind(AssertUnwindSafe(|| run_case_filtered(spec, mutation, only))) {
        Ok(outcome) => outcome,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            Some(Divergence {
                check: CheckId::Panic,
                detail: msg,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_cases_pass_every_check() {
        for i in 0..4 {
            let spec = CaseSpec::derive(0xC1EA4, i);
            assert_eq!(run_case(&spec, Mutation::None), None, "case {i}: {spec:?}");
        }
    }

    #[test]
    fn injected_bugs_are_caught() {
        for mutation in [
            Mutation::OltAliasing,
            Mutation::FreeBackoff,
            Mutation::StaleChecksum,
            Mutation::LatticeBeamSkip,
            Mutation::BiasBonusSkip,
            Mutation::StaleLag,
        ] {
            let caught = (0..12).any(|i| {
                let spec = CaseSpec::derive(0xB00, i);
                run_case_caught(&spec, mutation).is_some()
            });
            assert!(caught, "{mutation:?} survived 12 cases undetected");
        }
    }

    #[test]
    fn lattice_beam_skip_is_caught_by_the_lattice_oracle_alone() {
        let caught = (0..12).find_map(|i| {
            let spec = CaseSpec::derive(0xB00, i);
            run_case_caught_filtered(
                &spec,
                Mutation::LatticeBeamSkip,
                Some(CheckId::LatticeOracle),
            )
        });
        let d = caught.expect("a skipped lattice beam must surface within 12 cases");
        assert_eq!(d.check, CheckId::LatticeOracle);
        assert!(
            d.detail.contains("exceeds the claimed lattice beam"),
            "want the slack assertion, got: {}",
            d.detail
        );
    }

    #[test]
    fn stale_lag_is_caught_by_pipeline_identity_alone() {
        // The stale scorer exists only inside the pipeline check, so a
        // full-matrix run must attribute the divergence there and
        // nowhere else.
        let caught = (0..12).find_map(|i| {
            let spec = CaseSpec::derive(0xB00, i);
            let full = run_case_caught(&spec, Mutation::StaleLag);
            if let Some(d) = &full {
                assert_eq!(
                    d.check,
                    CheckId::PipelineIdentity,
                    "stale-lag leaked into another check: {d}"
                );
            }
            full
        });
        let d = caught.expect("a stale scoring ring must surface within 12 cases");
        assert!(
            d.detail.contains("pipelined"),
            "want the pipelined comparison, got: {}",
            d.detail
        );
    }

    #[test]
    fn bias_bonus_skip_is_caught_by_the_bias_oracle_alone() {
        // The decode is deterministic with the bonus dropped, so every
        // bit-identity check passes; only the comparison against the
        // offline-composed biased reference can see the missing delta.
        let caught = (0..12).find_map(|i| {
            let spec = CaseSpec::derive(0xB00, i);
            let full = run_case_caught(&spec, Mutation::BiasBonusSkip);
            if let Some(d) = &full {
                assert_eq!(
                    d.check,
                    CheckId::BiasOracle,
                    "bias-bonus-skip leaked into another check: {d}"
                );
            }
            full
        });
        let d = caught.expect("a dropped bias bonus must surface within 12 cases");
        assert!(
            d.detail.contains("oracle") || d.detail.contains("olt"),
            "want the bias comparison, got: {}",
            d.detail
        );
    }

    #[test]
    fn check_filter_runs_only_the_selected_check() {
        // OltAliasing corrupts LM lookups, which the oracle check
        // catches — but a campaign filtered to mmap-identity must stay
        // blind to it (the mutation never touches the bundle path).
        let mut oracle_seen = false;
        for i in 0..12 {
            let spec = CaseSpec::derive(0xB00, i);
            let full = run_case_caught(&spec, Mutation::OltAliasing);
            let mmap_only =
                run_case_caught_filtered(&spec, Mutation::OltAliasing, Some(CheckId::MmapIdentity));
            assert_eq!(
                mmap_only, None,
                "case {i}: mmap-identity never sees OltAliasing"
            );
            if full.as_ref().is_some_and(|d| d.check == CheckId::Oracle) {
                oracle_seen = true;
            }
        }
        assert!(
            oracle_seen,
            "the unfiltered matrix should catch OltAliasing"
        );
    }

    #[test]
    fn stale_checksum_is_rejected_typed() {
        let spec = CaseSpec::derive(0xC4C, 0);
        let d = run_case_caught(&spec, Mutation::StaleChecksum)
            .expect("a stale checksum must surface as a divergence");
        assert_eq!(d.check, CheckId::MmapIdentity);
        assert!(
            d.detail.contains("rejected at owned open"),
            "want the typed rejection, got: {}",
            d.detail
        );
        assert!(
            d.detail.contains("mmap model binding"),
            "want the mapped path's typed rejection too, got: {}",
            d.detail
        );
    }

    #[test]
    fn names_round_trip() {
        for c in [
            CheckId::Oracle,
            CheckId::SoaIdentity,
            CheckId::OltIdentity,
            CheckId::ScratchReuse,
            CheckId::Streaming,
            CheckId::Jobs,
            CheckId::CompressRoundtrip,
            CheckId::MmapIdentity,
            CheckId::TwoPass,
            CheckId::SimReplay,
            CheckId::LatticeOracle,
            CheckId::BiasOracle,
            CheckId::PipelineIdentity,
            CheckId::Panic,
        ] {
            assert_eq!(CheckId::parse(c.name()), Some(c));
        }
        for m in [
            Mutation::None,
            Mutation::OltAliasing,
            Mutation::FreeBackoff,
            Mutation::StaleChecksum,
            Mutation::LatticeBeamSkip,
            Mutation::BiasBonusSkip,
            Mutation::StaleLag,
        ] {
            assert_eq!(Mutation::parse(m.name()), Some(m));
        }
        assert_eq!(Mutation::parse("bogus"), None);
    }
}
