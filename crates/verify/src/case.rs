//! Adversarial case generation.
//!
//! A [`CaseSpec`] is a plain bag of generator knobs, fully determined by
//! the campaign seed and case index, that [`CaseModels::build`] turns
//! into concrete models and one utterance. Everything the spec controls
//! is chosen to stress a decoder edge the fixed presets in `tests/`
//! under-exercise: pruned n-gram tables force deep back-off chains and
//! unigram-only states, coarse weight grids manufacture arc-weight
//! ties, tight beams make preemptive pruning decisive, and zero- or
//! one-frame utterances hit the search's boundary paths.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use unfold_am::{
    build_am, synthesize_utterance, AcousticScores, AmGraph, HmmTopology, Lexicon, NoiseModel,
    Utterance,
};
use unfold_compress::{CompressedAm, CompressedLm};
use unfold_lm::{lm_to_wfst, CorpusSpec, DiscountConfig, NGramModel};
use unfold_wfst::{Arc, Wfst, WfstBuilder};

/// K-means clusters used for the compressed-model round-trip checks
/// (matches `unfold::QUANT_CLUSTERS`, paper §3.4).
pub const CASE_QUANT_CLUSTERS: usize = 64;

/// Generator knobs for one differential test case. Deterministic:
/// equal specs build equal models and utterances.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseSpec {
    /// Seed for corpus generation, lexicon and utterance synthesis.
    pub seed: u64,
    /// Vocabulary size (≥ 4).
    pub vocab_size: usize,
    /// Phoneme inventory size (≥ 4).
    pub phonemes: usize,
    /// CTC topology instead of Kaldi 3-state.
    pub ctc: bool,
    /// Training-corpus sentences.
    pub sentences: usize,
    /// Bigrams below this count are pruned (`u64::MAX` ⇒ unigram-only).
    pub min_bigram_count: u64,
    /// Trigrams below this count are pruned.
    pub min_trigram_count: u64,
    /// LM weights rounded to multiples of this (0.0 ⇒ off); coarse
    /// grids manufacture exact arc-weight ties.
    pub weight_grid: f32,
    /// Acoustic score jitter.
    pub noise_sigma: f32,
    /// Word-level confusion probability.
    pub word_confusion: f32,
    /// Truth words; empty ⇒ a zero-frame utterance.
    pub words: Vec<u32>,
    /// Frame cap (`usize::MAX` ⇒ keep the whole utterance).
    pub max_frames: usize,
    /// Decode beam.
    pub beam: f32,
    /// Histogram-pruning cap.
    pub max_active: usize,
    /// "Small" OLT size for the identity check (forces evictions).
    pub olt_small: usize,
    /// "Large" OLT size for the identity check.
    pub olt_large: usize,
}

impl CaseSpec {
    /// Derives case `index` of the campaign started from
    /// `campaign_seed`. The knob distribution is deliberately skewed
    /// toward the edge cases listed in the module docs.
    pub fn derive(campaign_seed: u64, index: u64) -> CaseSpec {
        let mut rng =
            SmallRng::seed_from_u64(campaign_seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let vocab_size = rng.gen_range(4usize..=24);
        let phonemes = rng.gen_range(4usize..=10);
        let ctc = rng.gen::<f64>() < 0.3;
        let sentences = rng.gen_range(40usize..=180);

        // LM shape: often force the back-off machinery to dominate.
        let (min_bigram_count, min_trigram_count) = match rng.gen::<f64>() {
            r if r < 0.15 => (u64::MAX, u64::MAX), // unigram-only states
            r if r < 0.35 => (2, u64::MAX),        // no trigrams
            r if r < 0.60 => (rng.gen_range(3u64..=6), rng.gen_range(3u64..=6)),
            _ => (2, 2),
        };
        let weight_grid = if rng.gen::<f64>() < 0.4 { 0.5 } else { 0.0 };

        let (noise_sigma, word_confusion) = if rng.gen::<f64>() < 0.25 {
            (0.05, 0.0)
        } else {
            (
                rng.gen_range(0.1f32..1.2),
                if rng.gen::<f64>() < 0.15 { 0.1 } else { 0.0 },
            )
        };

        let num_words = match rng.gen::<f64>() {
            r if r < 0.06 => 0, // zero-frame utterance
            r if r < 0.18 => 1,
            _ => rng.gen_range(2usize..=5),
        };
        let words = (0..num_words)
            .map(|_| {
                if rng.gen::<f64>() < 0.5 {
                    // Rare words: high ids back off hardest.
                    let tail = (vocab_size / 3).max(1);
                    (vocab_size - rng.gen_range(0..tail)) as u32
                } else {
                    rng.gen_range(1u32..=vocab_size as u32)
                }
            })
            .collect();

        let max_frames = match rng.gen::<f64>() {
            r if r < 0.08 => 1,
            r if r < 0.16 => rng.gen_range(2usize..=6),
            _ => usize::MAX,
        };
        let beam = if rng.gen::<f64>() < 0.2 {
            rng.gen_range(5.0f32..9.0)
        } else {
            14.0
        };
        let max_active = if rng.gen::<f64>() < 0.15 { 64 } else { 6000 };

        CaseSpec {
            seed: rng.gen::<u64>(),
            vocab_size,
            phonemes,
            ctc,
            sentences,
            min_bigram_count,
            min_trigram_count,
            weight_grid,
            noise_sigma,
            word_confusion,
            words,
            max_frames,
            beam,
            max_active,
            olt_small: 8,
            olt_large: 4096,
        }
    }

    /// The HMM topology this spec selects.
    pub fn topology(&self) -> HmmTopology {
        if self.ctc {
            HmmTopology::Ctc
        } else {
            HmmTopology::Kaldi3State
        }
    }
}

/// The concrete models and utterance a [`CaseSpec`] builds.
pub struct CaseModels {
    /// Pronunciation lexicon.
    pub lexicon: Lexicon,
    /// Acoustic-model WFST and metadata.
    pub am: AmGraph,
    /// Trained n-gram model (pre-rounding; drives two-pass rescoring).
    pub lm_model: NGramModel,
    /// LM WFST, weight-rounded when the spec asks for ties.
    pub lm_fst: Wfst,
    /// Bit-packed AM.
    pub cam: CompressedAm,
    /// Bit-packed LM.
    pub clm: CompressedLm,
    /// The utterance under test (possibly zero frames).
    pub utt: Utterance,
}

impl CaseModels {
    /// Builds every model for `spec`. Deterministic in the spec.
    pub fn build(spec: &CaseSpec) -> CaseModels {
        let corpus = CorpusSpec {
            vocab_size: spec.vocab_size,
            num_sentences: spec.sentences,
            ..CorpusSpec::default()
        }
        .generate(spec.seed);
        let discount = DiscountConfig {
            min_bigram_count: spec.min_bigram_count,
            min_trigram_count: spec.min_trigram_count,
            ..DiscountConfig::default()
        };
        let lm_model = NGramModel::train(&corpus, spec.vocab_size, discount);
        let mut lm_fst = lm_to_wfst(&lm_model);
        if spec.weight_grid > 0.0 {
            lm_fst = round_weights(&lm_fst, spec.weight_grid);
        }
        let lexicon = Lexicon::generate(spec.vocab_size, spec.phonemes, spec.seed ^ 0xA11CE);
        let am = build_am(&lexicon, spec.topology());
        let cam = CompressedAm::compress(&am.fst, CASE_QUANT_CLUSTERS, spec.seed);
        let clm = CompressedLm::compress(&lm_fst, CASE_QUANT_CLUSTERS, spec.seed);
        let utt = build_utterance(spec, &lexicon, am.num_pdfs, 0);
        CaseModels {
            lexicon,
            am,
            lm_model,
            lm_fst,
            cam,
            clm,
            utt,
        }
    }

    /// A small batch around the case utterance (the case itself plus
    /// `extra` seed-perturbed variants) for the `jobs` ∈ {1, N} check.
    pub fn batch(&self, spec: &CaseSpec, extra: usize) -> Vec<Utterance> {
        let mut batch = vec![clone_utterance(&self.utt)];
        for v in 1..=extra {
            batch.push(build_utterance(
                spec,
                &self.lexicon,
                self.am.num_pdfs,
                v as u64,
            ));
        }
        batch
    }
}

/// Synthesizes the spec's utterance (variant 0) or a seed-perturbed
/// sibling, applying the zero-word and frame-cap edge cases.
fn build_utterance(spec: &CaseSpec, lexicon: &Lexicon, num_pdfs: usize, variant: u64) -> Utterance {
    if spec.words.is_empty() {
        return Utterance {
            words: Vec::new(),
            alignment: Vec::new(),
            scores: AcousticScores::from_flat(Vec::new(), num_pdfs),
        };
    }
    let noise = NoiseModel {
        noise_sigma: spec.noise_sigma,
        word_confusion_prob: spec.word_confusion,
        ..NoiseModel::default()
    };
    let utt = synthesize_utterance(
        &spec.words,
        lexicon,
        spec.topology(),
        &noise,
        spec.seed ^ 0x5EED ^ variant.wrapping_mul(7919),
    );
    truncate_utterance(utt, spec.max_frames)
}

/// Caps an utterance to its first `max_frames` score rows.
fn truncate_utterance(utt: Utterance, max_frames: usize) -> Utterance {
    let frames = utt.scores.num_frames();
    if max_frames >= frames {
        return utt;
    }
    let num_pdfs = utt.scores.num_pdfs();
    let mut flat = Vec::with_capacity(max_frames * num_pdfs);
    for t in 0..max_frames {
        flat.extend_from_slice(utt.scores.frame(t));
    }
    Utterance {
        words: utt.words,
        alignment: utt.alignment.into_iter().take(max_frames).collect(),
        scores: AcousticScores::from_flat(flat, num_pdfs),
    }
}

fn clone_utterance(utt: &Utterance) -> Utterance {
    let num_pdfs = utt.scores.num_pdfs();
    let mut flat = Vec::with_capacity(utt.scores.num_frames() * num_pdfs);
    for t in 0..utt.scores.num_frames() {
        flat.extend_from_slice(utt.scores.frame(t));
    }
    Utterance {
        words: utt.words.clone(),
        alignment: utt.alignment.clone(),
        scores: AcousticScores::from_flat(flat, num_pdfs),
    }
}

/// Rebuilds `fst` with every arc and final weight rounded to the
/// nearest multiple of `grid`, preserving state ids and arc order (so
/// the LM layout invariants — sorted word arcs, trailing back-off arcs,
/// root positional access — survive). Coarse grids collapse nearby
/// weights onto each other, manufacturing the exact-tie hypotheses the
/// beam search must order deterministically.
pub fn round_weights(fst: &Wfst, grid: f32) -> Wfst {
    assert!(grid > 0.0, "round_weights: grid must be positive");
    let snap = |w: f32| (w / grid).round() * grid;
    let mut b = WfstBuilder::with_states(fst.num_states());
    b.set_start(fst.start());
    for s in fst.states() {
        if let Some(fw) = fst.final_weight(s) {
            b.set_final(s, snap(fw));
        }
        for a in fst.arcs(s) {
            b.add_arc(s, Arc::new(a.ilabel, a.olabel, snap(a.weight), a.nextstate));
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_is_deterministic_and_varied() {
        let a = CaseSpec::derive(42, 7);
        let b = CaseSpec::derive(42, 7);
        assert_eq!(a, b);
        let mut unigram_only = 0;
        let mut empty = 0;
        let mut single_frame = 0;
        let mut ties = 0;
        for i in 0..200 {
            let s = CaseSpec::derive(1, i);
            assert!(s.vocab_size >= 4);
            assert!(s.words.iter().all(|&w| w >= 1 && w <= s.vocab_size as u32));
            unigram_only += usize::from(s.min_bigram_count == u64::MAX);
            empty += usize::from(s.words.is_empty());
            single_frame += usize::from(s.max_frames == 1);
            ties += usize::from(s.weight_grid > 0.0);
        }
        assert!(unigram_only > 5, "unigram-only LMs must occur");
        assert!(empty > 2, "zero-frame utterances must occur");
        assert!(single_frame > 2, "one-frame utterances must occur");
        assert!(ties > 30, "weight-tie cases must occur");
    }

    #[test]
    fn build_handles_empty_and_truncated_utterances() {
        let mut spec = CaseSpec::derive(3, 0);
        spec.words = Vec::new();
        let m = CaseModels::build(&spec);
        assert_eq!(m.utt.scores.num_frames(), 0);

        spec.words = vec![1, 2];
        spec.max_frames = 1;
        let m = CaseModels::build(&spec);
        assert_eq!(m.utt.scores.num_frames(), 1);
        assert_eq!(m.utt.alignment.len(), 1);
    }

    #[test]
    fn rounded_lm_keeps_layout_invariants() {
        let spec = CaseSpec {
            weight_grid: 0.5,
            ..CaseSpec::derive(9, 4)
        };
        let m = CaseModels::build(&spec);
        assert!(m.lm_fst.is_ilabel_sorted());
        for s in m.lm_fst.states() {
            for a in m.lm_fst.arcs(s) {
                let q = (a.weight / 0.5).round() * 0.5;
                assert!((a.weight - q).abs() < 1e-6, "weight off-grid: {}", a.weight);
            }
        }
        // Root arc i must still be word i pointing at state i.
        for (i, a) in m.lm_fst.arcs(m.lm_fst.start()).iter().enumerate() {
            if a.ilabel != unfold_wfst::EPSILON {
                assert_eq!(a.ilabel as usize, i + 1);
            }
        }
    }
}
