//! Campaign driver: runs N seeded cases across worker threads,
//! shrinks every divergence, and writes repro files.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::case::CaseSpec;
use crate::check::{run_case_caught_filtered, CheckId, Divergence, Mutation};
use crate::repro::ReproCase;
use crate::shrink::{shrink, ShrinkOutcome};

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Campaign seed; case `i` is `CaseSpec::derive(seed, i)`.
    pub seed: u64,
    /// Number of cases.
    pub cases: u64,
    /// Injected decoder bug ([`Mutation::None`] for a clean campaign).
    pub mutation: Mutation,
    /// Restrict every case to one check (`None` runs the full matrix).
    pub only: Option<CheckId>,
    /// Directory for minimized repro files (skipped when `None`).
    pub out_dir: Option<PathBuf>,
    /// Run the shrinker on each divergence.
    pub shrink: bool,
    /// Worker threads (clamped to ≥ 1).
    pub jobs: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 42,
            cases: 64,
            mutation: Mutation::None,
            only: None,
            out_dir: None,
            shrink: true,
            jobs: std::thread::available_parallelism().map_or(1, |n| n.get()),
        }
    }
}

/// One diverging case, with its shrink result and repro file.
#[derive(Debug, Clone)]
pub struct CampaignDivergence {
    /// Case index within the campaign.
    pub index: u64,
    /// The original (unshrunk) spec.
    pub original: CaseSpec,
    /// The divergence as first observed.
    pub divergence: Divergence,
    /// Shrink result (`None` when shrinking was disabled).
    pub shrunk: Option<ShrinkOutcome>,
    /// Where the repro file was written, if an out dir was given.
    pub repro_path: Option<PathBuf>,
}

/// Aggregate campaign result.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Cases executed.
    pub cases: u64,
    /// Cases with every check passing.
    pub passed: u64,
    /// Diverging cases, in case-index order.
    pub divergences: Vec<CampaignDivergence>,
}

impl CampaignReport {
    /// `true` when no case diverged.
    pub fn is_clean(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// Runs the campaign. Case execution is parallel (each case is an
/// independent pure function of `(seed, index, mutation)`); shrinking
/// and repro writing happen serially afterwards so file output and
/// shrinker progress stay deterministic in everything but thread
/// scheduling — the set of divergences found does not depend on `jobs`.
///
/// # Errors
/// Returns `Err` only on repro-file I/O failure.
pub fn run_campaign(config: &CampaignConfig) -> std::io::Result<CampaignReport> {
    let next = AtomicU64::new(0);
    let found: Mutex<Vec<(u64, CaseSpec, Divergence)>> = Mutex::new(Vec::new());
    let jobs = config.jobs.max(1).min(config.cases.max(1) as usize);

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= config.cases {
                    break;
                }
                let spec = CaseSpec::derive(config.seed, i);
                if let Some(d) = run_case_caught_filtered(&spec, config.mutation, config.only) {
                    found.lock().unwrap().push((i, spec, d));
                }
            });
        }
    });

    let mut raw = found.into_inner().unwrap();
    raw.sort_by_key(|(i, _, _)| *i);

    if let Some(dir) = &config.out_dir {
        if !raw.is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }

    let mut divergences = Vec::with_capacity(raw.len());
    for (index, original, divergence) in raw {
        let shrunk = if config.shrink {
            shrink(&original, config.mutation, config.only)
        } else {
            None
        };
        let repro_path = match &config.out_dir {
            Some(dir) => {
                let (spec, check) = match &shrunk {
                    Some(s) => (s.spec.clone(), s.divergence.check),
                    None => (original.clone(), divergence.check),
                };
                let repro = ReproCase {
                    spec,
                    check: Some(check),
                    mutation: config.mutation,
                };
                Some(write_repro(dir, index, &repro)?)
            }
            None => None,
        };
        divergences.push(CampaignDivergence {
            index,
            original,
            divergence,
            shrunk,
            repro_path,
        });
    }

    Ok(CampaignReport {
        cases: config.cases,
        passed: config.cases - divergences.len() as u64,
        divergences,
    })
}

fn write_repro(dir: &Path, index: u64, repro: &ReproCase) -> std::io::Result<PathBuf> {
    let check = repro.check.map_or("unknown", |c| c.name());
    let path = dir.join(format!("repro-{index:04}-{check}.txt"));
    std::fs::write(&path, repro.to_text())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_clean_campaign_is_clean() {
        let report = run_campaign(&CampaignConfig {
            seed: 0xC1EA4,
            cases: 4,
            jobs: 2,
            shrink: false,
            ..CampaignConfig::default()
        })
        .unwrap();
        assert_eq!(report.cases, 4);
        assert!(report.is_clean(), "divergences: {:?}", report.divergences);
    }

    #[test]
    fn divergence_set_is_independent_of_jobs() {
        let run = |jobs| {
            let r = run_campaign(&CampaignConfig {
                seed: 0xB00,
                cases: 6,
                mutation: Mutation::FreeBackoff,
                jobs,
                shrink: false,
                ..CampaignConfig::default()
            })
            .unwrap();
            r.divergences
                .iter()
                .map(|d| (d.index, d.divergence.check))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(4));
    }
}
