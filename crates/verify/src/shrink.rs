//! Delta-debugging shrinker for diverging cases.
//!
//! Rather than deleting states and arcs from built WFSTs (which would
//! produce models violating the layout invariants the decoder relies
//! on), the shrinker minimizes the *generator spec*: every candidate is
//! rebuilt through the same `unfold-am`/`unfold-lm` pipeline as the
//! original, so the minimized case is always a well-formed model the
//! whole toolchain accepts — and a [`crate::ReproCase`] file stays a
//! few lines of knobs instead of a serialized FST.

use crate::case::{CaseModels, CaseSpec};
use crate::check::{run_case_caught_filtered, CheckId, Divergence, Mutation};

/// Hard cap on candidate evaluations per shrink (each evaluation
/// rebuilds the models and decodes the full matrix).
const MAX_EVALS: usize = 200;

/// Result of shrinking one diverging case.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The minimized spec (still diverging on the same check).
    pub spec: CaseSpec,
    /// The divergence the minimized spec produces.
    pub divergence: Divergence,
    /// Accepted shrink steps.
    pub steps: usize,
    /// Candidate evaluations spent.
    pub evals: usize,
    /// LM states in the minimized model.
    pub lm_states: usize,
    /// AM states in the minimized model.
    pub am_states: usize,
    /// Frames in the minimized utterance.
    pub frames: usize,
}

/// One shrinking move: a named transformation of the spec. Returns
/// `None` when the move does not apply (already minimal in that
/// dimension).
type Move = fn(&CaseSpec) -> Option<CaseSpec>;

fn drop_last_word(s: &CaseSpec) -> Option<CaseSpec> {
    if s.words.is_empty() {
        return None;
    }
    let mut t = s.clone();
    t.words.pop();
    Some(t)
}

fn drop_first_word(s: &CaseSpec) -> Option<CaseSpec> {
    if s.words.len() < 2 {
        return None;
    }
    let mut t = s.clone();
    t.words.remove(0);
    Some(t)
}

fn halve_frames(s: &CaseSpec) -> Option<CaseSpec> {
    if s.words.is_empty() {
        return None;
    }
    let current = s.max_frames;
    let next = match current {
        usize::MAX => 16,
        n if n > 1 => n / 2,
        _ => return None,
    };
    let mut t = s.clone();
    t.max_frames = next;
    Some(t)
}

fn shrink_vocab(s: &CaseSpec) -> Option<CaseSpec> {
    if s.vocab_size <= 4 {
        return None;
    }
    let mut t = s.clone();
    t.vocab_size = (s.vocab_size / 2).max(4);
    // Re-clamp truth words into the smaller vocabulary.
    for w in &mut t.words {
        *w = ((*w - 1) % t.vocab_size as u32) + 1;
    }
    Some(t)
}

fn shrink_sentences(s: &CaseSpec) -> Option<CaseSpec> {
    if s.sentences <= 20 {
        return None;
    }
    let mut t = s.clone();
    t.sentences = (s.sentences / 2).max(20);
    Some(t)
}

fn shrink_phonemes(s: &CaseSpec) -> Option<CaseSpec> {
    if s.phonemes <= 4 {
        return None;
    }
    let mut t = s.clone();
    t.phonemes = (s.phonemes / 2).max(4);
    Some(t)
}

fn force_unigram_only(s: &CaseSpec) -> Option<CaseSpec> {
    if s.min_bigram_count == u64::MAX && s.min_trigram_count == u64::MAX {
        return None;
    }
    let mut t = s.clone();
    t.min_bigram_count = u64::MAX;
    t.min_trigram_count = u64::MAX;
    Some(t)
}

fn drop_weight_grid(s: &CaseSpec) -> Option<CaseSpec> {
    if s.weight_grid == 0.0 {
        return None;
    }
    let mut t = s.clone();
    t.weight_grid = 0.0;
    Some(t)
}

fn calm_noise(s: &CaseSpec) -> Option<CaseSpec> {
    if s.noise_sigma <= 0.05 && s.word_confusion == 0.0 {
        return None;
    }
    let mut t = s.clone();
    t.noise_sigma = 0.05;
    t.word_confusion = 0.0;
    Some(t)
}

/// The move schedule: cheap/high-leverage reductions first.
const MOVES: &[Move] = &[
    drop_last_word,
    drop_first_word,
    halve_frames,
    shrink_vocab,
    force_unigram_only,
    shrink_sentences,
    shrink_phonemes,
    drop_weight_grid,
    calm_noise,
];

/// Minimizes `spec` while `mutation` still makes the *same check*
/// diverge, greedily applying [`MOVES`] to a fixpoint. Returns `None`
/// if the original spec does not diverge at all (nothing to shrink).
/// When `only` restricts the matrix to one check, every candidate
/// evaluation is restricted the same way.
pub fn shrink(spec: &CaseSpec, mutation: Mutation, only: Option<CheckId>) -> Option<ShrinkOutcome> {
    let original = run_case_caught_filtered(spec, mutation, only)?;
    let target: CheckId = original.check;
    let mut best = spec.clone();
    let mut best_div = original;
    let mut steps = 0;
    let mut evals = 1;

    // Greedy descent: retry the whole move schedule until a full pass
    // accepts nothing (fixpoint) or the evaluation budget runs out.
    loop {
        let mut improved = false;
        for mv in MOVES {
            // Re-apply a single move repeatedly while it keeps working
            // (e.g. keep dropping words one by one).
            while evals < MAX_EVALS {
                let Some(candidate) = mv(&best) else { break };
                evals += 1;
                match run_case_caught_filtered(&candidate, mutation, only) {
                    Some(d) if d.check == target => {
                        best = candidate;
                        best_div = d;
                        steps += 1;
                        improved = true;
                    }
                    _ => break,
                }
            }
            if evals >= MAX_EVALS {
                break;
            }
        }
        if !improved || evals >= MAX_EVALS {
            break;
        }
    }

    let m = CaseModels::build(&best);
    Some(ShrinkOutcome {
        lm_states: m.lm_fst.num_states(),
        am_states: m.am.fst.num_states(),
        frames: m.utt.scores.num_frames(),
        spec: best,
        divergence: best_div,
        steps,
        evals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moves_only_simplify() {
        let spec = CaseSpec::derive(11, 3);
        for mv in MOVES {
            if let Some(t) = mv(&spec) {
                assert_ne!(t, spec, "a move must change the spec");
                assert!(t.vocab_size <= spec.vocab_size);
                assert!(t.sentences <= spec.sentences);
                assert!(t.words.len() <= spec.words.len());
            }
        }
    }

    #[test]
    fn clean_case_yields_no_outcome() {
        let spec = CaseSpec::derive(0xC1EA4, 0);
        assert!(shrink(&spec, Mutation::None, None).is_none());
    }
}
