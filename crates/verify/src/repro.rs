//! Self-contained repro files.
//!
//! A repro file is a short `key = value` text document holding the
//! minimized [`CaseSpec`], the [`Mutation`] that was active, and the
//! check that diverged. `unfold-cli verify --repro <file>` parses it
//! and re-runs the case; the format is hand-rolled (no serde in the
//! workspace) and round-trips exactly — floats are written with `{:?}`
//! so the parsed value is bit-identical.

use std::fmt::Write as _;

use crate::case::CaseSpec;
use crate::check::{run_case_caught, CheckId, Divergence, Mutation};

/// A divergence repro: everything needed to replay one case.
#[derive(Debug, Clone, PartialEq)]
pub struct ReproCase {
    /// The (usually minimized) generator spec.
    pub spec: CaseSpec,
    /// The check expected to diverge (`None` for exploratory replays).
    pub check: Option<CheckId>,
    /// The mutation that was active when the divergence was found.
    pub mutation: Mutation,
}

/// Error from [`ReproCase::from_text`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReproParseError {
    /// 1-based line of the offending entry (0 for missing keys).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ReproParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "repro file: {}", self.message)
        } else {
            write!(f, "repro file line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ReproParseError {}

/// Sentinel for `max_frames = usize::MAX` (no cap).
const MAX_SENTINEL: &str = "max";

impl ReproCase {
    /// Serializes to the repro text format.
    pub fn to_text(&self) -> String {
        let s = &self.spec;
        let mut out = String::new();
        let _ = writeln!(out, "# unfold-verify repro");
        let _ = writeln!(out, "version = 1");
        let _ = writeln!(out, "mutation = {}", self.mutation.name());
        if let Some(check) = self.check {
            let _ = writeln!(out, "check = {check}");
        }
        let _ = writeln!(out, "seed = {}", s.seed);
        let _ = writeln!(out, "vocab_size = {}", s.vocab_size);
        let _ = writeln!(out, "phonemes = {}", s.phonemes);
        let _ = writeln!(out, "ctc = {}", s.ctc);
        let _ = writeln!(out, "sentences = {}", s.sentences);
        let _ = writeln!(out, "min_bigram_count = {}", s.min_bigram_count);
        let _ = writeln!(out, "min_trigram_count = {}", s.min_trigram_count);
        let _ = writeln!(out, "weight_grid = {:?}", s.weight_grid);
        let _ = writeln!(out, "noise_sigma = {:?}", s.noise_sigma);
        let _ = writeln!(out, "word_confusion = {:?}", s.word_confusion);
        let words: Vec<String> = s.words.iter().map(|w| w.to_string()).collect();
        let _ = writeln!(out, "words = {}", words.join(","));
        if s.max_frames == usize::MAX {
            let _ = writeln!(out, "max_frames = {MAX_SENTINEL}");
        } else {
            let _ = writeln!(out, "max_frames = {}", s.max_frames);
        }
        let _ = writeln!(out, "beam = {:?}", s.beam);
        let _ = writeln!(out, "max_active = {}", s.max_active);
        let _ = writeln!(out, "olt_small = {}", s.olt_small);
        let _ = writeln!(out, "olt_large = {}", s.olt_large);
        out
    }

    /// Parses [`ReproCase::to_text`] output. Unknown keys are rejected
    /// so typos fail loudly; comment (`#`) and blank lines are skipped.
    pub fn from_text(text: &str) -> Result<ReproCase, ReproParseError> {
        fn err(line: usize, message: impl Into<String>) -> ReproParseError {
            ReproParseError {
                line,
                message: message.into(),
            }
        }
        fn parse<T: std::str::FromStr>(
            line: usize,
            key: &str,
            value: &str,
        ) -> Result<T, ReproParseError> {
            value
                .parse::<T>()
                .map_err(|_| err(line, format!("invalid value for {key}: {value:?}")))
        }

        let mut spec = CaseSpec {
            seed: 0,
            vocab_size: 0,
            phonemes: 0,
            ctc: false,
            sentences: 0,
            min_bigram_count: 2,
            min_trigram_count: 2,
            weight_grid: 0.0,
            noise_sigma: 0.05,
            word_confusion: 0.0,
            words: Vec::new(),
            max_frames: usize::MAX,
            beam: 14.0,
            max_active: 6000,
            olt_small: 8,
            olt_large: 4096,
        };
        let mut mutation = Mutation::None;
        let mut check = None;
        let (mut saw_seed, mut saw_vocab, mut saw_phonemes, mut saw_sentences) =
            (false, false, false, false);

        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(err(lineno, format!("expected `key = value`, got {line:?}")));
            };
            let (key, value) = (key.trim(), value.trim());
            match key {
                "version" => {
                    if value != "1" {
                        return Err(err(lineno, format!("unsupported version {value}")));
                    }
                }
                "mutation" => {
                    mutation = Mutation::parse(value)
                        .ok_or_else(|| err(lineno, format!("unknown mutation {value:?}")))?;
                }
                "check" => {
                    check = Some(
                        CheckId::parse(value)
                            .ok_or_else(|| err(lineno, format!("unknown check {value:?}")))?,
                    );
                }
                "seed" => {
                    spec.seed = parse(lineno, key, value)?;
                    saw_seed = true;
                }
                "vocab_size" => {
                    spec.vocab_size = parse(lineno, key, value)?;
                    saw_vocab = true;
                }
                "phonemes" => {
                    spec.phonemes = parse(lineno, key, value)?;
                    saw_phonemes = true;
                }
                "ctc" => spec.ctc = parse(lineno, key, value)?,
                "sentences" => {
                    spec.sentences = parse(lineno, key, value)?;
                    saw_sentences = true;
                }
                "min_bigram_count" => spec.min_bigram_count = parse(lineno, key, value)?,
                "min_trigram_count" => spec.min_trigram_count = parse(lineno, key, value)?,
                "weight_grid" => spec.weight_grid = parse(lineno, key, value)?,
                "noise_sigma" => spec.noise_sigma = parse(lineno, key, value)?,
                "word_confusion" => spec.word_confusion = parse(lineno, key, value)?,
                "words" => {
                    spec.words = if value.is_empty() {
                        Vec::new()
                    } else {
                        value
                            .split(',')
                            .map(|w| parse(lineno, key, w.trim()))
                            .collect::<Result<_, _>>()?
                    };
                }
                "max_frames" => {
                    spec.max_frames = if value == MAX_SENTINEL {
                        usize::MAX
                    } else {
                        parse(lineno, key, value)?
                    };
                }
                "beam" => spec.beam = parse(lineno, key, value)?,
                "max_active" => spec.max_active = parse(lineno, key, value)?,
                "olt_small" => spec.olt_small = parse(lineno, key, value)?,
                "olt_large" => spec.olt_large = parse(lineno, key, value)?,
                _ => return Err(err(lineno, format!("unknown key {key:?}"))),
            }
        }

        for (seen, key) in [
            (saw_seed, "seed"),
            (saw_vocab, "vocab_size"),
            (saw_phonemes, "phonemes"),
            (saw_sentences, "sentences"),
        ] {
            if !seen {
                return Err(err(0, format!("missing required key {key:?}")));
            }
        }
        Ok(ReproCase {
            spec,
            check,
            mutation,
        })
    }
}

/// Replays a repro: rebuilds the models and re-runs the full check
/// matrix under the recorded mutation. Returns the divergence, or
/// `None` when the case now passes (i.e. the bug is fixed).
pub fn run_repro(repro: &ReproCase) -> Option<Divergence> {
    run_case_caught(&repro.spec, repro.mutation)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_round_trips_exactly() {
        for (index, mutation) in [
            (0, Mutation::None),
            (3, Mutation::OltAliasing),
            (7, Mutation::FreeBackoff),
            (9, Mutation::StaleChecksum),
        ] {
            let repro = ReproCase {
                spec: CaseSpec::derive(99, index),
                check: Some(CheckId::Oracle),
                mutation,
            };
            let parsed = ReproCase::from_text(&repro.to_text()).unwrap();
            assert_eq!(parsed, repro);
        }
    }

    #[test]
    fn empty_words_and_max_frames_round_trip() {
        let mut repro = ReproCase {
            spec: CaseSpec::derive(1, 1),
            check: None,
            mutation: Mutation::None,
        };
        repro.spec.words = Vec::new();
        repro.spec.max_frames = usize::MAX;
        let parsed = ReproCase::from_text(&repro.to_text()).unwrap();
        assert_eq!(parsed, repro);
    }

    #[test]
    fn parse_errors_are_located() {
        let e = ReproCase::from_text("version = 1\nbogus_key = 3\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = ReproCase::from_text("not a key value line\n").unwrap_err();
        assert_eq!(e.line, 1);
        let e = ReproCase::from_text("version = 1\n").unwrap_err();
        assert_eq!(e.line, 0, "missing keys reported at line 0");
    }
}
