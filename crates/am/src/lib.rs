#![warn(missing_docs)]

//! Acoustic-model substrate for the UNFOLD reproduction.
//!
//! The paper's acoustic model (AM) side has three parts, all rebuilt here
//! from synthetic equivalents (the real models are trained on hundreds of
//! hours of audio we do not have):
//!
//! * [`lexicon`] — a pronunciation lexicon mapping every vocabulary word
//!   to a phoneme sequence, generated deterministically so that frequent
//!   words are short (as in natural lexica) and words share prefixes,
//! * [`graph`] — the AM WFST of Figure 3a: a lexicon prefix tree whose
//!   edges are expanded into HMM state chains (3-state Kaldi-style
//!   topology or 1-state CTC/EESEN-style topology). Arcs mostly point to
//!   the same / next state, which is exactly the locality the paper's
//!   20-bit compressed arc format (Figure 5) banks on,
//! * [`acoustic`] — a synthetic acoustic-score generator standing in for
//!   the GMM/DNN/RNN: given a ground-truth word sequence it emits
//!   per-frame cost vectors whose signal-to-noise ratio is adjustable
//!   (which is how the reproduction controls word error rate), plus
//!   analytic descriptors of GMM/DNN/LSTM size and per-frame FLOPs used
//!   by the Figure 1/2/12/13 experiments.
//!
//! # Example
//!
//! ```
//! use unfold_am::{Lexicon, HmmTopology, build_am};
//!
//! let lex = Lexicon::generate(100, 40, 7);
//! let am = build_am(&lex, HmmTopology::Kaldi3State);
//! assert!(am.fst.num_states() > 100);
//! // The AM root must be both start and final: decoding loops there.
//! assert!(am.fst.final_weight(am.fst.start()).is_some());
//! ```

pub mod acoustic;
pub mod gmm;
pub mod graph;
pub mod lexicon;

pub use acoustic::{synthesize_utterance, AcousticBackend, AcousticScores, NoiseModel, Utterance};
pub use gmm::{synthesize_utterance_gmm, GmmModel};
pub use graph::{build_am, AmGraph, HmmTopology, PdfId};
pub use lexicon::{Lexicon, PhonemeId};
