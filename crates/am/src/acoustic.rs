//! Synthetic acoustic scoring.
//!
//! Stands in for the GMM / DNN / LSTM acoustic front-ends of the paper.
//! The decoder only ever sees a *cost vector per frame* (the "Acoustic
//! Likelihood Buffer" the GPU fills in the paper's integration, §5.2),
//! so a generator that produces per-frame costs biased toward the
//! ground-truth PDF exercises exactly the same search behavior as a real
//! neural network — with the advantage that the signal-to-noise ratio,
//! and therefore the word error rate, is a controlled parameter.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use unfold_lm::WordId;

use crate::graph::{HmmTopology, PdfId};
use crate::lexicon::Lexicon;

/// Duration of one frame in seconds (the standard 10 ms hop).
pub const FRAME_SECONDS: f64 = 0.01;

/// Per-frame acoustic costs for all PDFs.
#[derive(Debug, Clone)]
pub struct AcousticScores {
    costs: Vec<f32>,
    num_pdfs: usize,
}

impl AcousticScores {
    /// Creates a score matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if the buffer length is not a multiple of `num_pdfs`.
    pub fn from_flat(costs: Vec<f32>, num_pdfs: usize) -> Self {
        assert!(num_pdfs > 0, "from_flat: num_pdfs must be positive");
        assert_eq!(costs.len() % num_pdfs, 0, "from_flat: ragged buffer");
        AcousticScores { costs, num_pdfs }
    }

    /// Number of frames.
    pub fn num_frames(&self) -> usize {
        self.costs.len() / self.num_pdfs
    }

    /// Number of PDFs per frame.
    pub fn num_pdfs(&self) -> usize {
        self.num_pdfs
    }

    /// Acoustic cost of `pdf` at `frame` (PDF ids are 1-based).
    ///
    /// # Panics
    /// Panics if `frame` or `pdf` is out of range.
    #[inline]
    pub fn cost(&self, frame: usize, pdf: PdfId) -> f32 {
        assert!(
            pdf >= 1 && (pdf as usize) <= self.num_pdfs,
            "cost: bad pdf {pdf}"
        );
        self.costs[frame * self.num_pdfs + (pdf as usize - 1)]
    }

    /// The cost row of one frame (indexed by `pdf - 1`).
    ///
    /// # Panics
    /// Panics if `frame` is out of range.
    #[inline]
    pub fn frame(&self, frame: usize) -> &[f32] {
        &self.costs[frame * self.num_pdfs..(frame + 1) * self.num_pdfs]
    }

    /// Size of the buffer in bytes (4 bytes per score).
    pub fn bytes(&self) -> u64 {
        self.costs.len() as u64 * 4
    }
}

/// Controls how cleanly the synthetic scores separate the true PDF from
/// the rest. `noise_sigma` is the WER knob: 0 gives an oracle; beyond
/// ~1.5 the decoder starts making natural-looking substitutions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Mean cost assigned to the ground-truth PDF.
    pub true_cost: f32,
    /// Mean cost assigned to unrelated PDFs.
    pub wrong_cost: f32,
    /// Mean cost assigned to "confusable" PDFs (acoustic neighbours).
    pub confusable_cost: f32,
    /// Gaussian perturbation applied to every cost.
    pub noise_sigma: f32,
    /// Probability that a whole phoneme-state segment is "misheard":
    /// one confusable PDF swaps costs with the truth for the entire
    /// dwell. Per-frame noise averages out over multi-frame states, so
    /// this segment-correlated corruption perturbs path costs without
    /// necessarily changing the winner.
    pub confusion_prob: f32,
    /// Probability that a whole word is "mispronounced": its frames are
    /// synthesized from a *different* word's pronunciation while the
    /// ground truth keeps the intended word. This is what actually
    /// produces substitution errors (a competing lexicon path must
    /// exist for the decoder to take it) — the knob behind Table 6's
    /// WER targets.
    pub word_confusion_prob: f32,
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel {
            true_cost: 0.3,
            wrong_cost: 5.0,
            confusable_cost: 2.0,
            noise_sigma: 0.9,
            confusion_prob: 0.02,
            word_confusion_prob: 0.02,
        }
    }
}

impl NoiseModel {
    /// A near-oracle model (useful for correctness tests).
    pub fn clean() -> Self {
        NoiseModel {
            noise_sigma: 0.05,
            confusion_prob: 0.0,
            word_confusion_prob: 0.0,
            ..Self::default()
        }
    }
}

/// A synthesized utterance: ground truth plus its acoustic scores.
#[derive(Debug, Clone)]
pub struct Utterance {
    /// Ground-truth word sequence.
    pub words: Vec<WordId>,
    /// Ground-truth PDF per frame.
    pub alignment: Vec<PdfId>,
    /// Acoustic costs per frame per PDF.
    pub scores: AcousticScores,
}

impl Utterance {
    /// Audio length in seconds implied by the frame count.
    pub fn audio_seconds(&self) -> f64 {
        self.scores.num_frames() as f64 * FRAME_SECONDS
    }
}

/// Samples a duration of 1–4 frames with mean ≈ 2 (how long a speaker
/// dwells in one HMM state).
fn sample_duration(rng: &mut SmallRng) -> usize {
    let mut d = 1;
    while d < 4 && rng.gen::<f32>() < 0.45 {
        d += 1;
    }
    d
}

/// Standard-normal draw (Box–Muller).
fn gauss(rng: &mut SmallRng) -> f32 {
    let u1: f32 = rng.gen_range(1e-7..1.0);
    let u2: f32 = rng.gen::<f32>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * core::f32::consts::PI * u2).cos()
}

/// Synthesizes an utterance for `words`: expands pronunciations into a
/// frame-level PDF alignment under `topology`, then generates a score
/// matrix around that alignment under `noise`.
///
/// Confusable PDFs are the numeric neighbours of the true PDF (a fixed,
/// deterministic confusion structure standing in for acoustically
/// similar senones).
///
/// # Panics
/// Panics if `words` is empty or contains out-of-vocabulary ids.
pub fn synthesize_utterance(
    words: &[WordId],
    lexicon: &Lexicon,
    topology: HmmTopology,
    noise: &NoiseModel,
    seed: u64,
) -> Utterance {
    assert!(
        !words.is_empty(),
        "synthesize_utterance: empty word sequence"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let num_pdfs = topology.num_pdfs(lexicon.num_phonemes());

    // --- Alignment (tracking state-dwell segments). ---
    let mut alignment: Vec<PdfId> = Vec::new();
    let mut segments: Vec<(usize, usize, PdfId)> = Vec::new();
    for &w in words {
        // Word-level confusion: the speaker "says" a different word.
        let spoken = if rng.gen::<f32>() < noise.word_confusion_prob && lexicon.vocab_size() > 1 {
            let mut alt = rng.gen_range(1..=lexicon.vocab_size() as WordId);
            if alt == w {
                alt = if alt == lexicon.vocab_size() as WordId {
                    1
                } else {
                    alt + 1
                };
            }
            alt
        } else {
            w
        };
        for &ph in lexicon.pronunciation(spoken) {
            for pdf in topology.pdfs(ph) {
                let start = alignment.len();
                for _ in 0..sample_duration(&mut rng) {
                    alignment.push(pdf);
                }
                segments.push((start, alignment.len(), pdf));
            }
        }
        // CTC: optional blank frames at word boundaries.
        if let Some(blank) = topology.blank_pdf(lexicon.num_phonemes()) {
            if rng.gen::<f32>() < 0.4 {
                for _ in 0..rng.gen_range(1..=2) {
                    alignment.push(blank);
                }
            }
        }
    }

    // --- Segment-level confusions: a misheard phoneme state swaps
    // cost roles with one of its acoustic neighbours for its whole
    // dwell. `confused[t]` holds the PDF that sounds like the truth at
    // frame `t` (equal to the true PDF when the segment is clean). ---
    let mut confused: Vec<PdfId> = alignment.clone();
    for &(start, end, pdf) in &segments {
        if rng.gen::<f32>() < noise.confusion_prob {
            let lo = pdf.saturating_sub(2).max(1);
            let hi = (pdf + 2).min(num_pdfs as PdfId);
            let mut alt = rng.gen_range(lo..=hi);
            if alt == pdf {
                alt = if pdf > lo { pdf - 1 } else { hi };
            }
            if alt != pdf {
                for slot in &mut confused[start..end] {
                    *slot = alt;
                }
            }
        }
    }

    // --- Scores. ---
    let mut costs = vec![0.0f32; alignment.len() * num_pdfs];
    for (t, (&true_pdf, &heard_pdf)) in alignment.iter().zip(&confused).enumerate() {
        let row = &mut costs[t * num_pdfs..(t + 1) * num_pdfs];
        for (i, c) in row.iter_mut().enumerate() {
            let pdf = i as PdfId + 1;
            // The "heard" PDF takes the cheap slot; if the segment is
            // confused, the true PDF is demoted to confusable cost.
            let mean = if pdf == heard_pdf {
                noise.true_cost
            } else if pdf == true_pdf || i64::from(pdf).abs_diff(i64::from(heard_pdf)) <= 2 {
                noise.confusable_cost
            } else {
                noise.wrong_cost
            };
            *c = (mean + noise.noise_sigma * gauss(&mut rng)).max(0.01);
        }
    }

    Utterance {
        words: words.to_vec(),
        alignment,
        scores: AcousticScores::from_flat(costs, num_pdfs),
    }
}

/// Analytic descriptor of an acoustic-scoring backend (the GMM / DNN /
/// LSTM whose execution the paper leaves on the GPU). Parameter counts
/// and per-frame FLOPs drive the Figure 1/2/12/13 experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcousticBackend {
    /// Gaussian mixture model: `num_pdfs` senones × `mixtures` diagonal
    /// Gaussians over `feat_dim` features.
    Gmm {
        /// Number of senones.
        num_pdfs: usize,
        /// Gaussians per senone.
        mixtures: usize,
        /// Feature dimensionality.
        feat_dim: usize,
    },
    /// Feed-forward DNN with the given layer widths (input first).
    Dnn {
        /// Layer widths, e.g. `[440, 2048, 2048, 2048, 2048, 8000]`.
        layer_widths: [usize; 6],
    },
    /// Bidirectional LSTM stack (EESEN-style).
    Lstm {
        /// Input feature size.
        input: usize,
        /// Hidden units per direction.
        hidden: usize,
        /// Stacked layers.
        layers: usize,
    },
}

impl AcousticBackend {
    /// Number of trainable parameters.
    pub fn num_params(&self) -> u64 {
        match *self {
            AcousticBackend::Gmm {
                num_pdfs,
                mixtures,
                feat_dim,
            } => {
                // mean + variance per dim, plus a mixture weight.
                (num_pdfs * mixtures * (2 * feat_dim + 1)) as u64
            }
            AcousticBackend::Dnn { layer_widths } => layer_widths
                .windows(2)
                .map(|w| (w[0] * w[1] + w[1]) as u64)
                .sum(),
            AcousticBackend::Lstm {
                input,
                hidden,
                layers,
            } => {
                // 4 gates, bidirectional: 2 directions per layer.
                let l1 = 2u64 * 4 * ((input * hidden + hidden * hidden + hidden) as u64);
                let ln = 2u64 * 4 * ((2 * hidden * hidden + hidden * hidden + hidden) as u64);
                l1 + ln * (layers as u64 - 1)
            }
        }
    }

    /// Model size in bytes (32-bit parameters).
    pub fn bytes(&self) -> u64 {
        self.num_params() * 4
    }

    /// Arithmetic operations needed to score one frame.
    pub fn flops_per_frame(&self) -> u64 {
        match *self {
            AcousticBackend::Gmm { .. } => 2 * self.num_params(),
            AcousticBackend::Dnn { .. } => 2 * self.num_params(),
            AcousticBackend::Lstm { .. } => 2 * self.num_params(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn setup() -> Lexicon {
        Lexicon::generate(100, 30, 17)
    }

    #[test]
    fn alignment_matches_pronunciations_cleanly() {
        let lex = setup();
        let utt = synthesize_utterance(
            &[3, 7],
            &lex,
            HmmTopology::Kaldi3State,
            &NoiseModel::clean(),
            1,
        );
        // Dedup consecutive frames -> PDF sequence must equal the
        // concatenated per-phoneme PDFs.
        let mut dedup: Vec<PdfId> = Vec::new();
        for &p in &utt.alignment {
            if dedup.last() != Some(&p) {
                dedup.push(p);
            }
        }
        let want: Vec<PdfId> = [3u32, 7]
            .iter()
            .flat_map(|&w| {
                lex.pronunciation(w)
                    .iter()
                    .flat_map(|&ph| HmmTopology::Kaldi3State.pdfs(ph))
            })
            .collect();
        assert_eq!(dedup, want);
    }

    #[test]
    fn clean_scores_favor_truth() {
        let lex = setup();
        let utt = synthesize_utterance(
            &[1, 2, 3],
            &lex,
            HmmTopology::Kaldi3State,
            &NoiseModel::clean(),
            2,
        );
        for (t, &true_pdf) in utt.alignment.iter().enumerate() {
            let true_cost = utt.scores.cost(t, true_pdf);
            for pdf in 1..=utt.scores.num_pdfs() as PdfId {
                if pdf != true_pdf {
                    assert!(
                        utt.scores.cost(t, pdf) > true_cost,
                        "frame {t}: pdf {pdf} beats truth"
                    );
                }
            }
        }
    }

    #[test]
    fn audio_seconds_uses_10ms_frames() {
        let lex = setup();
        let utt = synthesize_utterance(
            &[1],
            &lex,
            HmmTopology::Kaldi3State,
            &NoiseModel::clean(),
            3,
        );
        let s = utt.audio_seconds();
        assert!((s - utt.alignment.len() as f64 * 0.01).abs() < 1e-12);
    }

    #[test]
    fn deterministic_per_seed() {
        let lex = setup();
        let a = synthesize_utterance(
            &[5, 6],
            &lex,
            HmmTopology::Kaldi3State,
            &NoiseModel::default(),
            9,
        );
        let b = synthesize_utterance(
            &[5, 6],
            &lex,
            HmmTopology::Kaldi3State,
            &NoiseModel::default(),
            9,
        );
        assert_eq!(a.alignment, b.alignment);
        assert_eq!(a.scores.cost(0, 1), b.scores.cost(0, 1));
    }

    #[test]
    fn ctc_inserts_blank_frames_sometimes() {
        let lex = setup();
        let blank = HmmTopology::Ctc.blank_pdf(30).unwrap();
        let mut any_blank = false;
        for seed in 0..20 {
            let utt = synthesize_utterance(
                &[1, 2, 3, 4],
                &lex,
                HmmTopology::Ctc,
                &NoiseModel::clean(),
                seed,
            );
            any_blank |= utt.alignment.contains(&blank);
        }
        assert!(any_blank, "no blank frames in 20 utterances");
    }

    #[test]
    #[should_panic(expected = "empty word sequence")]
    fn empty_words_panics() {
        let lex = setup();
        let _ = synthesize_utterance(&[], &lex, HmmTopology::Kaldi3State, &NoiseModel::clean(), 0);
    }

    #[test]
    fn backend_sizes_are_plausible() {
        // Constants chosen so the synthetic backends land in the paper's
        // Figure 2 ballpark (tens to ~150 MB).
        let gmm = AcousticBackend::Gmm {
            num_pdfs: 4_000,
            mixtures: 32,
            feat_dim: 40,
        };
        let dnn = AcousticBackend::Dnn {
            layer_widths: [440, 2048, 2048, 2048, 2048, 8000],
        };
        let lstm = AcousticBackend::Lstm {
            input: 120,
            hidden: 320,
            layers: 5,
        };
        assert!(gmm.bytes() > 10 << 20 && gmm.bytes() < 100 << 20);
        assert!(dnn.bytes() > 30 << 20 && dnn.bytes() < 200 << 20);
        assert!(lstm.bytes() > 2 << 20 && lstm.bytes() < 100 << 20);
        for b in [gmm, dnn, lstm] {
            assert!(b.flops_per_frame() >= b.num_params());
        }
    }

    proptest! {
        #[test]
        fn scores_bounded_below(seed in 0u64..30, w1 in 1u32..100, w2 in 1u32..100) {
            let lex = setup();
            let utt = synthesize_utterance(&[w1, w2], &lex, HmmTopology::Kaldi3State, &NoiseModel::default(), seed);
            for t in 0..utt.scores.num_frames() {
                for pdf in 1..=utt.scores.num_pdfs() as PdfId {
                    prop_assert!(utt.scores.cost(t, pdf) >= 0.01);
                }
            }
        }

        #[test]
        fn frames_at_least_states(seed in 0u64..20, w in 1u32..100) {
            let lex = setup();
            let utt = synthesize_utterance(&[w], &lex, HmmTopology::Kaldi3State, &NoiseModel::clean(), seed);
            let min_frames = lex.pronunciation(w).len() * 3;
            prop_assert!(utt.alignment.len() >= min_frames);
        }
    }
}
