//! AM WFST construction (the paper's Figure 3a, at scale).
//!
//! The acoustic model is a lexicon prefix tree whose edges are expanded
//! into per-phoneme HMM state chains. Input labels are PDF (senone) ids
//! indexing the acoustic score vectors; output labels are epsilon except
//! on the word-ending arcs that loop back to the root — the "cross-word
//! transitions" that trigger LM transitions during decoding.
//!
//! States are allocated in DFS order over the prefix tree, which makes
//! most arcs point at the same state (self-loops) or the next state —
//! the locality the paper's Figure 5 compression exploits ("most of the
//! arcs ... point to the previous, the same or the next state").

use std::collections::HashMap;

use unfold_lm::WordId;
use unfold_wfst::{Arc, StateId, Wfst, WfstBuilder, EPSILON};

use crate::lexicon::{Lexicon, PhonemeId};

/// PDF (probability density function / senone) identifier: the index of
/// an entry in a frame's acoustic score vector. `1`-based; `0` would
/// collide with the epsilon label.
pub type PdfId = u32;

/// HMM topology used to expand a phoneme into states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HmmTopology {
    /// Kaldi-style 3-emitting-state left-to-right HMM per phoneme
    /// (self-loop + advance on each state). Used by the Kaldi tasks.
    Kaldi3State,
    /// EESEN/CTC-style single-state-per-phoneme topology with a shared
    /// blank PDF self-loop at the root. Used by the EESEN task.
    Ctc,
}

impl HmmTopology {
    /// Emitting states (and PDFs) per phoneme.
    pub fn states_per_phoneme(self) -> usize {
        match self {
            HmmTopology::Kaldi3State => 3,
            HmmTopology::Ctc => 1,
        }
    }

    /// Total number of PDFs for an inventory of `num_phonemes`.
    pub fn num_pdfs(self, num_phonemes: usize) -> usize {
        match self {
            HmmTopology::Kaldi3State => num_phonemes * 3,
            HmmTopology::Ctc => num_phonemes + 1, // + blank
        }
    }

    /// The PDF ids of `phoneme`, in emission order.
    pub fn pdfs(self, phoneme: PhonemeId) -> Vec<PdfId> {
        match self {
            HmmTopology::Kaldi3State => {
                let base = u32::from(phoneme) * 3 + 1;
                vec![base, base + 1, base + 2]
            }
            HmmTopology::Ctc => vec![u32::from(phoneme) + 1],
        }
    }

    /// The blank PDF (CTC only).
    pub fn blank_pdf(self, num_phonemes: usize) -> Option<PdfId> {
        match self {
            HmmTopology::Kaldi3State => None,
            HmmTopology::Ctc => Some(num_phonemes as PdfId + 1),
        }
    }
}

/// Negative log of the HMM self-loop probability (0.5 / 0.5 split).
const SELF_LOOP_COST: f32 = core::f32::consts::LN_2;
/// Negative log of the HMM advance probability.
const ADVANCE_COST: f32 = core::f32::consts::LN_2;

/// An AM WFST plus the metadata the decoder and score generator need.
#[derive(Debug, Clone)]
pub struct AmGraph {
    /// The transducer (PDF ids in, word ids out).
    pub fst: Wfst,
    /// Number of PDFs (length of each frame's score vector, 1-based ids).
    pub num_pdfs: usize,
    /// Topology used to build the graph.
    pub topology: HmmTopology,
    /// Number of phonemes in the inventory.
    pub num_phonemes: usize,
}

/// Builds the AM WFST for `lexicon` under `topology`.
///
/// The root (state 0) is both the start state and the only final state:
/// decoding starts there and every recognized word returns there via a
/// cross-word arc, exactly like Figure 3a.
pub fn build_am(lexicon: &Lexicon, topology: HmmTopology) -> AmGraph {
    // --- Phase 1: lexicon prefix tree. ---
    // node 0 is the root; each node stores children (phoneme -> node)
    // and the words ending there.
    struct TrieNode {
        children: HashMap<PhonemeId, usize>,
        child_order: Vec<PhonemeId>,
        words: Vec<WordId>,
    }
    let mut trie = vec![TrieNode {
        children: HashMap::new(),
        child_order: Vec::new(),
        words: Vec::new(),
    }];
    for (word, pron) in lexicon.iter() {
        let mut node = 0usize;
        for &ph in pron {
            node = match trie[node].children.get(&ph) {
                Some(&n) => n,
                None => {
                    let n = trie.len();
                    trie.push(TrieNode {
                        children: HashMap::new(),
                        child_order: Vec::new(),
                        words: Vec::new(),
                    });
                    trie[node].children.insert(ph, n);
                    trie[node].child_order.push(ph);
                    n
                }
            };
        }
        trie[node].words.push(word);
    }

    // --- Phase 2: DFS expansion into HMM chains. ---
    let mut b = WfstBuilder::new();
    let root = b.add_state();
    b.set_start(root);
    b.set_final(root, 0.0);

    // Word-end arcs buffered until all states exist (the builder checks
    // destinations eagerly, and the root already exists, but buffering
    // keeps the arc order deterministic: word ends appended last).
    // (entry state of node, phoneme chain) recursion, iterative stack.
    // Each stack entry: (trie node, entry state into that node).
    let mut stack: Vec<(usize, StateId)> = vec![(0, root)];
    let mut word_end_arcs: Vec<(StateId, WordId)> = Vec::new();
    while let Some((node, entry)) = stack.pop() {
        for &w in &trie[node].words {
            word_end_arcs.push((entry, w));
        }
        // Reverse so the first child is processed first (stack is LIFO),
        // keeping state ids contiguous along the first-child spine.
        for &ph in trie[node].child_order.iter().rev() {
            let child = trie[node].children[&ph];
            let pdfs = topology.pdfs(ph);
            let mut prev = entry;
            let mut first_pdf = true;
            for &pdf in &pdfs {
                let s = b.add_state();
                // Advance into the state consumes its first frame.
                b.add_arc(prev, Arc::new(pdf, EPSILON, ADVANCE_COST, s));
                // Self-loop re-consumes the same PDF.
                b.add_arc(s, Arc::new(pdf, EPSILON, SELF_LOOP_COST, s));
                prev = s;
                first_pdf = false;
            }
            debug_assert!(!first_pdf, "phoneme with zero PDFs");
            stack.push((child, prev));
        }
    }
    for (state, word) in word_end_arcs {
        b.add_arc(state, Arc::new(EPSILON, word, 0.0, root));
    }
    // CTC: optional blank between words, modeled as a blank self-loop on
    // the root.
    if let Some(blank) = topology.blank_pdf(lexicon.num_phonemes()) {
        b.add_arc(root, Arc::new(blank, EPSILON, SELF_LOOP_COST, root));
    }

    AmGraph {
        fst: b.build(),
        num_pdfs: topology.num_pdfs(lexicon.num_phonemes()),
        topology,
        num_phonemes: lexicon.num_phonemes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unfold_wfst::FstStats;

    fn lex() -> Lexicon {
        Lexicon::generate(300, 40, 13)
    }

    #[test]
    fn root_is_start_and_final() {
        let am = build_am(&lex(), HmmTopology::Kaldi3State);
        assert_eq!(am.fst.start(), 0);
        assert_eq!(am.fst.final_weight(0), Some(0.0));
    }

    #[test]
    fn one_cross_word_arc_per_word() {
        let l = lex();
        let am = build_am(&l, HmmTopology::Kaldi3State);
        let stats = FstStats::measure(&am.fst);
        assert_eq!(stats.cross_word_arcs, l.vocab_size());
        // Cross-word arcs all return to the root.
        let mut seen = std::collections::HashSet::new();
        for s in am.fst.states() {
            for a in am.fst.arcs(s) {
                if a.is_cross_word() {
                    assert_eq!(a.nextstate, am.fst.start());
                    assert!(seen.insert(a.olabel), "word {} emitted twice", a.olabel);
                }
            }
        }
    }

    #[test]
    fn prefix_tree_shares_states() {
        let l = lex();
        let am = build_am(&l, HmmTopology::Kaldi3State);
        // Without sharing, states = sum of pronunciation lengths * 3 + 1.
        let unshared: usize = l.iter().map(|(_, p)| p.len() * 3).sum::<usize>() + 1;
        assert!(
            am.fst.num_states() < unshared,
            "trie should share prefixes: {} vs {}",
            am.fst.num_states(),
            unshared
        );
    }

    #[test]
    fn arcs_are_mostly_local() {
        // The premise of the paper's 20-bit AM arc format: most arcs are
        // self-loops or +/-1. With DFS allocation we expect a clear
        // majority.
        let am = build_am(&lex(), HmmTopology::Kaldi3State);
        let stats = FstStats::measure(&am.fst);
        assert!(
            stats.local_arc_fraction() > 0.6,
            "local fraction too low: {}",
            stats.local_arc_fraction()
        );
    }

    #[test]
    fn pdf_ids_in_range_and_nonzero() {
        let am = build_am(&lex(), HmmTopology::Kaldi3State);
        for s in am.fst.states() {
            for a in am.fst.arcs(s) {
                if a.ilabel != EPSILON {
                    assert!(a.ilabel as usize <= am.num_pdfs, "pdf {} too big", a.ilabel);
                }
            }
        }
        assert_eq!(am.num_pdfs, 40 * 3);
    }

    #[test]
    fn every_state_has_selfloop_except_root() {
        let am = build_am(&lex(), HmmTopology::Kaldi3State);
        for s in 1..am.fst.num_states() as StateId {
            assert!(
                am.fst.arcs(s).iter().any(|a| a.nextstate == s),
                "HMM state {s} lacks a self-loop"
            );
        }
    }

    #[test]
    fn ctc_topology_has_blank_and_one_state_per_phoneme() {
        let l = lex();
        let am = build_am(&l, HmmTopology::Ctc);
        assert_eq!(am.num_pdfs, 41);
        // Root must have the blank self-loop.
        let blank = HmmTopology::Ctc.blank_pdf(40).unwrap();
        assert!(am
            .fst
            .arcs(0)
            .iter()
            .any(|a| a.ilabel == blank && a.nextstate == 0));
        // CTC graph is about 3x smaller than Kaldi3State.
        let kaldi = build_am(&l, HmmTopology::Kaldi3State);
        assert!(am.fst.num_states() < kaldi.fst.num_states());
    }

    #[test]
    fn topology_pdf_mapping() {
        assert_eq!(HmmTopology::Kaldi3State.pdfs(0), vec![1, 2, 3]);
        assert_eq!(HmmTopology::Kaldi3State.pdfs(2), vec![7, 8, 9]);
        assert_eq!(HmmTopology::Ctc.pdfs(5), vec![6]);
        assert_eq!(HmmTopology::Ctc.blank_pdf(40), Some(41));
        assert_eq!(HmmTopology::Kaldi3State.blank_pdf(40), None);
    }

    #[test]
    fn word_path_exists_for_each_word() {
        // Follow each word's pronunciation through the graph greedily:
        // from the root, consume each PDF's advance arc, then find the
        // cross-word arc.
        let l = Lexicon::generate(50, 20, 3);
        let am = build_am(&l, HmmTopology::Kaldi3State);
        for (word, pron) in l.iter() {
            let mut s = am.fst.start();
            for &ph in pron {
                for pdf in HmmTopology::Kaldi3State.pdfs(ph) {
                    let arc = am
                        .fst
                        .arcs(s)
                        .iter()
                        .find(|a| a.ilabel == pdf && a.nextstate != s)
                        .unwrap_or_else(|| panic!("word {word}: no advance arc for pdf {pdf}"));
                    s = arc.nextstate;
                }
            }
            assert!(
                am.fst.arcs(s).iter().any(|a| a.olabel == word),
                "word {word}: no cross-word arc at path end"
            );
        }
    }
}
