//! Synthetic pronunciation lexicon.
//!
//! Substitutes for the CMU-dict-style lexica inside the paper's Kaldi /
//! EESEN recipes. Two realistic properties are kept because they shape
//! the AM WFST topology:
//!
//! * frequent words have short pronunciations (Zipf's law of
//!   abbreviation), so the busiest decoding paths are shallow;
//! * words share prefixes, so the lexicon prefix tree compresses state
//!   count near the root.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use unfold_lm::WordId;

/// Phoneme identifier, `0..num_phonemes`.
pub type PhonemeId = u16;

/// A pronunciation lexicon: one phoneme sequence per word.
#[derive(Debug, Clone)]
pub struct Lexicon {
    prons: Vec<Vec<PhonemeId>>,
    num_phonemes: usize,
}

impl Lexicon {
    /// Generates a lexicon of `vocab_size` words over `num_phonemes`
    /// phonemes, deterministically from `seed`.
    ///
    /// Word ids follow frequency rank (id 1 = most frequent), so
    /// pronunciations grow with the word id: roughly 2–3 phonemes for
    /// the head of the vocabulary, up to 8 for the tail — mirroring real
    /// lexica where "a"/"the" are short and rare words are long.
    /// Pronunciations are guaranteed unique (no homophones) so that a
    /// word sequence maps to exactly one phoneme path.
    ///
    /// # Panics
    /// Panics if `vocab_size == 0` or `num_phonemes < 4`.
    pub fn generate(vocab_size: usize, num_phonemes: usize, seed: u64) -> Self {
        assert!(vocab_size > 0, "generate: empty vocabulary");
        assert!(num_phonemes >= 4, "generate: need at least 4 phonemes");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut seen = std::collections::HashSet::new();
        let mut prons = Vec::with_capacity(vocab_size + 1);
        prons.push(Vec::new()); // word id 0 = epsilon, unused
        for rank in 1..=vocab_size {
            // Target length grows logarithmically with rank.
            let base = 2.0 + (rank as f64).ln() * 0.75;
            let mut len = (base + rng.gen_range(-0.5..1.5)).round() as usize;
            len = len.clamp(2, 8);
            let pron = loop {
                let candidate: Vec<PhonemeId> = (0..len)
                    .map(|_| rng.gen_range(0..num_phonemes) as PhonemeId)
                    .collect();
                if seen.insert(candidate.clone()) {
                    break candidate;
                }
                // Collision: allow the pronunciation to grow so the
                // search always terminates even for tiny inventories.
                len = (len + 1).min(12);
            };
            prons.push(pron);
        }
        Lexicon {
            prons,
            num_phonemes,
        }
    }

    /// Number of words (excluding epsilon).
    pub fn vocab_size(&self) -> usize {
        self.prons.len() - 1
    }

    /// Number of distinct phonemes.
    pub fn num_phonemes(&self) -> usize {
        self.num_phonemes
    }

    /// Pronunciation of `word`.
    ///
    /// # Panics
    /// Panics if `word` is 0 or out of range.
    pub fn pronunciation(&self, word: WordId) -> &[PhonemeId] {
        assert!(
            word >= 1 && (word as usize) < self.prons.len(),
            "pronunciation: bad word id {word}"
        );
        &self.prons[word as usize]
    }

    /// Iterates `(word_id, pronunciation)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (WordId, &[PhonemeId])> + '_ {
        self.prons
            .iter()
            .enumerate()
            .skip(1)
            .map(|(i, p)| (i as WordId, p.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn deterministic() {
        let a = Lexicon::generate(200, 40, 9);
        let b = Lexicon::generate(200, 40, 9);
        for w in 1..=200u32 {
            assert_eq!(a.pronunciation(w), b.pronunciation(w));
        }
    }

    #[test]
    fn no_homophones() {
        let lex = Lexicon::generate(500, 30, 1);
        let mut seen = std::collections::HashSet::new();
        for (_, p) in lex.iter() {
            assert!(seen.insert(p.to_vec()), "duplicate pronunciation {p:?}");
        }
    }

    #[test]
    fn frequent_words_are_shorter_on_average() {
        let lex = Lexicon::generate(2_000, 40, 5);
        let head: f64 = (1..=100u32)
            .map(|w| lex.pronunciation(w).len() as f64)
            .sum::<f64>()
            / 100.0;
        let tail: f64 = (1_901..=2_000u32)
            .map(|w| lex.pronunciation(w).len() as f64)
            .sum::<f64>()
            / 100.0;
        assert!(
            head < tail,
            "head {head} should be shorter than tail {tail}"
        );
    }

    #[test]
    #[should_panic(expected = "bad word id")]
    fn pronunciation_of_epsilon_panics() {
        let lex = Lexicon::generate(10, 10, 0);
        let _ = lex.pronunciation(0);
    }

    #[test]
    fn tiny_inventory_still_unique() {
        // 4 phonemes, 300 words: collisions are frequent and must be
        // resolved by lengthening.
        let lex = Lexicon::generate(300, 4, 2);
        let mut seen = std::collections::HashSet::new();
        for (_, p) in lex.iter() {
            assert!(seen.insert(p.to_vec()));
            assert!(p.len() <= 12);
        }
    }

    proptest! {
        #[test]
        fn phonemes_in_range(vocab in 1usize..100, phones in 4usize..60, seed in 0u64..50) {
            let lex = Lexicon::generate(vocab, phones, seed);
            for (_, p) in lex.iter() {
                prop_assert!(p.len() >= 2);
                for &ph in p {
                    prop_assert!((ph as usize) < phones);
                }
            }
        }
    }
}
