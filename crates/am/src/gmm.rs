//! A real Gaussian-mixture acoustic model.
//!
//! [`crate::acoustic`] synthesizes score *tables* with a calibrated
//! error knob — ideal for controlled experiments. This module is the
//! genuine article: a diagonal-covariance GMM per PDF, feature vectors
//! *sampled* from the true PDF's mixture, and per-frame costs computed
//! with the actual log-likelihood math (log-sum-exp over mixtures).
//! Recognition errors then emerge naturally from Gaussian overlap,
//! controlled by the separation between PDF means — the same physics as
//! a real front-end, at synthetic scale. It is also the computation the
//! paper's Kaldi-TEDLIUM/Voxforge decoders run on the GPU (Figure 1's
//! GMM bars), so its FLOP count is measured, not asserted.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use unfold_lm::WordId;

use crate::acoustic::{AcousticScores, Utterance};
use crate::graph::{HmmTopology, PdfId};
use crate::lexicon::Lexicon;

/// Standard-normal draw (Box–Muller).
fn gauss(rng: &mut SmallRng) -> f32 {
    let u1: f32 = rng.gen_range(1e-7..1.0);
    let u2: f32 = rng.gen::<f32>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * core::f32::consts::PI * u2).cos()
}

/// A diagonal-covariance GMM acoustic model: one mixture per PDF.
#[derive(Debug, Clone)]
pub struct GmmModel {
    num_pdfs: usize,
    dim: usize,
    mixtures: usize,
    /// Means, `[pdf][mix][dim]` flattened.
    means: Vec<f32>,
    /// Variances (diagonal), same layout.
    vars: Vec<f32>,
    /// Log mixture weights, `[pdf][mix]` flattened.
    log_mix_w: Vec<f32>,
    /// Per-(pdf, mix) Gaussian normalizer:
    /// `-0.5 * (dim*ln(2π) + Σ ln var)`.
    gconst: Vec<f32>,
}

impl GmmModel {
    /// Synthesizes a model: PDF centres drawn from `N(0, separation²)`
    /// per dimension, mixture means jittered around each centre, and
    /// unit-order variances. Larger `separation` ⇒ less overlap ⇒
    /// fewer recognition errors.
    ///
    /// # Panics
    /// Panics on zero `num_pdfs`/`dim`/`mixtures` or non-positive
    /// `separation`.
    pub fn synthesize(
        num_pdfs: usize,
        dim: usize,
        mixtures: usize,
        separation: f32,
        seed: u64,
    ) -> Self {
        assert!(
            num_pdfs > 0 && dim > 0 && mixtures > 0,
            "synthesize: empty model"
        );
        assert!(separation > 0.0, "synthesize: separation must be positive");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut means = Vec::with_capacity(num_pdfs * mixtures * dim);
        let mut vars = Vec::with_capacity(num_pdfs * mixtures * dim);
        let mut log_mix_w = Vec::with_capacity(num_pdfs * mixtures);
        for _ in 0..num_pdfs {
            let centre: Vec<f32> = (0..dim).map(|_| separation * gauss(&mut rng)).collect();
            let mut raw_w = Vec::with_capacity(mixtures);
            for _ in 0..mixtures {
                for &c in &centre {
                    means.push(c + 0.3 * gauss(&mut rng));
                    vars.push(rng.gen_range(0.6..1.4));
                }
                raw_w.push(rng.gen_range(0.5f32..1.5));
            }
            let total: f32 = raw_w.iter().sum();
            for w in raw_w {
                log_mix_w.push((w / total).ln());
            }
        }
        let mut model = GmmModel {
            num_pdfs,
            dim,
            mixtures,
            means,
            vars,
            log_mix_w,
            gconst: Vec::new(),
        };
        model.gconst = (0..num_pdfs * mixtures)
            .map(|pm| {
                let lo = pm * model.dim;
                let sum_ln_var: f32 = model.vars[lo..lo + model.dim].iter().map(|v| v.ln()).sum();
                -0.5 * (model.dim as f32 * (2.0 * core::f32::consts::PI).ln() + sum_ln_var)
            })
            .collect();
        model
    }

    /// Number of PDFs.
    pub fn num_pdfs(&self) -> usize {
        self.num_pdfs
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Parameter bytes (means + variances + weights, 32-bit).
    pub fn params_bytes(&self) -> u64 {
        ((self.means.len() + self.vars.len() + self.log_mix_w.len()) * 4) as u64
    }

    /// Arithmetic operations to score one frame against all PDFs
    /// (measured from the evaluation loop: ~4 ops per dimension per
    /// Gaussian plus the log-sum-exp).
    pub fn flops_per_frame(&self) -> u64 {
        (self.num_pdfs * self.mixtures * (4 * self.dim + 8)) as u64
    }

    fn block(&self, pdf: PdfId, mix: usize) -> usize {
        ((pdf as usize - 1) * self.mixtures + mix) * self.dim
    }

    /// Samples a feature vector from `pdf`'s mixture.
    ///
    /// # Panics
    /// Panics if `pdf` is out of range.
    pub fn sample_frame(&self, pdf: PdfId, rng: &mut SmallRng) -> Vec<f32> {
        assert!(
            pdf >= 1 && (pdf as usize) <= self.num_pdfs,
            "sample_frame: bad pdf {pdf}"
        );
        // Pick a mixture component by weight.
        let wbase = (pdf as usize - 1) * self.mixtures;
        let u: f32 = rng.gen();
        let mut acc = 0.0;
        let mut mix = self.mixtures - 1;
        for m in 0..self.mixtures {
            acc += self.log_mix_w[wbase + m].exp();
            if u < acc {
                mix = m;
                break;
            }
        }
        let lo = self.block(pdf, mix);
        (0..self.dim)
            .map(|d| self.means[lo + d] + self.vars[lo + d].sqrt() * gauss(rng))
            .collect()
    }

    /// Log-likelihood of `feat` under one (pdf, mixture) Gaussian.
    fn log_gaussian(&self, pdf: PdfId, mix: usize, feat: &[f32]) -> f32 {
        let lo = self.block(pdf, mix);
        let mut quad = 0.0f32;
        for (d, &f) in feat.iter().enumerate().take(self.dim) {
            let diff = f - self.means[lo + d];
            quad += diff * diff / self.vars[lo + d];
        }
        self.gconst[(pdf as usize - 1) * self.mixtures + mix] - 0.5 * quad
    }

    /// Scores `feat` against every PDF; returns *costs* (negative
    /// log-likelihoods), index `pdf - 1`.
    ///
    /// # Panics
    /// Panics if `feat` has the wrong dimensionality.
    pub fn frame_costs(&self, feat: &[f32]) -> Vec<f32> {
        let mut out = Vec::new();
        self.frame_costs_into(feat, &mut out);
        out
    }

    /// [`GmmModel::frame_costs`] into a caller-owned buffer (cleared and
    /// refilled), so a streaming scorer reuses one allocation per row.
    ///
    /// # Panics
    /// Panics if `feat` has the wrong dimensionality.
    pub fn frame_costs_into(&self, feat: &[f32], out: &mut Vec<f32>) {
        assert_eq!(feat.len(), self.dim, "frame_costs: dimension mismatch");
        out.clear();
        out.reserve(self.num_pdfs);
        for pdf in 1..=self.num_pdfs as PdfId {
            // log-sum-exp over mixtures.
            let wbase = (pdf as usize - 1) * self.mixtures;
            let mut max = f32::NEG_INFINITY;
            for m in 0..self.mixtures {
                let ll = self.log_mix_w[wbase + m] + self.log_gaussian(pdf, m, feat);
                max = max.max(ll);
            }
            let mut sum = 0.0f32;
            for m in 0..self.mixtures {
                let ll = self.log_mix_w[wbase + m] + self.log_gaussian(pdf, m, feat);
                sum += (ll - max).exp();
            }
            out.push(-(max + sum.ln()));
        }
    }
}

/// Synthesizes an utterance through the GMM: the alignment is expanded
/// as in [`crate::acoustic::synthesize_utterance`], but each frame is a
/// *sampled feature vector* scored with real GMM arithmetic — errors
/// come from Gaussian overlap, not from an injected confusion.
///
/// # Panics
/// Panics if `words` is empty, or if the model's PDF count does not
/// cover the topology's.
pub fn synthesize_utterance_gmm(
    words: &[WordId],
    lexicon: &Lexicon,
    topology: HmmTopology,
    gmm: &GmmModel,
    seed: u64,
) -> Utterance {
    assert!(
        !words.is_empty(),
        "synthesize_utterance_gmm: empty word sequence"
    );
    assert!(
        gmm.num_pdfs() >= topology.num_pdfs(lexicon.num_phonemes()),
        "synthesize_utterance_gmm: model covers {} PDFs, topology needs {}",
        gmm.num_pdfs(),
        topology.num_pdfs(lexicon.num_phonemes())
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut alignment: Vec<PdfId> = Vec::new();
    for &w in words {
        for &ph in lexicon.pronunciation(w) {
            for pdf in topology.pdfs(ph) {
                let mut d = 1;
                while d < 4 && rng.gen::<f32>() < 0.45 {
                    d += 1;
                }
                for _ in 0..d {
                    alignment.push(pdf);
                }
            }
        }
    }
    let mut flat = Vec::with_capacity(alignment.len() * gmm.num_pdfs());
    for &pdf in &alignment {
        let feat = gmm.sample_frame(pdf, &mut rng);
        flat.extend(gmm.frame_costs(&feat));
    }
    let scores = AcousticScores::from_flat(flat, gmm.num_pdfs());
    Utterance {
        words: words.to_vec(),
        alignment,
        scores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(separation: f32) -> GmmModel {
        GmmModel::synthesize(60, 12, 2, separation, 7)
    }

    #[test]
    fn frame_costs_favor_the_generating_pdf_when_separated() {
        let m = model(6.0);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut wins = 0;
        let trials = 200;
        for t in 0..trials {
            let pdf = (t % 60) as PdfId + 1;
            let feat = m.sample_frame(pdf, &mut rng);
            let costs = m.frame_costs(&feat);
            let best = costs
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0 as u32
                + 1;
            if best == pdf {
                wins += 1;
            }
        }
        assert!(
            wins > trials * 95 / 100,
            "only {wins}/{trials} frames classified"
        );
    }

    #[test]
    fn overlapping_gaussians_confuse_frames() {
        let tight = model(0.3);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut wins = 0;
        for t in 0..200 {
            let pdf = (t % 60) as PdfId + 1;
            let feat = tight.sample_frame(pdf, &mut rng);
            let costs = tight.frame_costs(&feat);
            let best = costs
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0 as u32
                + 1;
            if best == pdf {
                wins += 1;
            }
        }
        assert!(wins < 160, "{wins}/200 — separation 0.3 should overlap");
    }

    #[test]
    fn log_sum_exp_matches_single_mixture_gaussian() {
        // With one mixture the cost is exactly the negative Gaussian
        // log-density.
        let m = GmmModel::synthesize(4, 3, 1, 2.0, 3);
        let mut rng = SmallRng::seed_from_u64(4);
        let feat = m.sample_frame(2, &mut rng);
        let costs = m.frame_costs(&feat);
        let direct = -(m.log_mix_w[1] + m.log_gaussian(2, 0, &feat));
        assert!((costs[1] - direct).abs() < 1e-4);
        // log weight of a single mixture is ln(1) = 0.
        assert!(m.log_mix_w[1].abs() < 1e-6);
    }

    #[test]
    fn flops_and_bytes_scale_with_shape() {
        let small = GmmModel::synthesize(10, 8, 2, 1.0, 0);
        let big = GmmModel::synthesize(100, 8, 2, 1.0, 0);
        assert_eq!(big.flops_per_frame(), 10 * small.flops_per_frame());
        assert_eq!(big.params_bytes(), 10 * small.params_bytes());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = GmmModel::synthesize(10, 4, 2, 1.0, 9);
        let b = GmmModel::synthesize(10, 4, 2, 1.0, 9);
        assert_eq!(a.means, b.means);
        assert_eq!(a.gconst, b.gconst);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dimension_panics() {
        let m = model(1.0);
        let _ = m.frame_costs(&[0.0; 3]);
    }

    mod end_to_end {
        use super::*;
        use crate::graph::build_am;
        use unfold_wfst::EPSILON;

        #[test]
        fn gmm_utterance_is_decodable_shaped() {
            let lex = Lexicon::generate(30, 15, 5);
            let am = build_am(&lex, HmmTopology::Kaldi3State);
            let gmm = GmmModel::synthesize(am.num_pdfs, 12, 2, 5.0, 11);
            let utt = synthesize_utterance_gmm(&[3, 7], &lex, HmmTopology::Kaldi3State, &gmm, 13);
            assert_eq!(utt.scores.num_pdfs(), am.num_pdfs);
            assert!(utt.scores.num_frames() >= utt.alignment.len());
            let _ = EPSILON;
            // The generating PDF should usually be the cheapest.
            let mut wins = 0;
            for (t, &pdf) in utt.alignment.iter().enumerate() {
                let row = utt.scores.frame(t);
                let best = row
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .unwrap()
                    .0 as u32
                    + 1;
                if best == pdf {
                    wins += 1;
                }
            }
            assert!(
                wins * 10 > utt.alignment.len() * 8,
                "{wins}/{}",
                utt.alignment.len()
            );
        }
    }
}
