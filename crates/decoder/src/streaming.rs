//! Frame-synchronous streaming decode.
//!
//! The paper's overall system (§5.2) splits speech into N-frame batches:
//! the GPU scores batch *i+1* while the accelerator decodes batch *i*
//! through a shared buffer. That pipeline requires a decoder that
//! accepts score rows incrementally instead of a complete utterance —
//! this module provides it. [`OtfStream`] holds the live token
//! population between pushes; pushing every frame of an utterance and
//! finalizing produces *bit-identical* results to
//! [`crate::OtfDecoder::decode`] (tested below), so the batched system
//! loses no accuracy, exactly as the paper asserts.

use crate::config::{DecodeConfig, DecodeResult, DecodeStats};
use crate::lattice::LATTICE_ROOT;
use crate::otf;
use crate::scratch::DecodeScratch;
use crate::search::Token;
use crate::sources::{AmSource, LmSource};
use crate::trace::TraceSink;

/// An in-progress on-the-fly decode. Create with [`OtfStream::new`],
/// feed frames with [`OtfStream::push_frame`], finish with
/// [`OtfStream::finish`]. The stream owns a [`DecodeScratch`], so
/// steady-state frame pushes allocate nothing.
pub struct OtfStream<'a, A: AmSource + ?Sized, L: LmSource + ?Sized> {
    am: &'a A,
    lm: &'a L,
    config: DecodeConfig,
    scratch: DecodeScratch,
    stats: DecodeStats,
    frame: usize,
}

impl<'a, A: AmSource + ?Sized, L: LmSource + ?Sized> OtfStream<'a, A, L> {
    /// Starts a decode: seeds the start token and runs the initial
    /// non-emitting closure.
    pub fn new(config: DecodeConfig, am: &'a A, lm: &'a L, sink: &mut dyn TraceSink) -> Self {
        let mut stream = OtfStream {
            am,
            lm,
            config,
            scratch: DecodeScratch::new(),
            stats: DecodeStats::default(),
            frame: 0,
        };
        stream.scratch.begin(&stream.config);
        stream.scratch.cur.insert(
            otf::token_key(am.start(), lm.start()),
            Token {
                cost: 0.0,
                lat: LATTICE_ROOT,
            },
        );
        otf::epsilon_closure(
            &stream.config,
            am,
            lm,
            &mut stream.scratch.cur,
            &mut stream.scratch.worklist,
            &mut stream.scratch.eps_local,
            &mut stream.scratch.probes,
            &mut stream.scratch.olt,
            &mut stream.scratch.lattice,
            0,
            f32::INFINITY,
            sink,
            &mut stream.stats,
        );
        stream
    }

    /// Frames consumed so far.
    pub fn frames_pushed(&self) -> usize {
        self.frame
    }

    /// Live hypotheses right now.
    pub fn num_active(&self) -> usize {
        self.scratch.cur.len()
    }

    /// Consumes one frame of acoustic costs (`costs[pdf - 1]`).
    ///
    /// # Panics
    /// Panics if an AM arc's PDF id exceeds `costs.len()`.
    pub fn push_frame(&mut self, costs: &[f32], sink: &mut dyn TraceSink) {
        otf::expand_frame(
            &self.config,
            self.am,
            self.lm,
            &mut self.scratch,
            costs,
            self.frame,
            sink,
            &mut self.stats,
        );
        self.frame += 1;
    }

    /// The best word sequence decodable *right now* (a partial
    /// hypothesis — useful for live captioning style output). Returns
    /// an empty sequence when nothing is final yet.
    pub fn partial_result(&self) -> Vec<unfold_lm::WordId> {
        let mut best: Option<(f32, u32)> = None;
        for tok in self.scratch.cur.values() {
            if best.is_none_or(|(c, _)| tok.cost < c) {
                best = Some((tok.cost, tok.lat));
            }
        }
        best.map_or_else(Vec::new, |(_, lat)| self.scratch.lattice.backtrace(lat))
    }

    /// Finishes the decode and returns the result.
    pub fn finish(self) -> DecodeResult {
        self.finish_with(&mut crate::trace::NullSink)
    }

    /// Finishes the decode, emitting the final lattice-backtrace span
    /// to `sink` (use the same sink the frames were pushed through to
    /// get a complete stage profile).
    pub fn finish_with(self, sink: &mut dyn TraceSink) -> DecodeResult {
        otf::finish(
            self.am,
            &self.scratch.cur,
            &self.scratch.lattice,
            self.stats,
            sink,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{CountingSink, NullSink};
    use crate::OtfDecoder;
    use unfold_am::{build_am, synthesize_utterance, HmmTopology, Lexicon, NoiseModel};
    use unfold_lm::{lm_to_wfst, CorpusSpec, DiscountConfig, NGramModel};
    use unfold_wfst::Wfst;

    fn setup() -> (Lexicon, Wfst, Wfst) {
        let lex = Lexicon::generate(50, 20, 6);
        let am = build_am(&lex, HmmTopology::Kaldi3State);
        let spec = CorpusSpec {
            vocab_size: 50,
            num_sentences: 300,
            ..Default::default()
        };
        let model = NGramModel::train(&spec.generate(3), 50, DiscountConfig::default());
        (lex, am.fst, lm_to_wfst(&model))
    }

    #[test]
    fn streaming_matches_batch_decode_exactly() {
        let (lex, am, lm) = setup();
        let utt = synthesize_utterance(
            &[3, 9, 17],
            &lex,
            HmmTopology::Kaldi3State,
            &NoiseModel::default(),
            5,
        );
        let cfg = DecodeConfig::default();
        let batch = OtfDecoder::new(cfg).decode(&am, &lm, &utt.scores, &mut NullSink);

        let mut stream = OtfStream::new(cfg, &am, &lm, &mut NullSink);
        for t in 0..utt.scores.num_frames() {
            stream.push_frame(utt.scores.frame(t), &mut NullSink);
        }
        let streamed = stream.finish();
        assert_eq!(batch.words, streamed.words);
        assert_eq!(batch.cost, streamed.cost);
        assert_eq!(batch.stats, streamed.stats);
    }

    #[test]
    fn streaming_emits_the_same_trace() {
        let (lex, am, lm) = setup();
        let utt = synthesize_utterance(
            &[1, 2],
            &lex,
            HmmTopology::Kaldi3State,
            &NoiseModel::clean(),
            9,
        );
        let cfg = DecodeConfig::default();
        let mut batch_sink = CountingSink::default();
        OtfDecoder::new(cfg).decode(&am, &lm, &utt.scores, &mut batch_sink);

        let mut stream_sink = CountingSink::default();
        let mut stream = OtfStream::new(cfg, &am, &lm, &mut stream_sink);
        for t in 0..utt.scores.num_frames() {
            stream.push_frame(utt.scores.frame(t), &mut stream_sink);
        }
        let _ = stream.finish();
        assert_eq!(batch_sink.am_arc_fetches, stream_sink.am_arc_fetches);
        assert_eq!(batch_sink.lm_arc_fetches, stream_sink.lm_arc_fetches);
        assert_eq!(batch_sink.token_bytes, stream_sink.token_bytes);
    }

    #[test]
    fn partial_results_grow_monotonically_on_clean_audio() {
        let (lex, am, lm) = setup();
        let truth = vec![7u32, 11, 4];
        let utt = synthesize_utterance(
            &truth,
            &lex,
            HmmTopology::Kaldi3State,
            &NoiseModel::clean(),
            2,
        );
        let mut stream = OtfStream::new(DecodeConfig::default(), &am, &lm, &mut NullSink);
        let mut last_len = 0usize;
        let mut shrank = false;
        for t in 0..utt.scores.num_frames() {
            stream.push_frame(utt.scores.frame(t), &mut NullSink);
            let p = stream.partial_result();
            if p.len() < last_len {
                shrank = true;
            }
            last_len = p.len();
        }
        let final_words = stream.finish().words;
        assert_eq!(final_words, truth);
        // Partial results may fluctuate on ambiguous frames, but a clean
        // utterance should mostly grow; at minimum the final answer is
        // reached.
        assert!(!shrank || final_words == truth);
    }

    #[test]
    fn active_count_visible_between_pushes() {
        let (lex, am, lm) = setup();
        let utt = synthesize_utterance(
            &[5],
            &lex,
            HmmTopology::Kaldi3State,
            &NoiseModel::clean(),
            1,
        );
        let mut stream = OtfStream::new(DecodeConfig::default(), &am, &lm, &mut NullSink);
        assert!(stream.num_active() >= 1);
        assert_eq!(stream.frames_pushed(), 0);
        stream.push_frame(utt.scores.frame(0), &mut NullSink);
        assert_eq!(stream.frames_pushed(), 1);
        assert!(stream.num_active() >= 1);
    }
}
