//! Frame-synchronous streaming decode.
//!
//! The paper's overall system (§5.2) splits speech into N-frame batches:
//! the GPU scores batch *i+1* while the accelerator decodes batch *i*
//! through a shared buffer. That pipeline requires a decoder that
//! accepts score rows incrementally instead of a complete utterance —
//! this module provides it, in two layers:
//!
//! * [`StreamSession`] — the detached core: it owns only the
//!   per-utterance search state ([`SessionScratch`] + stats) and takes
//!   the models **and a [`WorkScratch`]** as arguments on every call.
//!   This is the unit a multi-session scheduler juggles: many paused
//!   sessions, a handful of worker-owned `WorkScratch`es, shared
//!   models. A session may be advanced by *different* workers across
//!   its lifetime — `WorkScratch` carries no search state across a
//!   frame boundary, so decode output is independent of which worker
//!   ran which quantum.
//! * [`OtfStream`] — the borrow-and-go convenience wrapper for the
//!   single-session case: it pins the models and owns a private
//!   `WorkScratch`, so steady-state frame pushes allocate nothing.
//!
//! Pushing every frame of an utterance and finalizing produces
//! *bit-identical* results to [`crate::OtfDecoder::decode`] (tested
//! below), so the batched system loses no accuracy, exactly as the
//! paper asserts.

use crate::config::{DecodeConfig, DecodeResult, DecodeStats};
use crate::ingest::{AcousticScorer, FrameInput, ScoreError, SessionIngest};
use crate::lattice::WordLattice;
use crate::otf;
use crate::scratch::{SessionScratch, WorkScratch};
use crate::sources::{AmSource, LmSource};
use crate::trace::TraceSink;

/// An in-progress streaming decode holding **only** its own search
/// state. Create with [`StreamSession::new`], seed the start token with
/// [`StreamSession::seed`], feed frames with
/// [`StreamSession::push_frame`], finish with
/// [`StreamSession::finalize`]. Every decoding call borrows the models
/// and a [`WorkScratch`]; the session itself borrows nothing, so it can
/// be parked in a session table and advanced by whichever worker is
/// free.
#[derive(Debug)]
pub struct StreamSession {
    config: DecodeConfig,
    state: SessionScratch,
    stats: DecodeStats,
    frame: usize,
    seeded: bool,
    record_lattice: bool,
}

impl StreamSession {
    /// A fresh, unseeded session.
    pub fn new(config: DecodeConfig) -> Self {
        StreamSession {
            config,
            state: SessionScratch::new(),
            stats: DecodeStats::default(),
            frame: 0,
            seeded: false,
            record_lattice: false,
        }
    }

    /// Arms expansion-tape recording so [`StreamSession::finalize_lattice`]
    /// can build the exact word lattice. Contents-neutral for the search
    /// itself — the decode stays bit-identical either way.
    ///
    /// # Panics
    /// Panics if the session was already seeded.
    pub fn enable_lattice(&mut self) {
        assert!(
            !self.seeded,
            "StreamSession::enable_lattice: call before seed()"
        );
        self.record_lattice = true;
    }

    /// The beam configuration this session decodes under.
    pub fn config(&self) -> &DecodeConfig {
        &self.config
    }

    /// Whether [`StreamSession::seed`] has run.
    pub fn is_seeded(&self) -> bool {
        self.seeded
    }

    /// Seeds the start token and runs the initial non-emitting closure.
    /// Must run (once) before the first frame push.
    ///
    /// # Panics
    /// Panics if the session was already seeded.
    pub fn seed<A: AmSource + ?Sized, L: LmSource + ?Sized>(
        &mut self,
        am: &A,
        lm: &L,
        work: &mut WorkScratch,
        sink: &mut dyn TraceSink,
    ) {
        assert!(!self.seeded, "StreamSession::seed: already seeded");
        self.seeded = true;
        self.state
            .configure_bias_cache(self.config.bias_cache_entries);
        self.state.begin();
        self.state.lattice.set_recording(self.record_lattice);
        otf::seed_closure(
            &self.config,
            am,
            lm,
            &mut self.state,
            work,
            sink,
            &mut self.stats,
        );
    }

    /// Frames consumed so far.
    pub fn frames_pushed(&self) -> usize {
        self.frame
    }

    /// Live hypotheses right now.
    pub fn num_active(&self) -> usize {
        self.state.num_active()
    }

    /// Search statistics accumulated so far.
    pub fn stats(&self) -> &DecodeStats {
        &self.stats
    }

    /// Consumes one frame of acoustic costs (`costs[pdf - 1]`).
    ///
    /// # Panics
    /// Panics if the session is unseeded, or if an AM arc's PDF id
    /// exceeds `costs.len()`.
    pub fn push_frame<A: AmSource + ?Sized, L: LmSource + ?Sized>(
        &mut self,
        am: &A,
        lm: &L,
        work: &mut WorkScratch,
        costs: &[f32],
        sink: &mut dyn TraceSink,
    ) {
        assert!(self.seeded, "StreamSession::push_frame: seed() first");
        otf::expand_frame(
            &self.config,
            am,
            lm,
            &mut self.state,
            work,
            costs,
            self.frame,
            sink,
            &mut self.stats,
        );
        self.frame += 1;
    }

    /// Consumes one [`FrameInput`] — the unified ingest surface.
    /// `scorer` turns the frame into a score row (staged in `work`, so
    /// steady-state ingest allocates nothing); precomputed rows take
    /// the exact [`StreamSession::push_frame`] path and stay
    /// byte-for-byte compatible with it.
    ///
    /// # Errors
    /// [`ScoreError`] when the scorer refuses the frame; the session is
    /// unchanged (the frame was simply not consumed).
    ///
    /// # Panics
    /// Panics if the session is unseeded, or if an AM arc's PDF id
    /// exceeds the scorer's row width.
    pub fn ingest_frame<A: AmSource + ?Sized, L: LmSource + ?Sized>(
        &mut self,
        am: &A,
        lm: &L,
        scorer: &dyn AcousticScorer,
        work: &mut WorkScratch,
        frame: &FrameInput,
        sink: &mut dyn TraceSink,
    ) -> Result<(), ScoreError> {
        assert!(self.seeded, "StreamSession::ingest_frame: seed() first");
        let mut row = std::mem::take(&mut work.score_row);
        let scored = scorer.score_into(frame, &mut row);
        if scored.is_ok() {
            self.push_frame(am, lm, work, &row, sink);
        }
        work.score_row = row;
        scored
    }

    /// The best word sequence decodable *right now* (a partial
    /// hypothesis — useful for live captioning style output). Returns
    /// an empty sequence when nothing is final yet.
    pub fn partial_result(&self) -> Vec<unfold_lm::WordId> {
        let mut best: Option<(f32, u32)> = None;
        for tok in self.state.cur.values() {
            if best.is_none_or(|(c, _)| tok.cost < c) {
                best = Some((tok.cost, tok.lat));
            }
        }
        best.map_or_else(Vec::new, |(_, lat)| self.state.lattice.backtrace(lat))
    }

    /// The longest word prefix shared by **all** live hypotheses — the
    /// part of the transcript no amount of further audio can revise
    /// (every surviving path already agrees on it), so a serving layer
    /// can emit it as a non-flickering partial. Always a prefix of
    /// [`StreamSession::partial_result`]; empty when hypotheses still
    /// disagree from the first word (or nothing is live).
    pub fn partial_stable_prefix(&self) -> Vec<unfold_lm::WordId> {
        // Many tokens share a lattice node; dedup before backtracing.
        // The SoA store hands us the lattice lane as one contiguous
        // slice — no per-token iteration needed.
        let mut lats: Vec<u32> = self.state.cur.lats().to_vec();
        lats.sort_unstable();
        lats.dedup();
        let mut it = lats.into_iter();
        let Some(first) = it.next() else {
            return Vec::new();
        };
        let mut prefix = self.state.lattice.backtrace(first);
        for lat in it {
            if prefix.is_empty() {
                break;
            }
            let words = self.state.lattice.backtrace(lat);
            let common = prefix
                .iter()
                .zip(&words)
                .take_while(|(a, b)| a == b)
                .count();
            prefix.truncate(common);
        }
        prefix
    }

    /// Finishes the decode and returns the result, emitting the final
    /// lattice-backtrace span to `sink`. Non-consuming so a session
    /// table can keep the entry alive until the client collects the
    /// result; pushing further frames after finalizing is allowed but
    /// pointless.
    pub fn finalize<A: AmSource + ?Sized>(&self, am: &A, sink: &mut dyn TraceSink) -> DecodeResult {
        otf::finish(am, &self.state.cur, &self.state.lattice, self.stats, sink)
    }

    /// Finishes the decode and also builds the exact word lattice from
    /// the recorded expansion tape (pruned to
    /// [`DecodeConfig::lattice_beam`]). The [`DecodeResult`] is
    /// bit-identical to [`StreamSession::finalize`].
    ///
    /// # Panics
    /// Panics unless [`StreamSession::enable_lattice`] armed recording
    /// before the session was seeded.
    pub fn finalize_lattice<A: AmSource + ?Sized>(
        &self,
        am: &A,
        sink: &mut dyn TraceSink,
    ) -> (DecodeResult, WordLattice) {
        assert!(
            self.record_lattice,
            "StreamSession::finalize_lattice: enable_lattice() before seed()"
        );
        let res = otf::finish(am, &self.state.cur, &self.state.lattice, self.stats, sink);
        let lattice = if res.is_complete() {
            WordLattice::build(
                am,
                &self.state.lattice,
                &self.state.cur,
                self.config.lattice_beam,
            )
        } else {
            WordLattice::empty()
        };
        (res, lattice)
    }
}

/// An in-progress on-the-fly decode pinned to one model pair. Create
/// with [`OtfStream::new`], feed frames with [`OtfStream::push_frame`],
/// finish with [`OtfStream::finish`]. The stream owns its
/// [`WorkScratch`], so steady-state frame pushes allocate nothing.
///
/// This is a thin wrapper over [`StreamSession`]; use the session
/// directly when many concurrent decodes share models and workers.
pub struct OtfStream<'a, A: AmSource + ?Sized, L: LmSource + ?Sized> {
    am: &'a A,
    lm: &'a L,
    session: StreamSession,
    work: WorkScratch,
    scorer: Option<&'a dyn AcousticScorer>,
}

impl<'a, A: AmSource + ?Sized, L: LmSource + ?Sized> OtfStream<'a, A, L> {
    /// Starts a decode: seeds the start token and runs the initial
    /// non-emitting closure. The stream has no acoustic frontend, so
    /// [`SessionIngest::ingest`] accepts only precomputed score rows;
    /// use [`OtfStream::with_scorer`] to accept feature frames too.
    pub fn new(config: DecodeConfig, am: &'a A, lm: &'a L, sink: &mut dyn TraceSink) -> Self {
        let mut work = WorkScratch::new();
        work.begin(&config);
        let mut session = StreamSession::new(config);
        session.seed(am, lm, &mut work, sink);
        OtfStream {
            am,
            lm,
            session,
            work,
            scorer: None,
        }
    }

    /// Starts a decode whose ingest surface scores frames through
    /// `scorer`, so [`FrameInput::Features`] frames work too.
    pub fn with_scorer(
        config: DecodeConfig,
        am: &'a A,
        lm: &'a L,
        scorer: &'a dyn AcousticScorer,
        sink: &mut dyn TraceSink,
    ) -> Self {
        let mut stream = OtfStream::new(config, am, lm, sink);
        stream.scorer = Some(scorer);
        stream
    }

    /// The underlying [`StreamSession`] — the single home of the
    /// partial-result, stable-prefix, and stats logic the deprecated
    /// forwarding accessors used to duplicate.
    pub fn session(&self) -> &StreamSession {
        &self.session
    }

    /// Frames consumed so far.
    pub fn frames_pushed(&self) -> usize {
        self.session.frames_pushed()
    }

    /// Live hypotheses right now.
    pub fn num_active(&self) -> usize {
        self.session.num_active()
    }

    /// Consumes one frame of acoustic costs (`costs[pdf - 1]`).
    ///
    /// # Panics
    /// Panics if an AM arc's PDF id exceeds `costs.len()`.
    pub fn push_frame(&mut self, costs: &[f32], sink: &mut dyn TraceSink) {
        self.session
            .push_frame(self.am, self.lm, &mut self.work, costs, sink);
    }

    /// Consumes one [`FrameInput`], emitting trace events to `sink`.
    /// Equivalent to the [`SessionIngest`] impl but with an explicit
    /// sink. Feature frames require [`OtfStream::with_scorer`];
    /// precomputed rows always work and take the exact
    /// [`OtfStream::push_frame`] path.
    ///
    /// # Errors
    /// [`ScoreError`] when the frame was refused; the decode state is
    /// unchanged.
    pub fn ingest_with(
        &mut self,
        frame: &FrameInput,
        sink: &mut dyn TraceSink,
    ) -> Result<(), ScoreError> {
        match self.scorer {
            Some(scorer) => {
                self.session
                    .ingest_frame(self.am, self.lm, scorer, &mut self.work, frame, sink)
            }
            None => match frame {
                FrameInput::Scores(row) => {
                    self.push_frame(row, sink);
                    Ok(())
                }
                FrameInput::Features(_) => Err(ScoreError::FeaturesUnsupported),
            },
        }
    }

    /// The best word sequence decodable *right now*; forwarded
    /// verbatim from the session.
    #[deprecated(note = "use `session().partial_result()`")]
    pub fn partial_result(&self) -> Vec<unfold_lm::WordId> {
        self.session.partial_result()
    }

    /// The longest word prefix shared by all live hypotheses; forwarded
    /// verbatim from the session.
    #[deprecated(note = "use `session().partial_stable_prefix()`")]
    pub fn partial_stable_prefix(&self) -> Vec<unfold_lm::WordId> {
        self.session.partial_stable_prefix()
    }

    /// Search statistics accumulated so far; forwarded verbatim from
    /// the session.
    #[deprecated(note = "use `session().stats()`")]
    pub fn stats(&self) -> &DecodeStats {
        self.session.stats()
    }

    /// Finishes the decode and returns the result.
    pub fn finish(self) -> DecodeResult {
        self.finish_with(&mut crate::trace::NullSink)
    }

    /// Finishes the decode, emitting the final lattice-backtrace span
    /// to `sink` (use the same sink the frames were pushed through to
    /// get a complete stage profile).
    pub fn finish_with(self, sink: &mut dyn TraceSink) -> DecodeResult {
        self.session.finalize(self.am, sink)
    }
}

impl<A: AmSource + ?Sized, L: LmSource + ?Sized> SessionIngest for OtfStream<'_, A, L> {
    type Error = ScoreError;

    fn ingest(&mut self, frame: FrameInput) -> Result<(), Self::Error> {
        self.ingest_with(&frame, &mut crate::trace::NullSink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{CountingSink, NullSink};
    use crate::OtfDecoder;
    use unfold_am::{build_am, synthesize_utterance, HmmTopology, Lexicon, NoiseModel};
    use unfold_lm::{lm_to_wfst, CorpusSpec, DiscountConfig, NGramModel};
    use unfold_wfst::Wfst;

    fn setup() -> (Lexicon, Wfst, Wfst) {
        let lex = Lexicon::generate(50, 20, 6);
        let am = build_am(&lex, HmmTopology::Kaldi3State);
        let spec = CorpusSpec {
            vocab_size: 50,
            num_sentences: 300,
            ..Default::default()
        };
        let model = NGramModel::train(&spec.generate(3), 50, DiscountConfig::default());
        (lex, am.fst, lm_to_wfst(&model))
    }

    #[test]
    fn streaming_matches_batch_decode_exactly() {
        let (lex, am, lm) = setup();
        let utt = synthesize_utterance(
            &[3, 9, 17],
            &lex,
            HmmTopology::Kaldi3State,
            &NoiseModel::default(),
            5,
        );
        let cfg = DecodeConfig::default();
        let batch = OtfDecoder::new(cfg).decode(&am, &lm, &utt.scores, &mut NullSink);

        let mut stream = OtfStream::new(cfg, &am, &lm, &mut NullSink);
        for t in 0..utt.scores.num_frames() {
            stream.push_frame(utt.scores.frame(t), &mut NullSink);
        }
        let streamed = stream.finish();
        assert_eq!(batch.words, streamed.words);
        assert_eq!(batch.cost, streamed.cost);
        assert_eq!(batch.stats, streamed.stats);
    }

    #[test]
    fn detached_session_matches_batch_decode_exactly() {
        // The scheduler-facing path: a parked StreamSession advanced
        // with an external WorkScratch, models passed per call.
        let (lex, am, lm) = setup();
        let utt = synthesize_utterance(
            &[3, 9, 17],
            &lex,
            HmmTopology::Kaldi3State,
            &NoiseModel::default(),
            5,
        );
        let cfg = DecodeConfig::default();
        let batch = OtfDecoder::new(cfg).decode(&am, &lm, &utt.scores, &mut NullSink);

        let mut work = WorkScratch::new();
        work.begin(&cfg);
        let mut session = StreamSession::new(cfg);
        session.seed(&am, &lm, &mut work, &mut NullSink);
        for t in 0..utt.scores.num_frames() {
            session.push_frame(&am, &lm, &mut work, utt.scores.frame(t), &mut NullSink);
        }
        let streamed = session.finalize(&am, &mut NullSink);
        assert_eq!(batch.words, streamed.words);
        assert_eq!(batch.cost.to_bits(), streamed.cost.to_bits());
        assert_eq!(batch.stats, streamed.stats);
    }

    #[test]
    fn interleaved_sessions_with_shared_work_scratch_stay_independent() {
        // Two sessions advanced alternately through ONE WorkScratch
        // (what a serve worker does) must each produce exactly what
        // they produce decoded alone. The shared OLT warms across both,
        // so only words/cost are pinned, not fetch statistics.
        let (lex, am, lm) = setup();
        let ua = synthesize_utterance(
            &[3, 9, 17],
            &lex,
            HmmTopology::Kaldi3State,
            &NoiseModel::default(),
            5,
        );
        let ub = synthesize_utterance(
            &[7, 11, 4],
            &lex,
            HmmTopology::Kaldi3State,
            &NoiseModel::default(),
            8,
        );
        let cfg = DecodeConfig::builder().olt_entries(512).build().unwrap();
        let dec = OtfDecoder::new(cfg);
        let alone_a = dec.decode(&am, &lm, &ua.scores, &mut NullSink);
        let alone_b = dec.decode(&am, &lm, &ub.scores, &mut NullSink);

        let mut work = WorkScratch::new();
        work.configure_olt(cfg.olt_entries);
        let mut sa = StreamSession::new(cfg);
        let mut sb = StreamSession::new(cfg);
        sa.seed(&am, &lm, &mut work, &mut NullSink);
        sb.seed(&am, &lm, &mut work, &mut NullSink);
        let frames = ua.scores.num_frames().max(ub.scores.num_frames());
        for t in 0..frames {
            if t < ua.scores.num_frames() {
                sa.push_frame(&am, &lm, &mut work, ua.scores.frame(t), &mut NullSink);
            }
            if t < ub.scores.num_frames() {
                sb.push_frame(&am, &lm, &mut work, ub.scores.frame(t), &mut NullSink);
            }
        }
        let ra = sa.finalize(&am, &mut NullSink);
        let rb = sb.finalize(&am, &mut NullSink);
        assert_eq!(ra.words, alone_a.words);
        assert_eq!(ra.cost.to_bits(), alone_a.cost.to_bits());
        assert_eq!(rb.words, alone_b.words);
        assert_eq!(rb.cost.to_bits(), alone_b.cost.to_bits());
    }

    #[test]
    fn streaming_emits_the_same_trace() {
        let (lex, am, lm) = setup();
        let utt = synthesize_utterance(
            &[1, 2],
            &lex,
            HmmTopology::Kaldi3State,
            &NoiseModel::clean(),
            9,
        );
        let cfg = DecodeConfig::default();
        let mut batch_sink = CountingSink::default();
        OtfDecoder::new(cfg).decode(&am, &lm, &utt.scores, &mut batch_sink);

        let mut stream_sink = CountingSink::default();
        let mut stream = OtfStream::new(cfg, &am, &lm, &mut stream_sink);
        for t in 0..utt.scores.num_frames() {
            stream.push_frame(utt.scores.frame(t), &mut stream_sink);
        }
        let _ = stream.finish();
        assert_eq!(batch_sink.am_arc_fetches, stream_sink.am_arc_fetches);
        assert_eq!(batch_sink.lm_arc_fetches, stream_sink.lm_arc_fetches);
        assert_eq!(batch_sink.token_bytes, stream_sink.token_bytes);
    }

    #[test]
    fn partial_results_grow_monotonically_on_clean_audio() {
        let (lex, am, lm) = setup();
        let truth = vec![7u32, 11, 4];
        let utt = synthesize_utterance(
            &truth,
            &lex,
            HmmTopology::Kaldi3State,
            &NoiseModel::clean(),
            2,
        );
        let mut stream = OtfStream::new(DecodeConfig::default(), &am, &lm, &mut NullSink);
        let mut last_len = 0usize;
        let mut shrank = false;
        for t in 0..utt.scores.num_frames() {
            stream.push_frame(utt.scores.frame(t), &mut NullSink);
            let p = stream.session().partial_result();
            if p.len() < last_len {
                shrank = true;
            }
            last_len = p.len();
        }
        let final_words = stream.finish().words;
        assert_eq!(final_words, truth);
        // Partial results may fluctuate on ambiguous frames, but a clean
        // utterance should mostly grow; at minimum the final answer is
        // reached.
        assert!(!shrank || final_words == truth);
    }

    #[test]
    fn stable_prefix_is_a_prefix_of_the_partial_and_never_flickers_back() {
        let (lex, am, lm) = setup();
        let truth = vec![7u32, 11, 4, 22];
        let utt = synthesize_utterance(
            &truth,
            &lex,
            HmmTopology::Kaldi3State,
            &NoiseModel::default(),
            12,
        );
        let mut stream = OtfStream::new(DecodeConfig::default(), &am, &lm, &mut NullSink);
        let mut emitted: Vec<u32> = Vec::new();
        for t in 0..utt.scores.num_frames() {
            stream.push_frame(utt.scores.frame(t), &mut NullSink);
            let stable = stream.session().partial_stable_prefix();
            let partial = stream.session().partial_result();
            assert!(
                stable.len() <= partial.len() && partial[..stable.len()] == stable[..],
                "stable prefix {stable:?} must prefix the 1-best partial {partial:?}"
            );
            // A word every hypothesis agreed on stays agreed: the
            // emitted transcript only ever extends.
            let common = emitted
                .iter()
                .zip(&stable)
                .take_while(|(a, b)| a == b)
                .count();
            assert_eq!(
                common,
                emitted.len().min(stable.len()),
                "stable prefix revised an already-stable word: had {emitted:?}, now {stable:?}"
            );
            if stable.len() > emitted.len() {
                emitted = stable;
            }
        }
        let final_words = stream.finish().words;
        assert!(
            emitted.len() <= final_words.len() && final_words[..emitted.len()] == emitted[..],
            "stable prefix {emitted:?} must prefix the final transcript {final_words:?}"
        );
    }

    #[test]
    fn stable_prefix_equals_partial_when_one_hypothesis_survives() {
        let (lex, am, lm) = setup();
        let utt = synthesize_utterance(
            &[5, 9],
            &lex,
            HmmTopology::Kaldi3State,
            &NoiseModel::clean(),
            4,
        );
        // A very tight beam forces the population toward a single path.
        let cfg = DecodeConfig::builder()
            .beam(0.5)
            .max_active(1)
            .build()
            .unwrap();
        let mut stream = OtfStream::new(cfg, &am, &lm, &mut NullSink);
        for t in 0..utt.scores.num_frames() {
            stream.push_frame(utt.scores.frame(t), &mut NullSink);
            if stream.num_active() == 1 {
                assert_eq!(
                    stream.session().partial_stable_prefix(),
                    stream.session().partial_result()
                );
            }
        }
    }

    #[test]
    fn active_count_visible_between_pushes() {
        let (lex, am, lm) = setup();
        let utt = synthesize_utterance(
            &[5],
            &lex,
            HmmTopology::Kaldi3State,
            &NoiseModel::clean(),
            1,
        );
        let mut stream = OtfStream::new(DecodeConfig::default(), &am, &lm, &mut NullSink);
        assert!(stream.num_active() >= 1);
        assert_eq!(stream.frames_pushed(), 0);
        stream.push_frame(utt.scores.frame(0), &mut NullSink);
        assert_eq!(stream.frames_pushed(), 1);
        assert!(stream.num_active() >= 1);
    }

    #[test]
    fn ingest_of_precomputed_rows_matches_push_frame_exactly() {
        let (lex, am, lm) = setup();
        let utt = synthesize_utterance(
            &[3, 9, 17],
            &lex,
            HmmTopology::Kaldi3State,
            &NoiseModel::default(),
            5,
        );
        let cfg = DecodeConfig::default();
        let batch = OtfDecoder::new(cfg).decode(&am, &lm, &utt.scores, &mut NullSink);

        // Through the SessionIngest trait on OtfStream (no scorer).
        let mut stream = OtfStream::new(cfg, &am, &lm, &mut NullSink);
        for t in 0..utt.scores.num_frames() {
            crate::ingest::SessionIngest::ingest(
                &mut stream,
                FrameInput::Scores(utt.scores.frame(t).to_vec()),
            )
            .unwrap();
        }
        let streamed = stream.finish();
        assert_eq!(batch.words, streamed.words);
        assert_eq!(batch.cost.to_bits(), streamed.cost.to_bits());
        assert_eq!(batch.stats, streamed.stats);

        // Through StreamSession::ingest_frame with a passthrough scorer.
        let width = utt.scores.frame(0).len();
        let scorer = crate::ingest::PrecomputedScorer::new(width);
        let mut work = WorkScratch::new();
        work.begin(&cfg);
        let mut session = StreamSession::new(cfg);
        session.seed(&am, &lm, &mut work, &mut NullSink);
        for t in 0..utt.scores.num_frames() {
            session
                .ingest_frame(
                    &am,
                    &lm,
                    &scorer,
                    &mut work,
                    &FrameInput::Scores(utt.scores.frame(t).to_vec()),
                    &mut NullSink,
                )
                .unwrap();
        }
        let ingested = session.finalize(&am, &mut NullSink);
        assert_eq!(batch.words, ingested.words);
        assert_eq!(batch.cost.to_bits(), ingested.cost.to_bits());
        assert_eq!(batch.stats, ingested.stats);
    }

    #[test]
    fn feature_frames_score_identically_to_precomputed_rows() {
        // Scoring features through a GmmScorer at ingest time must be
        // bit-identical to scoring them up front and pushing the rows.
        let (lex, am, _lm2) = setup();
        let topo_pdfs = HmmTopology::Kaldi3State.num_pdfs(lex.num_phonemes());
        let gmm = std::sync::Arc::new(unfold_am::GmmModel::synthesize(topo_pdfs, 8, 2, 2.0, 11));
        let spec = CorpusSpec {
            vocab_size: 50,
            num_sentences: 300,
            ..Default::default()
        };
        let model = NGramModel::train(&spec.generate(3), 50, DiscountConfig::default());
        let lm = lm_to_wfst(&model);
        let scorer = crate::ingest::GmmScorer::new(gmm.clone());
        // Deterministic pseudo-feature frames (contents are irrelevant —
        // only that both paths see the same vectors).
        let feats: Vec<Vec<f32>> = (0..40)
            .map(|t| {
                (0..8)
                    .map(|d| ((t * 31 + d * 7) % 13) as f32 * 0.3 - 1.5)
                    .collect()
            })
            .collect();
        let cfg = DecodeConfig::default();

        let mut by_rows = OtfStream::new(cfg, &am, &lm, &mut NullSink);
        for f in &feats {
            by_rows.push_frame(&gmm.frame_costs(f), &mut NullSink);
        }
        let rows_result = by_rows.finish();

        let mut by_feats = OtfStream::with_scorer(cfg, &am, &lm, &scorer, &mut NullSink);
        for f in &feats {
            by_feats
                .ingest_with(&FrameInput::Features(f.clone()), &mut NullSink)
                .unwrap();
        }
        let feats_result = by_feats.finish();
        assert_eq!(rows_result.words, feats_result.words);
        assert_eq!(rows_result.cost.to_bits(), feats_result.cost.to_bits());
        assert_eq!(rows_result.stats, feats_result.stats);
    }

    #[test]
    fn ingest_refuses_features_without_a_scorer_and_leaves_state_unchanged() {
        let (_lex, am, lm) = setup();
        let mut stream = OtfStream::new(DecodeConfig::default(), &am, &lm, &mut NullSink);
        let before = stream.frames_pushed();
        assert_eq!(
            stream.ingest_with(&FrameInput::Features(vec![0.0; 4]), &mut NullSink),
            Err(ScoreError::FeaturesUnsupported)
        );
        assert_eq!(stream.frames_pushed(), before);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_accessors_still_forward_to_the_session() {
        let (lex, am, lm) = setup();
        let utt = synthesize_utterance(
            &[7, 11],
            &lex,
            HmmTopology::Kaldi3State,
            &NoiseModel::default(),
            3,
        );
        let mut stream = OtfStream::new(DecodeConfig::default(), &am, &lm, &mut NullSink);
        for t in 0..utt.scores.num_frames() {
            stream.push_frame(utt.scores.frame(t), &mut NullSink);
        }
        assert_eq!(stream.partial_result(), stream.session().partial_result());
        assert_eq!(
            stream.partial_stable_prefix(),
            stream.session().partial_stable_prefix()
        );
        assert_eq!(stream.stats(), stream.session().stats());
    }

    #[test]
    #[should_panic(expected = "seed() first")]
    fn unseeded_push_panics() {
        let (lex, am, lm) = setup();
        let utt = synthesize_utterance(
            &[5],
            &lex,
            HmmTopology::Kaldi3State,
            &NoiseModel::clean(),
            1,
        );
        let mut work = WorkScratch::new();
        let mut session = StreamSession::new(DecodeConfig::default());
        session.push_frame(&am, &lm, &mut work, utt.scores.frame(0), &mut NullSink);
    }
}
