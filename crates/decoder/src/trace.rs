//! Decode-time trace: the stream of architectural events the
//! accelerator simulator consumes.
//!
//! The decoders call into a [`TraceSink`] as they work; the simulator
//! implements the sink and models caches/DRAM/pipeline online, so no
//! trace is ever materialized in memory. [`NullSink`] is for pure
//! decoding, [`CountingSink`] for tests and quick statistics.

use unfold_wfst::{Label, StateId};

/// The decoder phases the profiler attributes wall time to. Emitted as
/// [`TraceSink::stage_enter`]/[`TraceSink::stage_exit`] pairs; stages
/// nest (an LM lookup happens inside arc expansion) and timing sinks
/// are expected to attribute time exclusively to the innermost stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeStage {
    /// Acoustic likelihood computation (score synthesis in this
    /// reproduction; a neural scorer in a real system). Emitted by the
    /// caller that produces scores, not by the search itself.
    AcousticScoring,
    /// Token expansion over AM arcs, including the non-emitting
    /// (epsilon) closure.
    ArcExpansion,
    /// LM word resolution: binary-search probes plus back-off walks.
    LmLookup,
    /// Beam/histogram threshold selection.
    Pruning,
    /// Word-lattice backtrace at the end of the search.
    Lattice,
}

/// The sub-phases of the SoA frame kernel, for sinks that opt in to
/// kernel timing (see [`TraceSink::wants_kernel_timing`]). Unlike
/// [`DecodeStage`] events these are *observability only*: they are not
/// part of the architectural trace, are skipped entirely unless a sink
/// asks for them, and are excluded from trace-identity comparisons
/// between kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelPhase {
    /// Beam/histogram threshold fold over the contiguous cost lane plus
    /// packed survivor-bitmask construction and compaction.
    Threshold,
    /// The batched probe-buffer pass: prefetching the survivors' AM/LM
    /// state storage before expansion.
    BatchProbe,
    /// Emitting-arc expansion over the compacted survivor list.
    Expand,
    /// Non-emitting (epsilon) closure to a fixed point.
    Closure,
}

impl KernelPhase {
    /// All kernel phases, in execution order.
    pub const ALL: [KernelPhase; 4] = [
        KernelPhase::Threshold,
        KernelPhase::BatchProbe,
        KernelPhase::Expand,
        KernelPhase::Closure,
    ];

    /// Stable snake_case name used in telemetry exports.
    pub const fn name(self) -> &'static str {
        match self {
            KernelPhase::Threshold => "threshold",
            KernelPhase::BatchProbe => "batch_probe",
            KernelPhase::Expand => "expand",
            KernelPhase::Closure => "closure",
        }
    }

    /// Dense index (position in [`KernelPhase::ALL`]).
    pub fn index(self) -> usize {
        self as usize
    }
}

impl DecodeStage {
    /// All stages, in pipeline order.
    pub const ALL: [DecodeStage; 5] = [
        DecodeStage::AcousticScoring,
        DecodeStage::ArcExpansion,
        DecodeStage::LmLookup,
        DecodeStage::Pruning,
        DecodeStage::Lattice,
    ];

    /// Stable snake_case name used in telemetry exports.
    pub fn name(self) -> &'static str {
        match self {
            DecodeStage::AcousticScoring => "acoustic_scoring",
            DecodeStage::ArcExpansion => "arc_expansion",
            DecodeStage::LmLookup => "lm_lookup",
            DecodeStage::Pruning => "pruning",
            DecodeStage::Lattice => "lattice",
        }
    }

    /// Dense index (position in [`DecodeStage::ALL`]).
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Receiver of decode events. All methods have empty defaults so sinks
/// implement only what they model.
///
/// Addresses are byte addresses in the flat map of
/// [`crate::sources::addr`]; `bytes` is the record size fetched.
pub trait TraceSink {
    /// A new frame begins with `active` live tokens.
    fn frame_start(&mut self, _frame: usize, _active: usize) {}
    /// The frame finished: `active` tokens survive, spanning costs
    /// `[best_cost, worst_cost]`. Both costs are `f32::INFINITY` when
    /// nothing survived.
    fn frame_end(&mut self, _frame: usize, _active: usize, _best_cost: f32, _worst_cost: f32) {}
    /// A profiled stage begins.
    fn stage_enter(&mut self, _stage: DecodeStage) {}
    /// The innermost profiled stage ends.
    fn stage_exit(&mut self, _stage: DecodeStage) {}
    /// `from` ends and `to` begins at the same instant. Emitted where
    /// the decoder moves directly between adjacent stages, so a timing
    /// sink can mark the boundary with a single clock read. Defaults to
    /// exit-then-enter, which every sink already handles.
    fn stage_switch(&mut self, from: DecodeStage, to: DecodeStage) {
        self.stage_exit(from);
        self.stage_enter(to);
    }
    /// A state record was fetched (AM, LM, or composed graph).
    fn state_fetch(&mut self, _addr: u64) {}
    /// An AM (or composed-graph) arc record was fetched.
    fn am_arc_fetch(&mut self, _addr: u64, _bytes: u32) {}
    /// An LM lookup for `(lm_state, word)` begins. If the simulator's
    /// Offset Lookup Table hits, it may skip the subsequent
    /// [`TraceSink::lm_arc_fetch`] probes for this lookup.
    fn lm_lookup(&mut self, _lm_state: StateId, _word: Label) {}
    /// One LM arc fetch (binary-search probe or back-off arc read).
    fn lm_arc_fetch(&mut self, _addr: u64, _bytes: u32) {}
    /// The LM lookup resolved after `backoff_hops` back-off traversals.
    fn lm_resolved(&mut self, _lm_state: StateId, _word: Label, _backoff_hops: u32) {}
    /// An acoustic score was read from the likelihood buffer.
    fn acoustic_fetch(&mut self, _frame: usize, _pdf: Label) {}
    /// A token was written to the hash table (on-chip) with `key`.
    fn hash_insert(&mut self, _key: u64) {}
    /// Word-lattice data was written to memory.
    fn token_store(&mut self, _addr: u64, _bytes: u32) {}
    /// A hypothesis was abandoned mid-back-off by preemptive pruning.
    fn preemptive_prune(&mut self) {}
    /// The decoder's *software* OLT was probed for `(lm_state, word)`.
    /// On a hit the binary-search probes for this lookup step are
    /// skipped (no [`TraceSink::lm_arc_fetch`] events follow). Only
    /// emitted while `DecodeConfig::olt_entries > 0`.
    fn olt_probe(&mut self, _lm_state: StateId, _word: Label, _hit: bool) {}
    /// A resolved lookup was installed into the software OLT; `evicted`
    /// says whether a live entry was displaced.
    fn olt_install(&mut self, _evicted: bool) {}
    /// Whether this sink wants [`TraceSink::kernel_phase`] timing. The
    /// kernel reads this once per frame and skips every clock read when
    /// it returns `false`, so sinks that don't time (the default) pay
    /// nothing.
    fn wants_kernel_timing(&self) -> bool {
        false
    }
    /// `ns` nanoseconds were spent in kernel sub-phase `phase` this
    /// frame. Only emitted when [`TraceSink::wants_kernel_timing`]
    /// returned `true` at frame start, and only by the SoA kernel.
    /// Observability only — never part of trace-identity comparisons.
    fn kernel_phase(&mut self, _phase: KernelPhase, _ns: u64) {}
}

/// Sink that drops everything (pure functional decoding).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {}

/// Sink that counts events; handy in tests and for first-order traffic
/// estimates without running the full simulator.
#[derive(Debug, Clone, Default)]
pub struct CountingSink {
    /// Frames seen.
    pub frames: usize,
    /// Total active tokens summed over frames.
    pub total_active: u64,
    /// State record fetches.
    pub state_fetches: u64,
    /// AM arc fetches.
    pub am_arc_fetches: u64,
    /// AM arc bytes fetched.
    pub am_arc_bytes: u64,
    /// LM lookups issued.
    pub lm_lookups: u64,
    /// LM arc fetches (probes + back-off reads).
    pub lm_arc_fetches: u64,
    /// LM arc bytes fetched.
    pub lm_arc_bytes: u64,
    /// Lookups that needed at least one back-off hop.
    pub backed_off_lookups: u64,
    /// Back-off hops summed over all resolved lookups.
    pub total_backoff_hops: u64,
    /// Acoustic score reads.
    pub acoustic_fetches: u64,
    /// Token hash insertions.
    pub hash_inserts: u64,
    /// Lattice bytes written.
    pub token_bytes: u64,
    /// Preemptively pruned hypotheses.
    pub preemptive_prunes: u64,
    /// Software-OLT probes.
    pub olt_probes: u64,
    /// Software-OLT hits.
    pub olt_hits: u64,
    /// Software-OLT installs.
    pub olt_installs: u64,
    /// Software-OLT installs that displaced a live entry.
    pub olt_evictions: u64,
}

impl CountingSink {
    /// Zeroes every counter in place. The serve workers keep one
    /// `CountingSink` per worker and reset it at each lease quantum,
    /// so per-quantum telemetry (OLT hit rate, LM traffic) attaches to
    /// the quantum's span without reallocating a sink per lease.
    pub fn reset(&mut self) {
        *self = CountingSink::default();
    }

    /// OLT hit rate over the counted window, or 0 with no probes.
    pub fn olt_hit_rate(&self) -> f64 {
        if self.olt_probes == 0 {
            0.0
        } else {
            self.olt_hits as f64 / self.olt_probes as f64
        }
    }
}

impl TraceSink for CountingSink {
    fn frame_start(&mut self, _frame: usize, active: usize) {
        self.frames += 1;
        self.total_active += active as u64;
    }
    fn state_fetch(&mut self, _addr: u64) {
        self.state_fetches += 1;
    }
    fn am_arc_fetch(&mut self, _addr: u64, bytes: u32) {
        self.am_arc_fetches += 1;
        self.am_arc_bytes += u64::from(bytes);
    }
    fn lm_lookup(&mut self, _lm_state: StateId, _word: Label) {
        self.lm_lookups += 1;
    }
    fn lm_arc_fetch(&mut self, _addr: u64, bytes: u32) {
        self.lm_arc_fetches += 1;
        self.lm_arc_bytes += u64::from(bytes);
    }
    fn lm_resolved(&mut self, _lm_state: StateId, _word: Label, backoff_hops: u32) {
        if backoff_hops > 0 {
            self.backed_off_lookups += 1;
        }
        self.total_backoff_hops += u64::from(backoff_hops);
    }
    fn acoustic_fetch(&mut self, _frame: usize, _pdf: Label) {
        self.acoustic_fetches += 1;
    }
    fn hash_insert(&mut self, _key: u64) {
        self.hash_inserts += 1;
    }
    fn token_store(&mut self, _addr: u64, bytes: u32) {
        self.token_bytes += u64::from(bytes);
    }
    fn preemptive_prune(&mut self) {
        self.preemptive_prunes += 1;
    }
    fn olt_probe(&mut self, _lm_state: StateId, _word: Label, hit: bool) {
        self.olt_probes += 1;
        if hit {
            self.olt_hits += 1;
        }
    }
    fn olt_install(&mut self, evicted: bool) {
        self.olt_installs += 1;
        if evicted {
            self.olt_evictions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_sink_accumulates() {
        let mut s = CountingSink::default();
        s.frame_start(0, 5);
        s.frame_start(1, 7);
        s.am_arc_fetch(0x100, 16);
        s.am_arc_fetch(0x110, 16);
        s.lm_lookup(3, 9);
        s.lm_arc_fetch(0xC000_0000, 6);
        s.lm_resolved(3, 9, 2);
        s.lm_resolved(3, 10, 0);
        s.lm_resolved(4, 11, 3);
        s.token_store(0, 8);
        s.preemptive_prune();
        assert_eq!(s.frames, 2);
        assert_eq!(s.total_active, 12);
        assert_eq!(s.am_arc_fetches, 2);
        assert_eq!(s.am_arc_bytes, 32);
        assert_eq!(s.lm_lookups, 1);
        assert_eq!(s.backed_off_lookups, 2, "only the hop>0 resolutions count");
        assert_eq!(
            s.total_backoff_hops, 5,
            "hops accumulate across resolutions"
        );
        assert_eq!(s.token_bytes, 8);
        assert_eq!(s.preemptive_prunes, 1);

        s.olt_probe(3, 9, true);
        s.olt_probe(3, 10, false);
        assert_eq!(s.olt_hit_rate(), 0.5);
        s.reset();
        assert_eq!(s.frames, 0);
        assert_eq!(s.total_backoff_hops, 0);
        assert_eq!(s.olt_hit_rate(), 0.0);
    }

    #[test]
    fn null_sink_is_a_no_op() {
        let mut s = NullSink;
        s.frame_start(0, 1);
        s.state_fetch(0);
        s.preemptive_prune();
    }
}
