//! Model sources: the decoder's view of AM and LM storage.
//!
//! The search algorithm is identical whether the models live in the
//! uncompressed 128-bit-per-arc layout or the bit-packed compressed
//! formats — what changes is the *memory addresses* each fetch touches
//! (and, for compressed models, the quantized weights). These traits
//! abstract exactly that, so one decoder implementation serves both the
//! baseline and UNFOLD configurations, and the simulator sees realistic
//! address streams for each.
//!
//! The LM interface is deliberately low-level: a single-state
//! [`LmSource::lookup_word`] plus [`LmSource::backoff`], because the
//! *decoder* owns the back-off walk — that is where the paper's
//! preemptive pruning (§3.3) intervenes, abandoning a hypothesis between
//! hops.

use unfold_compress::{
    CompressedAm, CompressedAmRef, CompressedLm, CompressedLmRef, SharedAm, SharedLm,
};
use unfold_wfst::{Arc, Label, StateId, Wfst, EPSILON};

/// Address-space bases for the flat memory map the simulator models.
/// Regions are disjoint by construction (1 GiB apart), matching the
/// paper's observation that "the AM and LM datasets are disjoint".
pub mod addr {
    /// AM state records.
    pub const AM_STATE_BASE: u64 = 0x0000_0000;
    /// AM arc array / bit stream.
    pub const AM_ARC_BASE: u64 = 0x4000_0000;
    /// LM state records.
    pub const LM_STATE_BASE: u64 = 0x8000_0000;
    /// LM arc array / bit stream.
    pub const LM_ARC_BASE: u64 = 0xC000_0000;
    /// Token / word-lattice writes (sequential).
    pub const TOKEN_BASE: u64 = 0x1_0000_0000;
    /// Bytes per state record (uncompressed and compressed layouts).
    pub const STATE_RECORD_BYTES: u64 = 8;
}

/// One arc visit: the decoded arc plus where its bytes live.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArcVisit {
    /// The arc.
    pub arc: Arc,
    /// Byte address of the arc record.
    pub addr: u64,
    /// Record size in bytes (rounded up for sub-byte records).
    pub bytes: u32,
}

/// A memory fetch: `(byte address, bytes)`.
pub type Fetch = (u64, u32);

/// Longest back-off chain a well-formed LM may have; enforced once per
/// model by [`crate::scratch::validate_models`] and assumed (via
/// `debug_assert!`) by the decoder's hot path.
pub const MAX_BACKOFF_HOPS: u32 = 8;

/// The AM side of decoding: sequential arc exploration.
pub trait AmSource {
    /// Start state.
    fn start(&self) -> StateId;
    /// Number of states (model-validation sweeps).
    fn num_states(&self) -> usize;
    /// Final weight of `s`.
    fn final_weight(&self, s: StateId) -> Option<f32>;
    /// Address of the state record of `s`.
    fn state_addr(&self, s: StateId) -> u64;
    /// Visits every outgoing arc of `s` in storage order.
    fn for_each_arc(&self, s: StateId, f: &mut dyn FnMut(ArcVisit));
    /// Best-effort cache hint that `s`'s arcs are about to be walked.
    /// A pure hint: no trace events, no effect on decode output, never
    /// panics. The SoA kernel issues these over its batched probe
    /// buffer before expansion; default is a no-op.
    fn prefetch_state(&self, _s: StateId) {}
}

/// Result of a single-state LM word lookup.
#[derive(Debug, Clone)]
pub struct LmLookupResult {
    /// The matching word arc, if this state has one.
    pub arc: Option<Arc>,
    /// The arc fetches (binary-search probes) the lookup performed.
    pub probes: Vec<Fetch>,
}

/// The LM side of decoding: word lookup with explicit back-off arcs.
pub trait LmSource {
    /// Start (root) state.
    fn start(&self) -> StateId;
    /// Number of states (model-validation sweeps).
    fn num_states(&self) -> usize;
    /// Address of the state record of `s`.
    fn state_addr(&self, s: StateId) -> u64;
    /// Searches `s` for an arc labelled `word` (binary search over the
    /// sorted word arcs; O(1) at the root of a layout-conforming LM),
    /// appending each arc fetch (binary-search probe) to `probes`. The
    /// caller-owned buffer is what keeps the decoder's steady-state
    /// frame loop allocation-free.
    fn lookup_word_into(&self, s: StateId, word: Label, probes: &mut Vec<Fetch>) -> Option<Arc>;
    /// The back-off arc of `s` and its fetch, if the state has one.
    fn backoff(&self, s: StateId) -> Option<(Arc, Fetch)>;
    /// Best-effort cache hint that `s` is about to be searched. A pure
    /// hint: no trace events, no effect on decode output, never panics.
    /// Default is a no-op.
    fn prefetch_state(&self, _s: StateId) {}

    // --- Memo-composition hooks (on-the-fly biasing). -------------
    //
    // A composing adapter (e.g. a per-session biasing layer) carries a
    // private context component inside each `StateId` it hands the
    // decoder. The back-off walk splits that context off once, walks
    // *base* states (so the shared one-label-transition table stays
    // valid across sessions), and re-joins the context at resolution.
    // Plain LMs have no context: the defaults are pure identities and
    // the walk compiles to exactly the un-composed code.

    /// Splits a decoder-visible state into `(base state, context)`.
    /// Identity (`ctx == 0`) for plain LMs.
    fn memo_split(&self, s: StateId) -> (StateId, u32) {
        (s, 0)
    }

    /// Packs a context back onto a base state, producing the key the
    /// per-session memo layer caches under. Identity for plain LMs.
    fn memo_pack(&self, _ctx: u32, base: StateId) -> StateId {
        base
    }

    /// Joins a resolved base transition with the context: returns the
    /// composite destination and the final (possibly biased) word-arc
    /// weight. Identity for plain LMs — no arithmetic is performed, so
    /// un-composed decodes stay bit-identical.
    fn memo_join(&self, _ctx: u32, _word: Label, dest: StateId, weight: f32) -> (StateId, f32) {
        (dest, weight)
    }

    /// Whether this source carries a memo context (i.e. composite
    /// states whose resolutions are worth caching per session). Plain
    /// LMs return `false`, which keeps the per-session cache untouched
    /// on unbiased decodes.
    fn has_memo_ctx(&self) -> bool {
        false
    }

    /// Stable address identifying the *validated* model. Composing
    /// adapters forward their base LM's address so a cheap per-quantum
    /// wrapper does not re-trigger full model validation sweeps.
    fn validation_addr(&self) -> usize {
        std::ptr::from_ref(self).cast::<()>() as usize
    }

    /// Allocating convenience wrapper over
    /// [`LmSource::lookup_word_into`].
    fn lookup_word(&self, s: StateId, word: Label) -> LmLookupResult {
        let mut probes = Vec::new();
        let arc = self.lookup_word_into(s, word, &mut probes);
        LmLookupResult { arc, probes }
    }

    /// Full back-off resolution (reference semantics; the decoder runs
    /// its own walk so it can prune preemptively). Returns
    /// `(destination, cost, backoff_hops)`.
    fn resolve(&self, s: StateId, word: Label) -> Option<LmResolution> {
        let mut state = s;
        let mut cost = 0.0f32;
        let mut hops = 0u32;
        let mut fetches = 0u64;
        let mut probes = Vec::new();
        loop {
            probes.clear();
            let arc = self.lookup_word_into(state, word, &mut probes);
            fetches += probes.len() as u64;
            if let Some(arc) = arc {
                return Some(LmResolution {
                    dest: arc.nextstate,
                    cost: cost + arc.weight,
                    backoff_hops: hops,
                    fetches,
                });
            }
            let (back, _) = self.backoff(state)?;
            fetches += 1;
            cost += back.weight;
            state = back.nextstate;
            hops += 1;
            if hops > MAX_BACKOFF_HOPS {
                return None;
            }
        }
    }
}

/// Outcome of [`LmSource::resolve`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LmResolution {
    /// Destination LM state.
    pub dest: StateId,
    /// Total LM cost (word arc + traversed back-off weights).
    pub cost: f32,
    /// Back-off arcs traversed.
    pub backoff_hops: u32,
    /// Total arc fetches performed.
    pub fetches: u64,
}

// --- Uncompressed implementations. ---

impl AmSource for Wfst {
    fn start(&self) -> StateId {
        Wfst::start(self)
    }

    fn num_states(&self) -> usize {
        Wfst::num_states(self)
    }

    fn final_weight(&self, s: StateId) -> Option<f32> {
        Wfst::final_weight(self, s)
    }

    fn state_addr(&self, s: StateId) -> u64 {
        addr::AM_STATE_BASE + u64::from(s) * addr::STATE_RECORD_BYTES
    }

    fn for_each_arc(&self, s: StateId, f: &mut dyn FnMut(ArcVisit)) {
        let base = addr::AM_ARC_BASE + self.arc_base_offset(s);
        for (i, &arc) in self.arcs(s).iter().enumerate() {
            f(ArcVisit {
                arc,
                addr: base + i as u64 * 16,
                bytes: 16,
            });
        }
    }

    fn prefetch_state(&self, s: StateId) {
        if (s as usize) < Wfst::num_states(self) {
            unfold_compress::prefetch_read(self.arcs(s).as_ptr().cast());
        }
    }
}

impl LmSource for Wfst {
    fn start(&self) -> StateId {
        Wfst::start(self)
    }

    fn num_states(&self) -> usize {
        Wfst::num_states(self)
    }

    fn state_addr(&self, s: StateId) -> u64 {
        addr::LM_STATE_BASE + u64::from(s) * addr::STATE_RECORD_BYTES
    }

    fn lookup_word_into(&self, s: StateId, word: Label, probes: &mut Vec<Fetch>) -> Option<Arc> {
        debug_assert_ne!(word, EPSILON);
        let arcs = self.arcs(s);
        let mut hi = arcs.len();
        while hi > 0 && arcs[hi - 1].ilabel == EPSILON {
            hi -= 1;
        }
        let mut lo = 0usize;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            probes.push((
                addr::LM_ARC_BASE + self.global_arc_index(s, mid) * 16,
                16u32,
            ));
            match arcs[mid].ilabel.cmp(&word) {
                std::cmp::Ordering::Equal => return Some(arcs[mid]),
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
            }
        }
        None
    }

    fn backoff(&self, s: StateId) -> Option<(Arc, Fetch)> {
        let back = *self.backoff_arc(s)?;
        let idx = self.arcs(s).len() - 1;
        Some((
            back,
            (addr::LM_ARC_BASE + self.global_arc_index(s, idx) * 16, 16),
        ))
    }

    fn prefetch_state(&self, s: StateId) {
        if (s as usize) < Wfst::num_states(self) {
            unfold_compress::prefetch_read(self.arcs(s).as_ptr().cast());
        }
    }
}

/// A [`Wfst`] LM whose lookups scan arcs *linearly* — the strawman the
/// paper reports as a 10x slowdown before adopting sorted arcs + binary
/// search (§2: "Implementing the location of the arc as a linear search
/// increases the execution time by 10x"). Used by the lookup-strategy
/// ablation.
#[derive(Debug, Clone, Copy)]
pub struct LinearLm<'a>(pub &'a Wfst);

impl LmSource for LinearLm<'_> {
    fn start(&self) -> StateId {
        Wfst::start(self.0)
    }

    fn num_states(&self) -> usize {
        Wfst::num_states(self.0)
    }

    fn state_addr(&self, s: StateId) -> u64 {
        addr::LM_STATE_BASE + u64::from(s) * addr::STATE_RECORD_BYTES
    }

    fn lookup_word_into(&self, s: StateId, word: Label, probes: &mut Vec<Fetch>) -> Option<Arc> {
        let arcs = self.0.arcs(s);
        for (i, a) in arcs.iter().enumerate() {
            if a.ilabel == EPSILON {
                break; // trailing back-off arcs end the word region
            }
            probes.push((
                addr::LM_ARC_BASE + self.0.global_arc_index(s, i) * 16,
                16u32,
            ));
            if a.ilabel == word {
                return Some(*a);
            }
        }
        None
    }

    fn backoff(&self, s: StateId) -> Option<(Arc, Fetch)> {
        LmSource::backoff(self.0, s)
    }
}

// --- Compressed implementations. ---

impl AmSource for CompressedAm {
    fn start(&self) -> StateId {
        CompressedAm::start(self)
    }

    fn num_states(&self) -> usize {
        CompressedAm::num_states(self)
    }

    fn final_weight(&self, s: StateId) -> Option<f32> {
        CompressedAm::final_weight(self, s)
    }

    fn state_addr(&self, s: StateId) -> u64 {
        addr::AM_STATE_BASE + u64::from(s) * addr::STATE_RECORD_BYTES
    }

    fn for_each_arc(&self, s: StateId, f: &mut dyn FnMut(ArcVisit)) {
        CompressedAm::for_each_arc(self, s, |arc, bit_off, width| {
            f(ArcVisit {
                arc,
                addr: addr::AM_ARC_BASE + bit_off / 8,
                bytes: width.div_ceil(8),
            });
        });
    }

    fn prefetch_state(&self, s: StateId) {
        CompressedAm::prefetch_state(self, s);
    }
}

impl LmSource for CompressedLm {
    fn start(&self) -> StateId {
        0
    }

    fn num_states(&self) -> usize {
        CompressedLm::num_states(self)
    }

    fn state_addr(&self, s: StateId) -> u64 {
        addr::LM_STATE_BASE + u64::from(s) * addr::STATE_RECORD_BYTES
    }

    fn lookup_word_into(&self, s: StateId, word: Label, probes: &mut Vec<Fetch>) -> Option<Arc> {
        let n = self.num_word_arcs(s);
        if s == 0 {
            // Root: positional access, a single 6-bit fetch.
            if word >= 1 && word <= n {
                let off = self.word_arc_bit_offset(0, word - 1);
                probes.push((addr::LM_ARC_BASE + off / 8, 1));
                return Some(self.word_arc(0, word - 1));
            }
            return None;
        }
        let mut lo = 0u32;
        let mut hi = n;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            // 45-bit arc: may straddle up to 7 bytes; 6 is the common case.
            probes.push((
                addr::LM_ARC_BASE + self.word_arc_bit_offset(s, mid) / 8,
                6u32,
            ));
            let a = self.word_arc(s, mid);
            match a.ilabel.cmp(&word) {
                std::cmp::Ordering::Equal => return Some(a),
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
            }
        }
        None
    }

    fn backoff(&self, s: StateId) -> Option<(Arc, Fetch)> {
        let back = self.backoff_arc(s)?;
        let n = self.num_word_arcs(s);
        let off =
            self.word_arc_bit_offset(s, 0) + u64::from(n) * unfold_compress::lm::REGULAR_ARC_BITS;
        Some((back, (addr::LM_ARC_BASE + off / 8, 4)))
    }

    fn prefetch_state(&self, s: StateId) {
        CompressedLm::prefetch_state(self, s);
    }
}

// --- Zero-copy (bundle-backed) implementations. ---
//
// These mirror the owned `CompressedAm`/`CompressedLm` impls above
// fetch-for-fetch: same addresses, same probe sequences, same quantized
// weights. That is what makes a decode against an mmap-backed bundle
// bit-identical — words, costs, *and* `DecodeStats` — to one against
// the owned models loaded from the same bytes (`unfold-verify` pins
// this as a matrix check).

impl AmSource for CompressedAmRef<'_> {
    fn start(&self) -> StateId {
        CompressedAmRef::start(self)
    }

    fn num_states(&self) -> usize {
        CompressedAmRef::num_states(self)
    }

    fn final_weight(&self, s: StateId) -> Option<f32> {
        CompressedAmRef::final_weight(self, s)
    }

    fn state_addr(&self, s: StateId) -> u64 {
        addr::AM_STATE_BASE + u64::from(s) * addr::STATE_RECORD_BYTES
    }

    fn for_each_arc(&self, s: StateId, f: &mut dyn FnMut(ArcVisit)) {
        CompressedAmRef::for_each_arc(self, s, |arc, bit_off, width| {
            f(ArcVisit {
                arc,
                addr: addr::AM_ARC_BASE + bit_off / 8,
                bytes: width.div_ceil(8),
            });
        });
    }

    fn prefetch_state(&self, s: StateId) {
        CompressedAmRef::prefetch_state(self, s);
    }
}

impl LmSource for CompressedLmRef<'_> {
    fn start(&self) -> StateId {
        0
    }

    fn num_states(&self) -> usize {
        CompressedLmRef::num_states(self)
    }

    fn state_addr(&self, s: StateId) -> u64 {
        addr::LM_STATE_BASE + u64::from(s) * addr::STATE_RECORD_BYTES
    }

    fn lookup_word_into(&self, s: StateId, word: Label, probes: &mut Vec<Fetch>) -> Option<Arc> {
        let n = self.num_word_arcs(s);
        if s == 0 {
            if word >= 1 && word <= n {
                let off = self.word_arc_bit_offset(0, word - 1);
                probes.push((addr::LM_ARC_BASE + off / 8, 1));
                return Some(self.word_arc(0, word - 1));
            }
            return None;
        }
        let mut lo = 0u32;
        let mut hi = n;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            probes.push((
                addr::LM_ARC_BASE + self.word_arc_bit_offset(s, mid) / 8,
                6u32,
            ));
            let a = self.word_arc(s, mid);
            match a.ilabel.cmp(&word) {
                std::cmp::Ordering::Equal => return Some(a),
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
            }
        }
        None
    }

    fn backoff(&self, s: StateId) -> Option<(Arc, Fetch)> {
        let back = self.backoff_arc(s)?;
        let n = self.num_word_arcs(s);
        let off =
            self.word_arc_bit_offset(s, 0) + u64::from(n) * unfold_compress::lm::REGULAR_ARC_BITS;
        Some((back, (addr::LM_ARC_BASE + off / 8, 4)))
    }

    fn prefetch_state(&self, s: StateId) {
        CompressedLmRef::prefetch_state(self, s);
    }
}

impl AmSource for SharedAm {
    fn start(&self) -> StateId {
        self.view().start()
    }

    fn num_states(&self) -> usize {
        self.view().num_states()
    }

    fn final_weight(&self, s: StateId) -> Option<f32> {
        self.view().final_weight(s)
    }

    fn state_addr(&self, s: StateId) -> u64 {
        AmSource::state_addr(&self.view(), s)
    }

    fn for_each_arc(&self, s: StateId, f: &mut dyn FnMut(ArcVisit)) {
        AmSource::for_each_arc(&self.view(), s, f);
    }

    fn prefetch_state(&self, s: StateId) {
        self.view().prefetch_state(s);
    }
}

impl LmSource for SharedLm {
    fn start(&self) -> StateId {
        0
    }

    fn num_states(&self) -> usize {
        self.view().num_states()
    }

    fn state_addr(&self, s: StateId) -> u64 {
        LmSource::state_addr(&self.view(), s)
    }

    fn lookup_word_into(&self, s: StateId, word: Label, probes: &mut Vec<Fetch>) -> Option<Arc> {
        LmSource::lookup_word_into(&self.view(), s, word, probes)
    }

    fn backoff(&self, s: StateId) -> Option<(Arc, Fetch)> {
        LmSource::backoff(&self.view(), s)
    }

    fn prefetch_state(&self, s: StateId) {
        self.view().prefetch_state(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unfold_am::{build_am, HmmTopology, Lexicon};
    use unfold_lm::{lm_to_wfst, CorpusSpec, DiscountConfig, NGramModel};

    fn models() -> (Wfst, Wfst) {
        let lex = Lexicon::generate(80, 25, 2);
        let am = build_am(&lex, HmmTopology::Kaldi3State);
        let spec = CorpusSpec {
            vocab_size: 80,
            num_sentences: 400,
            ..Default::default()
        };
        let model = NGramModel::train(&spec.generate(7), 80, DiscountConfig::default());
        (am.fst, lm_to_wfst(&model))
    }

    #[test]
    fn wfst_am_source_addresses_are_disjoint_from_lm() {
        let (am, lm) = models();
        let mut am_addrs = Vec::new();
        AmSource::for_each_arc(&am, 0, &mut |v| am_addrs.push(v.addr));
        let res = LmSource::lookup_word(&lm, 1, 5);
        for &(a, _) in &res.probes {
            assert!(a >= addr::LM_ARC_BASE);
            assert!(!am_addrs.contains(&a));
        }
    }

    #[test]
    fn wfst_resolution_matches_compose_helper() {
        let (_, lm) = models();
        for s in (0..lm.num_states() as StateId).step_by(19) {
            for w in (1..=80u32).step_by(13) {
                let want = unfold_wfst::compose::resolve_lm_word(&lm, s, w).unwrap();
                let got = LmSource::resolve(&lm, s, w).unwrap();
                assert_eq!(got.dest, want.0);
                assert!((got.cost - want.1).abs() < 1e-5);
                assert_eq!(got.backoff_hops, want.2);
                assert!(got.fetches > 0);
            }
        }
    }

    #[test]
    fn compressed_sources_agree_with_uncompressed_topology() {
        let (am, lm) = models();
        let cam = CompressedAm::compress(&am, 64, 0);
        let clm = CompressedLm::compress(&lm, 64, 0);
        for s in (0..am.num_states() as StateId).step_by(41) {
            let mut got = Vec::new();
            AmSource::for_each_arc(&cam, s, &mut |v| got.push(v.arc));
            let want = am.arcs(s);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(want) {
                assert_eq!(g.ilabel, w.ilabel);
                assert_eq!(g.nextstate, w.nextstate);
            }
        }
        for s in (0..lm.num_states() as StateId).step_by(23) {
            for w in (1..=80u32).step_by(17) {
                let a = LmSource::resolve(&lm, s, w).unwrap();
                let b = LmSource::resolve(&clm, s, w).unwrap();
                assert_eq!(a.dest, b.dest);
                assert_eq!(a.backoff_hops, b.backoff_hops);
            }
        }
    }

    #[test]
    fn compressed_root_lookup_is_single_probe() {
        let (_, lm) = models();
        let clm = CompressedLm::compress(&lm, 64, 0);
        let res = LmSource::lookup_word(&clm, 0, 42);
        assert_eq!(res.probes.len(), 1);
        assert_eq!(res.arc.unwrap().nextstate, 42);
    }

    #[test]
    fn binary_search_probe_count_is_logarithmic() {
        let (_, lm) = models();
        // Root has 80 word arcs in the uncompressed layout: ≤ 7 probes.
        let res = LmSource::lookup_word(&lm, 0, 80);
        assert!(res.probes.len() <= 7, "{} probes", res.probes.len());
    }

    #[test]
    fn linear_lm_agrees_with_binary_but_probes_more() {
        let (_, lm) = models();
        let lin = LinearLm(&lm);
        let mut lin_total = 0usize;
        let mut bin_total = 0usize;
        for w in 1..=80u32 {
            let a = LmSource::lookup_word(&lin, 0, w);
            let b = LmSource::lookup_word(&lm, 0, w);
            assert_eq!(a.arc.map(|x| x.nextstate), b.arc.map(|x| x.nextstate));
            lin_total += a.probes.len();
            bin_total += b.probes.len();
        }
        assert!(
            lin_total > 3 * bin_total,
            "linear {lin_total} vs binary {bin_total}"
        );
    }

    #[test]
    fn ref_sources_match_owned_fetch_for_fetch() {
        let (am, lm) = models();
        let cam = CompressedAm::compress(&am, 64, 0);
        let clm = CompressedLm::compress(&lm, 64, 0);
        let (am_bytes, lm_bytes) = (cam.to_bytes(), clm.to_bytes());
        let am_layout = unfold_compress::AmLayout::parse(&am_bytes).unwrap();
        let lm_layout = unfold_compress::LmLayout::parse(&lm_bytes).unwrap();
        let (ram, rlm) = (am_layout.view(&am_bytes), lm_layout.view(&lm_bytes));

        for s in (0..cam.num_states() as StateId).step_by(29) {
            let mut want = Vec::new();
            AmSource::for_each_arc(&cam, s, &mut |v| want.push(v));
            let mut got = Vec::new();
            AmSource::for_each_arc(&ram, s, &mut |v| got.push(v));
            assert_eq!(got, want, "state {s}");
            assert_eq!(
                AmSource::final_weight(&ram, s),
                AmSource::final_weight(&cam, s)
            );
        }
        assert_eq!(AmSource::start(&ram), AmSource::start(&cam));

        for s in (0..clm.num_states() as StateId).step_by(17) {
            for w in (1..=80u32).step_by(11) {
                let a = LmSource::lookup_word(&clm, s, w);
                let b = LmSource::lookup_word(&rlm, s, w);
                assert_eq!(a.arc, b.arc, "state {s} word {w}");
                assert_eq!(a.probes, b.probes, "state {s} word {w}");
            }
            assert_eq!(LmSource::backoff(&clm, s), LmSource::backoff(&rlm, s));
        }
    }

    #[test]
    fn backoff_fetch_has_lm_address() {
        let (_, lm) = models();
        let (arc, (a, _)) = LmSource::backoff(&lm, 3).unwrap();
        assert_eq!(arc.ilabel, EPSILON);
        assert!(a >= addr::LM_ARC_BASE);
    }
}
