//! Two-pass decoding: AM-driven search first, LM rescoring second.
//!
//! The paper's related work (§6) divides on-the-fly decoders into
//! *one-pass* (compose while searching — what UNFOLD accelerates) and
//! *two-pass* strategies (search the AM with a weak LM to produce a
//! word lattice, then rescore with the full LM), noting that "the
//! rescoring phase of the two-pass method cannot be executed until the
//! end of AM search, \[so\] it typically leads to larger latencies".
//! This module implements the two-pass baseline so that design choice
//! can be evaluated rather than asserted — see the
//! `ablation_two_pass` benchmark binary.

use unfold_am::AcousticScores;
use unfold_lm::{NGramModel, WordId};
use unfold_wfst::{Arc, Label, StateId};

use crate::config::{DecodeConfig, DecodeResult, DecodeStats};
use crate::otf::OtfDecoder;
use crate::sources::{addr, AmSource, Fetch, LmSource};
use crate::trace::TraceSink;

/// A unigram LM whose states mirror the last recognized word: costs are
/// pure unigram (no context), but keeping one state per word stops the
/// beam search from recombining hypotheses that differ only in their
/// final word — without this, the first pass would hand the rescorer a
/// 1-best list and the second pass could never change anything. This is
/// the "weak LM" driving the first pass.
#[derive(Debug, Clone)]
pub struct UnigramLm {
    /// `cost[w - 1]` = unigram cost of word `w`.
    costs: Vec<f32>,
}

impl UnigramLm {
    /// Extracts the unigram distribution from a trained model.
    pub fn from_model(model: &NGramModel) -> Self {
        let costs = (1..=model.vocab_size() as WordId)
            .map(|w| model.unigram_cost(w))
            .collect();
        UnigramLm { costs }
    }

    /// Unigram cost of `w`.
    ///
    /// # Panics
    /// Panics if `w` is epsilon or out of range.
    pub fn cost(&self, w: WordId) -> f32 {
        self.costs[(w - 1) as usize]
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.costs.len()
    }
}

impl LmSource for UnigramLm {
    fn start(&self) -> StateId {
        0
    }

    fn state_addr(&self, _s: StateId) -> u64 {
        addr::LM_STATE_BASE
    }

    fn num_states(&self) -> usize {
        // State 0 (start) plus one state per vocabulary word.
        self.costs.len() + 1
    }

    fn lookup_word_into(&self, _s: StateId, word: Label, probes: &mut Vec<Fetch>) -> Option<Arc> {
        if word >= 1 && (word as usize) <= self.costs.len() {
            // Positional access, like the compressed LM root.
            let off = u64::from(word - 1);
            probes.push((addr::LM_ARC_BASE + off, 1));
            Some(Arc::new(word, word, self.cost(word), word))
        } else {
            None
        }
    }

    fn backoff(&self, _s: StateId) -> Option<(Arc, Fetch)> {
        None
    }
}

/// A second-pass model: maps a first-pass hypothesis (its word sequence
/// plus combined AM ⊗ weak-LM cost) to a rescored total cost, returning
/// the cost together with how many full-LM evaluations it spent. This
/// is the lattice-rescoring hook: candidates are read off the exact
/// first-pass word lattice ([`OtfDecoder::decode_nbest`]), so any model
/// too expensive to interleave with the search — a long-context LM, a
/// neural rescorer — plugs in here.
pub trait LatticeRescorer {
    /// Rescores one candidate; returns `(new_cost, lm_evals)`.
    fn rescore(&self, words: &[WordId], first_pass_cost: f32) -> (f32, u64);
}

/// The stock second pass: swaps each word's weak-LM (unigram) score for
/// the full back-off n-gram score, exactly what one-pass search
/// interleaves online.
#[derive(Debug, Clone)]
pub struct NGramRescorer<'a> {
    model: &'a NGramModel,
    weak: UnigramLm,
}

impl<'a> NGramRescorer<'a> {
    /// A rescorer replacing [`UnigramLm`] scores with `model`'s.
    pub fn new(model: &'a NGramModel) -> Self {
        NGramRescorer {
            model,
            weak: UnigramLm::from_model(model),
        }
    }
}

impl LatticeRescorer for NGramRescorer<'_> {
    fn rescore(&self, words: &[WordId], first_pass_cost: f32) -> (f32, u64) {
        let mut rescored = first_pass_cost;
        let mut evals = 0u64;
        for (i, &w) in words.iter().enumerate() {
            let lo = i.saturating_sub(2);
            rescored += self.model.word_cost(&words[lo..i], w) - self.weak.cost(w);
            evals += 1;
        }
        (rescored, evals)
    }
}

/// Outcome of a two-pass decode.
#[derive(Debug, Clone)]
pub struct TwoPassResult {
    /// The rescored best hypothesis.
    pub result: DecodeResult,
    /// Candidates produced by the first pass.
    pub num_candidates: usize,
    /// Full-LM evaluations performed during rescoring (each is a
    /// back-off walk that one-pass decoding would have interleaved with
    /// the search — and that here happen *after* the utterance ends,
    /// the latency cost §6 calls out).
    pub rescoring_evals: u64,
}

/// The two-pass decoder: pass 1 searches with [`UnigramLm`]; pass 2
/// rescores the n-best list with the full model.
#[derive(Debug, Clone)]
pub struct TwoPassDecoder {
    config: DecodeConfig,
    nbest: usize,
}

impl TwoPassDecoder {
    /// Creates a two-pass decoder keeping `nbest` first-pass candidates.
    ///
    /// # Panics
    /// Panics if `nbest == 0`.
    pub fn new(config: DecodeConfig, nbest: usize) -> Self {
        assert!(nbest > 0, "new: nbest must be positive");
        TwoPassDecoder { config, nbest }
    }

    /// Decodes one utterance: a [`UnigramLm`] first pass rescored by
    /// the full n-gram model ([`NGramRescorer`]).
    pub fn decode<A: AmSource + ?Sized>(
        &self,
        am: &A,
        model: &NGramModel,
        scores: &AcousticScores,
        sink: &mut dyn TraceSink,
    ) -> TwoPassResult {
        let weak = UnigramLm::from_model(model);
        self.decode_rescored(am, &weak, &NGramRescorer::new(model), scores, sink)
    }

    /// The generic two-pass pipeline: search with `weak_lm`, read the
    /// n-best candidates off the exact word lattice, hand each to
    /// `rescorer`. Rescoring work is profiled as LM-lookup time — the
    /// full-LM evaluation one-pass search interleaves online, here paid
    /// after the utterance ends (the §6 latency cost).
    pub fn decode_rescored<A, L, R>(
        &self,
        am: &A,
        weak_lm: &L,
        rescorer: &R,
        scores: &AcousticScores,
        sink: &mut dyn TraceSink,
    ) -> TwoPassResult
    where
        A: AmSource + ?Sized,
        L: LmSource + ?Sized,
        R: LatticeRescorer + ?Sized,
    {
        let pass1 = OtfDecoder::new(self.config);
        let candidates = pass1.decode_nbest(am, weak_lm, scores, self.nbest, sink);
        let num_candidates = candidates.len();

        sink.stage_enter(crate::trace::DecodeStage::LmLookup);
        let mut evals = 0u64;
        let mut best: Option<(Vec<Label>, f32)> = None;
        for (words, cost) in candidates {
            let (rescored, e) = rescorer.rescore(&words, cost);
            evals += e;
            if best.as_ref().is_none_or(|(_, c)| rescored < *c) {
                best = Some((words, rescored));
            }
        }
        sink.stage_exit(crate::trace::DecodeStage::LmLookup);
        let (words, cost) = best.unwrap_or((Vec::new(), f32::INFINITY));
        TwoPassResult {
            result: DecodeResult {
                words,
                word_frames: Vec::new(),
                cost,
                stats: DecodeStats::default(),
            },
            num_candidates,
            rescoring_evals: evals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::NullSink;
    use crate::wer;
    use unfold_am::{build_am, synthesize_utterance, HmmTopology, Lexicon, NoiseModel};
    use unfold_lm::{lm_to_wfst, CorpusSpec, DiscountConfig};

    fn setup() -> (Lexicon, unfold_wfst::Wfst, NGramModel, unfold_wfst::Wfst) {
        let lex = Lexicon::generate(40, 18, 3);
        let am = build_am(&lex, HmmTopology::Kaldi3State);
        let spec = CorpusSpec {
            vocab_size: 40,
            num_sentences: 300,
            ..Default::default()
        };
        let model = NGramModel::train(&spec.generate(5), 40, DiscountConfig::default());
        let lm = lm_to_wfst(&model);
        (lex, am.fst, model, lm)
    }

    #[test]
    fn unigram_lm_resolves_every_word_without_backoff() {
        let (_, _, model, _) = setup();
        let weak = UnigramLm::from_model(&model);
        for w in 1..=40u32 {
            let res = weak.lookup_word(0, w);
            let arc = res.arc.expect("unigram exists");
            assert_eq!(arc.nextstate, w, "state mirrors the last word");
            assert!((arc.weight - model.unigram_cost(w)).abs() < 1e-6);
        }
        assert!(weak.backoff(0).is_none());
    }

    #[test]
    fn clean_audio_decodes_identically_either_way() {
        let (lex, am, model, lm) = setup();
        let truth = vec![4u32, 11, 7];
        let utt = synthesize_utterance(
            &truth,
            &lex,
            HmmTopology::Kaldi3State,
            &NoiseModel::clean(),
            2,
        );
        let one =
            OtfDecoder::new(DecodeConfig::default()).decode(&am, &lm, &utt.scores, &mut NullSink);
        let two = TwoPassDecoder::new(DecodeConfig::default(), 8).decode(
            &am,
            &model,
            &utt.scores,
            &mut NullSink,
        );
        assert_eq!(one.words, truth);
        assert_eq!(two.result.words, truth);
        assert!(two.num_candidates >= 1);
        // Every candidate word is rescored once.
        assert!(two.rescoring_evals >= 3);
    }

    #[test]
    fn rescoring_prefers_lm_likely_sequences() {
        // Corpus-frequent word pairs must not lose to the weak LM's
        // unigram-only ranking after rescoring.
        let (lex, am, model, lm) = setup();
        let noise = NoiseModel {
            noise_sigma: 1.1,
            ..NoiseModel::default()
        };
        let mut one_errors = 0u64;
        let mut two_errors = 0u64;
        let mut refs = 0u64;
        for seed in 0..6u64 {
            let words = [(seed as u32 % 40) + 1, ((seed as u32 * 3) % 40) + 1];
            let utt = synthesize_utterance(&words, &lex, HmmTopology::Kaldi3State, &noise, seed);
            let one = OtfDecoder::new(DecodeConfig::default()).decode(
                &am,
                &lm,
                &utt.scores,
                &mut NullSink,
            );
            let two = TwoPassDecoder::new(DecodeConfig::default(), 8).decode(
                &am,
                &model,
                &utt.scores,
                &mut NullSink,
            );
            let r1 = wer(&words, &one.words);
            let r2 = wer(&words, &two.result.words);
            one_errors += r1.substitutions + r1.deletions + r1.insertions;
            two_errors += r2.substitutions + r2.deletions + r2.insertions;
            refs += 2;
        }
        // One-pass integrates the full LM during the search and can
        // only be at least as good on average (the paper's rationale
        // for choosing it); allow equality.
        assert!(
            one_errors <= two_errors + 1,
            "one-pass {one_errors} vs two-pass {two_errors} of {refs}"
        );
    }

    #[test]
    #[should_panic(expected = "nbest must be positive")]
    fn zero_nbest_panics() {
        let _ = TwoPassDecoder::new(DecodeConfig::default(), 0);
    }

    /// A synthetic "expensive LM" stand-in: too costly to interleave
    /// with the search (imagine a long-context neural model), so it
    /// only runs as a second pass. Here it vetoes one exact sequence.
    struct VetoRescorer {
        banned: Vec<WordId>,
    }

    impl LatticeRescorer for VetoRescorer {
        fn rescore(&self, words: &[WordId], first_pass_cost: f32) -> (f32, u64) {
            let penalty = if words == self.banned.as_slice() {
                1000.0
            } else {
                0.0
            };
            (first_pass_cost + penalty, words.len() as u64)
        }
    }

    #[test]
    fn lattice_rescoring_hook_reranks_with_an_expensive_lm() {
        let (lex, am, model, _) = setup();
        let weak = UnigramLm::from_model(&model);
        let noise = NoiseModel {
            noise_sigma: 1.5,
            ..NoiseModel::default()
        };
        let utt = synthesize_utterance(&[6, 14, 9], &lex, HmmTopology::Kaldi3State, &noise, 21);
        // A word substitution costs ~18 on this synthetic AM, so both
        // beams must be wide for alternates to survive into the lattice.
        let cfg = DecodeConfig::builder()
            .beam(30.0)
            .lattice_beam(30.0)
            .build()
            .unwrap();
        let nbest = OtfDecoder::new(cfg).decode_nbest(&am, &weak, &utt.scores, 8, &mut NullSink);
        assert!(
            nbest.len() >= 2,
            "workload too easy: the lattice holds a single hypothesis"
        );
        let banned = nbest[0].0.clone();
        let res = TwoPassDecoder::new(cfg, 8).decode_rescored(
            &am,
            &weak,
            &VetoRescorer {
                banned: banned.clone(),
            },
            &utt.scores,
            &mut NullSink,
        );
        assert_ne!(
            res.result.words, banned,
            "the expensive LM's veto must rerank the list"
        );
        assert_eq!(res.result.words, nbest[1].0);
        assert!(res.rescoring_evals > 0);
    }
}
