//! Token-passing Viterbi beam search over the fully-composed WFST — the
//! decoding model of the paper's baseline accelerator (Reza et al.
//! \[34\]): one token per composed-graph state, all LM knowledge already
//! merged into the arc weights offline.

use unfold_am::AcousticScores;
use unfold_wfst::{StateId, Wfst, EPSILON};

use crate::config::{DecodeConfig, DecodeResult, DecodeStats};
use crate::lattice::{Lattice, COMPACT_ENTRY_BYTES, LATTICE_ROOT};
use crate::search::{prune_threshold, Token, TokenMap};
use crate::sources::{addr, AmSource};
use crate::trace::{DecodeStage, TraceSink};

/// Beam-search decoder for offline-composed WFSTs.
#[derive(Debug, Clone)]
pub struct FullyComposedDecoder {
    config: DecodeConfig,
}

impl FullyComposedDecoder {
    /// Creates a decoder with the given beam configuration.
    pub fn new(config: DecodeConfig) -> Self {
        FullyComposedDecoder { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &DecodeConfig {
        &self.config
    }

    /// Decodes one utterance against the composed graph.
    ///
    /// # Panics
    /// Panics if an arc's input label exceeds the score matrix width.
    pub fn decode(
        &self,
        fst: &Wfst,
        scores: &AcousticScores,
        sink: &mut dyn TraceSink,
    ) -> DecodeResult {
        let mut stats = DecodeStats::default();
        let mut lattice = Lattice::new();
        let mut cur: TokenMap<StateId, Token> = TokenMap::default();
        cur.insert(
            AmSource::start(fst),
            Token {
                cost: 0.0,
                lat: LATTICE_ROOT,
            },
        );
        // Initial non-emitting closure (the composed start state may have
        // epsilon-input arcs after a cross-word loop).
        self.epsilon_closure(
            fst,
            &mut cur,
            &mut lattice,
            0,
            f32::INFINITY,
            sink,
            &mut stats,
        );

        for t in 0..scores.num_frames() {
            sink.frame_start(t, cur.len());
            stats.frames += 1;
            stats.max_active = stats.max_active.max(cur.len());
            stats.total_active += cur.len() as u64;

            sink.stage_enter(DecodeStage::Pruning);
            let thr = prune_threshold(&cur, self.config.beam, self.config.max_active);
            sink.stage_switch(DecodeStage::Pruning, DecodeStage::ArcExpansion);
            let mut next: TokenMap<StateId, Token> = TokenMap::default();
            let mut next_best = f32::INFINITY;

            for (&s, tok) in cur.iter() {
                if tok.cost > thr {
                    stats.tokens_pruned += 1;
                    continue;
                }
                sink.state_fetch(AmSource::state_addr(fst, s));
                let tok = *tok;
                AmSource::for_each_arc(fst, s, &mut |v| {
                    sink.am_arc_fetch(v.addr, v.bytes);
                    let arc = v.arc;
                    if arc.ilabel == EPSILON {
                        return; // non-emitting: handled in the closure phase
                    }
                    sink.acoustic_fetch(t, arc.ilabel);
                    let cost = tok.cost + arc.weight + scores.cost(t, arc.ilabel);
                    stats.tokens_created += 1;
                    if cost > next_best + self.config.beam {
                        stats.tokens_pruned += 1;
                        return;
                    }
                    next_best = next_best.min(cost);
                    relax(
                        &mut next,
                        arc.nextstate,
                        cost,
                        tok.lat,
                        arc.olabel,
                        t as u32,
                        &mut lattice,
                        sink,
                    );
                });
            }

            self.epsilon_closure(
                fst,
                &mut next,
                &mut lattice,
                t as u32,
                next_best + self.config.beam,
                sink,
                &mut stats,
            );
            sink.stage_exit(DecodeStage::ArcExpansion);

            let mut best = f32::INFINITY;
            let mut worst = f32::NEG_INFINITY;
            for tok in next.values() {
                best = best.min(tok.cost);
                worst = if worst.is_finite() {
                    worst.max(tok.cost)
                } else {
                    tok.cost
                };
            }
            sink.frame_end(t, next.len(), best, worst);
            cur = next;
        }

        finish(fst, &cur, &lattice, stats, sink)
    }

    /// Relaxes epsilon-input arcs to a fixed point (worklist).
    #[allow(clippy::too_many_arguments)]
    fn epsilon_closure(
        &self,
        fst: &Wfst,
        tokens: &mut TokenMap<StateId, Token>,
        lattice: &mut Lattice,
        frame: u32,
        thr: f32,
        sink: &mut dyn TraceSink,
        stats: &mut DecodeStats,
    ) {
        let mut worklist: Vec<StateId> = tokens.keys().copied().collect();
        let mut guard = 0u64;
        while let Some(s) = worklist.pop() {
            guard += 1;
            assert!(
                guard < 100_000_000,
                "epsilon closure diverged: negative cycle?"
            );
            let tok = match tokens.get(&s) {
                Some(t) => *t,
                None => continue,
            };
            if tok.cost > thr {
                continue;
            }
            let mut local: Vec<(StateId, f32, u32)> = Vec::new();
            AmSource::for_each_arc(fst, s, &mut |v| {
                if v.arc.ilabel != EPSILON {
                    return;
                }
                sink.am_arc_fetch(v.addr, v.bytes);
                stats.epsilon_expansions += 1;
                local.push((v.arc.nextstate, tok.cost + v.arc.weight, v.arc.olabel));
            });
            for (dest, cost, word) in local {
                stats.tokens_created += 1;
                if relax(tokens, dest, cost, tok.lat, word, frame, lattice, sink) {
                    worklist.push(dest);
                }
            }
        }
    }
}

/// Inserts/improves a token; returns whether the map changed.
#[allow(clippy::too_many_arguments)]
fn relax(
    map: &mut TokenMap<StateId, Token>,
    key: StateId,
    cost: f32,
    parent_lat: u32,
    word: u32,
    frame: u32,
    lattice: &mut Lattice,
    sink: &mut dyn TraceSink,
) -> bool {
    let improved = match map.get(&key) {
        Some(existing) => cost < existing.cost,
        None => true,
    };
    if !improved {
        return false;
    }
    let lat = if word != EPSILON {
        let idx = lattice.push(parent_lat, word, frame);
        sink.token_store(
            addr::TOKEN_BASE + u64::from(idx) * u64::from(COMPACT_ENTRY_BYTES),
            COMPACT_ENTRY_BYTES,
        );
        idx
    } else {
        parent_lat
    };
    sink.hash_insert(u64::from(key));
    map.insert(key, Token { cost, lat });
    true
}

/// Selects the best final token and backtraces its words.
fn finish(
    fst: &Wfst,
    tokens: &TokenMap<StateId, Token>,
    lattice: &Lattice,
    stats: DecodeStats,
    sink: &mut dyn TraceSink,
) -> DecodeResult {
    sink.stage_enter(DecodeStage::Lattice);
    let mut best_cost = f32::INFINITY;
    let mut best_lat = LATTICE_ROOT;
    for (&s, tok) in tokens.iter() {
        if let Some(fw) = AmSource::final_weight(fst, s) {
            let total = tok.cost + fw;
            if total < best_cost {
                best_cost = total;
                best_lat = tok.lat;
            }
        }
    }
    let (words, word_frames) = if best_cost.is_finite() {
        let spanned = lattice.backtrace_spanned(best_lat);
        (
            spanned.iter().map(|&(w, _)| w).collect(),
            spanned.iter().map(|&(_, f)| f).collect(),
        )
    } else {
        (Vec::new(), Vec::new())
    };
    sink.stage_exit(DecodeStage::Lattice);
    DecodeResult {
        words,
        word_frames,
        cost: best_cost,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{CountingSink, NullSink};
    use unfold_am::{build_am, synthesize_utterance, HmmTopology, Lexicon, NoiseModel};
    use unfold_lm::{lm_to_wfst, CorpusSpec, DiscountConfig, NGramModel};
    use unfold_wfst::{compose_am_lm, ComposeOptions};

    fn setup() -> (Lexicon, Wfst) {
        let lex = Lexicon::generate(60, 25, 4);
        let am = build_am(&lex, HmmTopology::Kaldi3State);
        let spec = CorpusSpec {
            vocab_size: 60,
            num_sentences: 400,
            ..Default::default()
        };
        let model = NGramModel::train(&spec.generate(5), 60, DiscountConfig::default());
        let lm = lm_to_wfst(&model);
        let composed = compose_am_lm(&am.fst, &lm, ComposeOptions::default());
        (lex, composed)
    }

    #[test]
    fn decodes_clean_utterance_exactly() {
        let (lex, composed) = setup();
        let truth = vec![7u32, 3, 15, 2];
        let utt = synthesize_utterance(
            &truth,
            &lex,
            HmmTopology::Kaldi3State,
            &NoiseModel::clean(),
            11,
        );
        let dec = FullyComposedDecoder::new(DecodeConfig::default());
        let res = dec.decode(&composed, &utt.scores, &mut NullSink);
        assert!(res.is_complete());
        assert_eq!(res.words, truth);
    }

    #[test]
    fn stats_are_populated() {
        let (lex, composed) = setup();
        let utt = synthesize_utterance(
            &[1, 2],
            &lex,
            HmmTopology::Kaldi3State,
            &NoiseModel::clean(),
            3,
        );
        let dec = FullyComposedDecoder::new(DecodeConfig::default());
        let mut sink = CountingSink::default();
        let res = dec.decode(&composed, &utt.scores, &mut sink);
        assert_eq!(res.stats.frames, utt.scores.num_frames());
        assert!(res.stats.tokens_created > 0);
        assert!(res.stats.max_active >= 1);
        assert_eq!(sink.frames, utt.scores.num_frames());
        assert!(sink.am_arc_fetches > 0);
        assert!(
            sink.token_bytes > 0,
            "cross-word arcs must write lattice entries"
        );
        // The fully-composed decoder never touches an LM.
        assert_eq!(sink.lm_lookups, 0);
    }

    #[test]
    fn tight_beam_prunes_more() {
        let (lex, composed) = setup();
        let utt = synthesize_utterance(
            &[5, 9, 12],
            &lex,
            HmmTopology::Kaldi3State,
            &NoiseModel::default(),
            7,
        );
        let wide = FullyComposedDecoder::new(DecodeConfig::builder().beam(16.0).build().unwrap())
            .decode(&composed, &utt.scores, &mut NullSink);
        let tight = FullyComposedDecoder::new(DecodeConfig::builder().beam(4.0).build().unwrap())
            .decode(&composed, &utt.scores, &mut NullSink);
        assert!(tight.stats.mean_active() < wide.stats.mean_active());
        // A wider beam can only find an equal-or-better path.
        if wide.is_complete() && tight.is_complete() {
            assert!(wide.cost <= tight.cost + 1e-4);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let (lex, composed) = setup();
        let utt = synthesize_utterance(
            &[2, 4, 6],
            &lex,
            HmmTopology::Kaldi3State,
            &NoiseModel::default(),
            13,
        );
        let dec = FullyComposedDecoder::new(DecodeConfig::default());
        let a = dec.decode(&composed, &utt.scores, &mut NullSink);
        let b = dec.decode(&composed, &utt.scores, &mut NullSink);
        assert_eq!(a.words, b.words);
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.stats, b.stats);
    }
}
