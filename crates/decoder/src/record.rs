//! Trace recording and replay.
//!
//! The decoder normally drives a simulator *online*. For design-space
//! sweeps (Figure 6's cache-capacity curve, Figure 7's OLT curve) the
//! same decode would be repeated once per configuration — wasteful,
//! since the memory-access trace is identical every time. A
//! [`TraceRecorder`] captures the trace once; [`TraceRecorder::replay`]
//! then feeds any number of sinks at memory-bandwidth speed.

use unfold_wfst::{Label, StateId};

use crate::trace::{DecodeStage, TraceSink};

/// One recorded trace event (the [`TraceSink`] vocabulary, reified).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// Frame boundary with the live-token count.
    FrameStart(usize, usize),
    /// Frame completed: surviving tokens and their cost spread.
    FrameEnd(usize, usize, f32, f32),
    /// A profiled stage begins.
    StageEnter(DecodeStage),
    /// The innermost profiled stage ends.
    StageExit(DecodeStage),
    /// State record fetch.
    StateFetch(u64),
    /// AM (or composed-graph) arc fetch.
    AmArcFetch(u64, u32),
    /// LM lookup begins for `(state, word)`.
    LmLookup(StateId, Label),
    /// LM arc fetch (probe or back-off read).
    LmArcFetch(u64, u32),
    /// LM lookup resolved after the given back-off hops.
    LmResolved(StateId, Label, u32),
    /// Acoustic score read.
    AcousticFetch(usize, Label),
    /// Token hash insert.
    HashInsert(u64),
    /// Word-lattice write.
    TokenStore(u64, u32),
    /// Hypothesis abandoned mid-back-off.
    PreemptivePrune,
    /// Software-OLT probe for `(state, word)` and whether it hit.
    OltProbe(StateId, Label, bool),
    /// Software-OLT install and whether it evicted a live entry.
    OltInstall(bool),
}

/// Records every sink call for later replay.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    events: Vec<TraceEvent>,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The recorded events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Feeds the recorded trace into `sink`, in order.
    pub fn replay(&self, sink: &mut dyn TraceSink) {
        for &e in &self.events {
            match e {
                TraceEvent::FrameStart(f, a) => sink.frame_start(f, a),
                TraceEvent::FrameEnd(f, a, best, worst) => sink.frame_end(f, a, best, worst),
                TraceEvent::StageEnter(stage) => sink.stage_enter(stage),
                TraceEvent::StageExit(stage) => sink.stage_exit(stage),
                TraceEvent::StateFetch(addr) => sink.state_fetch(addr),
                TraceEvent::AmArcFetch(addr, b) => sink.am_arc_fetch(addr, b),
                TraceEvent::LmLookup(s, w) => sink.lm_lookup(s, w),
                TraceEvent::LmArcFetch(addr, b) => sink.lm_arc_fetch(addr, b),
                TraceEvent::LmResolved(s, w, h) => sink.lm_resolved(s, w, h),
                TraceEvent::AcousticFetch(f, p) => sink.acoustic_fetch(f, p),
                TraceEvent::HashInsert(k) => sink.hash_insert(k),
                TraceEvent::TokenStore(addr, b) => sink.token_store(addr, b),
                TraceEvent::PreemptivePrune => sink.preemptive_prune(),
                TraceEvent::OltProbe(s, w, hit) => sink.olt_probe(s, w, hit),
                TraceEvent::OltInstall(evicted) => sink.olt_install(evicted),
            }
        }
    }
}

impl TraceSink for TraceRecorder {
    fn frame_start(&mut self, frame: usize, active: usize) {
        self.events.push(TraceEvent::FrameStart(frame, active));
    }
    fn frame_end(&mut self, frame: usize, active: usize, best_cost: f32, worst_cost: f32) {
        self.events
            .push(TraceEvent::FrameEnd(frame, active, best_cost, worst_cost));
    }
    fn stage_enter(&mut self, stage: DecodeStage) {
        self.events.push(TraceEvent::StageEnter(stage));
    }
    fn stage_exit(&mut self, stage: DecodeStage) {
        self.events.push(TraceEvent::StageExit(stage));
    }
    fn state_fetch(&mut self, addr: u64) {
        self.events.push(TraceEvent::StateFetch(addr));
    }
    fn am_arc_fetch(&mut self, addr: u64, bytes: u32) {
        self.events.push(TraceEvent::AmArcFetch(addr, bytes));
    }
    fn lm_lookup(&mut self, lm_state: StateId, word: Label) {
        self.events.push(TraceEvent::LmLookup(lm_state, word));
    }
    fn lm_arc_fetch(&mut self, addr: u64, bytes: u32) {
        self.events.push(TraceEvent::LmArcFetch(addr, bytes));
    }
    fn lm_resolved(&mut self, lm_state: StateId, word: Label, backoff_hops: u32) {
        self.events
            .push(TraceEvent::LmResolved(lm_state, word, backoff_hops));
    }
    fn acoustic_fetch(&mut self, frame: usize, pdf: Label) {
        self.events.push(TraceEvent::AcousticFetch(frame, pdf));
    }
    fn hash_insert(&mut self, key: u64) {
        self.events.push(TraceEvent::HashInsert(key));
    }
    fn token_store(&mut self, addr: u64, bytes: u32) {
        self.events.push(TraceEvent::TokenStore(addr, bytes));
    }
    fn preemptive_prune(&mut self) {
        self.events.push(TraceEvent::PreemptivePrune);
    }
    fn olt_probe(&mut self, lm_state: StateId, word: Label, hit: bool) {
        self.events.push(TraceEvent::OltProbe(lm_state, word, hit));
    }
    fn olt_install(&mut self, evicted: bool) {
        self.events.push(TraceEvent::OltInstall(evicted));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::CountingSink;
    use crate::{DecodeConfig, NullSink, OtfDecoder};
    use unfold_am::{build_am, synthesize_utterance, HmmTopology, Lexicon, NoiseModel};
    use unfold_lm::{lm_to_wfst, CorpusSpec, NGramModel};

    #[test]
    fn replay_reproduces_the_online_counts() {
        let lex = Lexicon::generate(40, 18, 2);
        let am = build_am(&lex, HmmTopology::Kaldi3State);
        let spec = CorpusSpec {
            vocab_size: 40,
            num_sentences: 250,
            ..Default::default()
        };
        let model = NGramModel::train(&spec.generate(3), 40, Default::default());
        let lm = lm_to_wfst(&model);
        let utt = synthesize_utterance(
            &[4, 9],
            &lex,
            HmmTopology::Kaldi3State,
            &NoiseModel::default(),
            7,
        );
        let dec = OtfDecoder::new(DecodeConfig::default());

        // Online counts.
        let mut online = CountingSink::default();
        dec.decode(&am.fst, &lm, &utt.scores, &mut online);

        // Recorded then replayed counts.
        let mut rec = TraceRecorder::new();
        dec.decode(&am.fst, &lm, &utt.scores, &mut rec);
        assert!(!rec.is_empty());
        let mut replayed = CountingSink::default();
        rec.replay(&mut replayed);

        assert_eq!(online.frames, replayed.frames);
        assert_eq!(online.am_arc_fetches, replayed.am_arc_fetches);
        assert_eq!(online.lm_arc_fetches, replayed.lm_arc_fetches);
        assert_eq!(online.lm_lookups, replayed.lm_lookups);
        assert_eq!(online.token_bytes, replayed.token_bytes);
        assert_eq!(online.hash_inserts, replayed.hash_inserts);
    }

    #[test]
    fn replay_is_repeatable() {
        let mut rec = TraceRecorder::new();
        rec.state_fetch(0x10);
        rec.am_arc_fetch(0x20, 16);
        let mut a = CountingSink::default();
        let mut b = CountingSink::default();
        rec.replay(&mut a);
        rec.replay(&mut b);
        assert_eq!(a.state_fetches, b.state_fetches);
        assert_eq!(rec.len(), 2);
        let _ = NullSink;
    }
}
