//! The unified frame-ingest surface.
//!
//! Before this module the codebase grew three divergent ways to hand a
//! frame to a decoder: `OtfStream::push_frame(costs)` took a borrowed
//! score row, `StreamSession::push_frame` took the same row plus the
//! models and a scratch, and the serve wire protocol shipped raw score
//! rows in its own `Frames` message. None of them could carry anything
//! *other* than precomputed scores, which blocked the paper's §5.2
//! batch pipeline: the GPU scores features for batch *i+1* while the
//! accelerator searches batch *i*, so the serving layer must accept
//! **features** and own the scoring step.
//!
//! [`FrameInput`] is the one currency all ingest paths now speak — a
//! frame is either a precomputed score row or a raw feature vector.
//! [`AcousticScorer`] turns either into a score row: the scoring stage
//! of the pipelined scheduler batches calls to it across sessions, and
//! because scoring is a *pure per-frame function* (no state carried
//! between frames), neither the batch size nor the stage boundary can
//! change what the search stage sees — the foundation of the
//! pipelined-equals-lockstep bit-identity guarantee pinned by the
//! `pipeline-identity` verify check.
//!
//! [`SessionIngest`] is the trait every session-shaped ingest surface
//! implements ([`crate::OtfStream`] here, the serve handle's bound
//! session in `unfold-serve`), so callers generic over "somewhere to
//! push frames" stop caring which layer they talk to.

use std::sync::Arc;
use unfold_am::GmmModel;

/// One frame of input to a streaming decode: either a precomputed
/// acoustic score row (cost per PDF, index `pdf - 1` — what the legacy
/// ingest surfaces took) or a raw feature vector for an
/// [`AcousticScorer`] to score.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameInput {
    /// A precomputed score row: `scores[pdf - 1]` is the acoustic cost
    /// (negative log-likelihood) of PDF `pdf` on this frame.
    Scores(Vec<f32>),
    /// A raw feature vector; the scoring stage derives the score row.
    Features(Vec<f32>),
}

impl FrameInput {
    /// Stable lowercase name for telemetry and wire messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            FrameInput::Scores(_) => "scores",
            FrameInput::Features(_) => "features",
        }
    }

    /// The raw values regardless of kind.
    pub fn values(&self) -> &[f32] {
        match self {
            FrameInput::Scores(v) | FrameInput::Features(v) => v,
        }
    }

    /// Consumes the frame, returning its backing buffer (for pooling).
    pub fn into_values(self) -> Vec<f32> {
        match self {
            FrameInput::Scores(v) | FrameInput::Features(v) => v,
        }
    }
}

/// An [`AcousticScorer`] rejected a frame. Scoring failures are typed
/// and recoverable — a malformed frame must never panic a worker that
/// is multiplexing other sessions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScoreError {
    /// The scorer has no acoustic frontend: it can only pass
    /// precomputed score rows through, and was handed
    /// [`FrameInput::Features`].
    FeaturesUnsupported,
    /// The frame's width does not match what the scorer requires
    /// (score-row width for precomputed rows, feature dimension for
    /// features).
    WidthMismatch {
        /// Width the scorer requires.
        expected: usize,
        /// Width the frame actually had.
        got: usize,
    },
}

impl std::fmt::Display for ScoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScoreError::FeaturesUnsupported => {
                write!(
                    f,
                    "scorer accepts only precomputed score rows, got features"
                )
            }
            ScoreError::WidthMismatch { expected, got } => {
                write!(
                    f,
                    "frame width mismatch: scorer expects {expected}, got {got}"
                )
            }
        }
    }
}

impl std::error::Error for ScoreError {}

/// Turns [`FrameInput`]s into acoustic score rows.
///
/// # Contract
///
/// An implementation must be a **pure per-frame function**: the row
/// written for a frame depends only on that frame's contents, never on
/// call order, batch grouping, or frames scored before it. The
/// pipelined scheduler relies on this to batch scoring across sessions
/// while keeping search output bit-identical to lockstep decoding —
/// a stateful scorer would break the `pipeline-identity` guarantee.
/// (Accumulating *telemetry* — modeled busy time, frame counts — is
/// fine; the rows themselves must be history-free.)
///
/// Implementations must also never panic on malformed input: width
/// checks return [`ScoreError::WidthMismatch`], missing capabilities
/// return [`ScoreError::FeaturesUnsupported`].
///
/// (`Debug` is a supertrait so scorer handles can sit inside
/// `#[derive(Debug)]` scheduler state; derive it.)
pub trait AcousticScorer: Send + Sync + std::fmt::Debug {
    /// Width of every score row this scorer emits (`num_pdfs`).
    fn num_pdfs(&self) -> usize;

    /// Scores one frame into `out` (cleared and refilled with exactly
    /// [`AcousticScorer::num_pdfs`] costs).
    fn score_into(&self, frame: &FrameInput, out: &mut Vec<f32>) -> Result<(), ScoreError>;

    /// Scores a batch of frames. The default loops [`score_into`]
    /// (scoring is per-frame pure, so this is always correct);
    /// implementations override it only to amortize per-call overhead,
    /// never to change the rows.
    ///
    /// [`score_into`]: AcousticScorer::score_into
    fn score_batch(&self, frames: &[FrameInput]) -> Result<Vec<Vec<f32>>, ScoreError> {
        let mut rows = Vec::with_capacity(frames.len());
        for frame in frames {
            let mut row = Vec::new();
            self.score_into(frame, &mut row)?;
            rows.push(row);
        }
        Ok(rows)
    }
}

/// The passthrough scorer: accepts precomputed score rows of a fixed
/// width and copies them through; rejects feature frames. This is the
/// scorer behind every legacy ingest path, which is exactly why those
/// paths stay byte-for-byte compatible.
#[derive(Debug, Clone, Copy)]
pub struct PrecomputedScorer {
    width: usize,
}

impl PrecomputedScorer {
    /// A passthrough for score rows of exactly `width` costs.
    pub fn new(width: usize) -> Self {
        PrecomputedScorer { width }
    }
}

impl AcousticScorer for PrecomputedScorer {
    fn num_pdfs(&self) -> usize {
        self.width
    }

    fn score_into(&self, frame: &FrameInput, out: &mut Vec<f32>) -> Result<(), ScoreError> {
        match frame {
            FrameInput::Scores(row) => {
                if row.len() != self.width {
                    return Err(ScoreError::WidthMismatch {
                        expected: self.width,
                        got: row.len(),
                    });
                }
                out.clear();
                out.extend_from_slice(row);
                Ok(())
            }
            FrameInput::Features(_) => Err(ScoreError::FeaturesUnsupported),
        }
    }
}

/// A real acoustic frontend: scores feature frames through a
/// [`GmmModel`] (log-sum-exp over diagonal-covariance mixtures) and
/// passes precomputed rows through unchanged, so one server can serve
/// feature-pushing and score-pushing clients simultaneously.
#[derive(Debug, Clone)]
pub struct GmmScorer {
    model: Arc<GmmModel>,
}

impl GmmScorer {
    /// A scorer backed by `model`.
    pub fn new(model: Arc<GmmModel>) -> Self {
        GmmScorer { model }
    }

    /// The backing model.
    pub fn model(&self) -> &Arc<GmmModel> {
        &self.model
    }
}

impl AcousticScorer for GmmScorer {
    fn num_pdfs(&self) -> usize {
        self.model.num_pdfs()
    }

    fn score_into(&self, frame: &FrameInput, out: &mut Vec<f32>) -> Result<(), ScoreError> {
        match frame {
            FrameInput::Scores(row) => {
                if row.len() != self.model.num_pdfs() {
                    return Err(ScoreError::WidthMismatch {
                        expected: self.model.num_pdfs(),
                        got: row.len(),
                    });
                }
                out.clear();
                out.extend_from_slice(row);
                Ok(())
            }
            FrameInput::Features(feat) => {
                if feat.len() != self.model.dim() {
                    return Err(ScoreError::WidthMismatch {
                        expected: self.model.dim(),
                        got: feat.len(),
                    });
                }
                self.model.frame_costs_into(feat, out);
                Ok(())
            }
        }
    }
}

/// A session-shaped surface frames flow into. Implemented by
/// [`crate::OtfStream`] (single-session, models pinned) and by the
/// serve layer's bound session handle; generic producers (the wire
/// front-end, load generators, tests) push [`FrameInput`]s without
/// caring which layer sits underneath.
pub trait SessionIngest {
    /// Why a frame was refused (queue full, scoring failure, …).
    type Error: std::error::Error;

    /// Consumes one frame.
    fn ingest(&mut self, frame: FrameInput) -> Result<(), Self::Error>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precomputed_scorer_passes_rows_through_bitwise() {
        let s = PrecomputedScorer::new(3);
        assert_eq!(s.num_pdfs(), 3);
        let mut out = vec![9.0; 7]; // stale contents must be cleared
        s.score_into(&FrameInput::Scores(vec![1.5, -0.25, 3.0]), &mut out)
            .unwrap();
        assert_eq!(out, vec![1.5, -0.25, 3.0]);
    }

    #[test]
    fn precomputed_scorer_rejects_bad_input_without_panicking() {
        let s = PrecomputedScorer::new(3);
        let mut out = Vec::new();
        assert_eq!(
            s.score_into(&FrameInput::Scores(vec![1.0]), &mut out),
            Err(ScoreError::WidthMismatch {
                expected: 3,
                got: 1
            })
        );
        assert_eq!(
            s.score_into(&FrameInput::Features(vec![1.0, 2.0, 3.0]), &mut out),
            Err(ScoreError::FeaturesUnsupported)
        );
    }

    #[test]
    fn default_batch_equals_per_frame_scoring() {
        let s = PrecomputedScorer::new(2);
        let frames = vec![
            FrameInput::Scores(vec![1.0, 2.0]),
            FrameInput::Scores(vec![3.0, 4.0]),
        ];
        let rows = s.score_batch(&frames).unwrap();
        assert_eq!(rows, vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        // A bad frame anywhere fails the whole batch with the typed error.
        let bad = vec![
            FrameInput::Scores(vec![1.0, 2.0]),
            FrameInput::Features(vec![0.0]),
        ];
        assert_eq!(s.score_batch(&bad), Err(ScoreError::FeaturesUnsupported));
    }

    #[test]
    fn gmm_scorer_matches_direct_model_scoring() {
        let model = Arc::new(GmmModel::synthesize(6, 4, 2, 2.5, 77));
        let s = GmmScorer::new(model.clone());
        assert_eq!(s.num_pdfs(), model.num_pdfs());
        let feat: Vec<f32> = (0..model.dim()).map(|d| d as f32 * 0.5 - 1.0).collect();
        let direct = model.frame_costs(&feat);
        let mut out = Vec::new();
        s.score_into(&FrameInput::Features(feat.clone()), &mut out)
            .unwrap();
        assert_eq!(
            out.iter().map(|c| c.to_bits()).collect::<Vec<_>>(),
            direct.iter().map(|c| c.to_bits()).collect::<Vec<_>>(),
            "scorer must reproduce the model's rows bit-for-bit"
        );
        // Precomputed rows pass through; wrong widths are typed errors.
        s.score_into(&FrameInput::Scores(direct.clone()), &mut out)
            .unwrap();
        assert_eq!(out, direct);
        assert!(matches!(
            s.score_into(&FrameInput::Features(vec![0.0]), &mut out),
            Err(ScoreError::WidthMismatch { .. })
        ));
    }

    #[test]
    fn frame_input_accessors() {
        let f = FrameInput::Features(vec![1.0, 2.0]);
        assert_eq!(f.kind_name(), "features");
        assert_eq!(f.values(), &[1.0, 2.0]);
        assert_eq!(f.into_values(), vec![1.0, 2.0]);
        let s = FrameInput::Scores(vec![3.0]);
        assert_eq!(s.kind_name(), "scores");
    }
}
