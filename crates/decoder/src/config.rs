//! Decoder configuration, statistics, and results.

use unfold_lm::WordId;

/// Which frame-loop implementation the on-the-fly decoder runs. Both
/// kernels produce bit-identical output — words, costs, stats, and the
/// full ordered [`crate::TraceSink`] event stream — which the verify
/// matrix and proptests pin; they differ only in how the work is laid
/// out for the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeKernel {
    /// The scalar reference kernel: per-token map walks, `get` +
    /// `insert` relaxation. Kept compiled unconditionally so the SoA
    /// kernel always has a differential baseline.
    Legacy,
    /// The struct-of-arrays kernel: contiguous-slice threshold fold,
    /// packed survivor bitmask compaction, a batched probe-buffer
    /// prefetch pass over the frame's (AM, LM) state keys, and fused
    /// single-walk token relaxation.
    Soa,
}

impl DecodeKernel {
    /// Stable snake_case name used in telemetry and bench exports.
    pub fn name(self) -> &'static str {
        match self {
            DecodeKernel::Legacy => "legacy",
            DecodeKernel::Soa => "soa",
        }
    }
}

impl Default for DecodeKernel {
    /// The `soa_kernel` cargo feature (on by default) selects the SoA
    /// kernel; building `unfold-decoder` with `--no-default-features`
    /// flips the default back to the scalar reference kernel. Either
    /// way both kernels stay compiled and runtime-selectable.
    fn default() -> Self {
        if cfg!(feature = "soa_kernel") {
            DecodeKernel::Soa
        } else {
            DecodeKernel::Legacy
        }
    }
}

/// Beam-search parameters shared by both decoders.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecodeConfig {
    /// Beam width: tokens whose cost exceeds `best + beam` are pruned.
    pub beam: f32,
    /// Hard cap on live tokens per frame (histogram-style pruning);
    /// `usize::MAX` disables it.
    pub max_active: usize,
    /// Enable the paper's §3.3 preemptive pruning: abandon a hypothesis
    /// mid-back-off as soon as its accumulated cost crosses the beam
    /// threshold.
    pub preemptive_pruning: bool,
    /// Capacity of the software Offset Lookup Table memoizing
    /// `(LM state, word)` → word-arc resolutions (paper §3.1, Fig. 7),
    /// in entries; 0 disables it. Rounded up to a power of two. The OLT
    /// never changes decode output — only how many LM arc fetches the
    /// binary searches cost — so it defaults to off to keep simulator
    /// traces identical to the unmemoized decoder.
    pub olt_entries: usize,
    /// Capacity of the per-session dynamic memo layer caching
    /// *composite* `(biased LM state, word)` resolutions when decoding
    /// through a biasing adapter, in entries; 0 disables it. Rounded up
    /// to a power of two. Unbiased decodes never touch this layer (the
    /// LM reports no memo context), so it can never perturb their
    /// output or statistics.
    pub bias_cache_entries: usize,
    /// Frame-loop implementation (see [`DecodeKernel`]). Never changes
    /// decode output; defaults by the `soa_kernel` cargo feature.
    pub kernel: DecodeKernel,
    /// Lattice beam: when a word lattice is requested, arcs whose best
    /// complete path exceeds `best + lattice_beam` are pruned from the
    /// lattice in the post-pass. Only consulted by the lattice-producing
    /// entry points (`decode_lattice*`, `decode_nbest*`, streaming with
    /// the lattice enabled); plain 1-best decoding ignores it entirely,
    /// so it can never perturb search output.
    pub lattice_beam: f32,
    /// Upper bound on how many frames the pipelined scoring stage may
    /// batch into one acoustic-scorer call (across sessions, in the
    /// serve scheduler). Scoring is a pure per-frame function, so the
    /// batch size never changes decode output — only amortization of
    /// per-call overhead. Must be in `1..=MAX_SCORER_BATCH`. Ignored by
    /// lockstep (non-pipelined) decoding.
    pub scorer_batch: usize,
    /// How many scored-but-not-yet-searched frames a pipelined session
    /// may hold (the SPSC scored-frame queue depth). 0 means strictly
    /// synchronous hand-off (the search stage consumes each frame
    /// before the next is scored); larger values let scoring run ahead.
    /// Search always consumes frames in push order, so the lag bound
    /// never changes decode output. Must be `<= MAX_SEARCH_LAG`.
    /// Ignored by lockstep (non-pipelined) decoding.
    pub max_search_lag: usize,
}

/// Largest accepted [`DecodeConfig::scorer_batch`].
pub const MAX_SCORER_BATCH: usize = 4_096;

/// Largest accepted [`DecodeConfig::max_search_lag`].
pub const MAX_SEARCH_LAG: usize = 4_096;

impl Default for DecodeConfig {
    fn default() -> Self {
        DecodeConfig {
            beam: 14.0,
            max_active: 6_000,
            preemptive_pruning: true,
            olt_entries: 0,
            bias_cache_entries: 256,
            kernel: DecodeKernel::default(),
            lattice_beam: 8.0,
            scorer_batch: 8,
            max_search_lag: 4,
        }
    }
}

impl DecodeConfig {
    /// A validating builder seeded with the defaults — the sanctioned
    /// way to construct a non-default configuration. Struct literals
    /// silently accept nonsense (`beam: 0.0` prunes everything,
    /// `olt_entries: 100` would be quietly rounded); the builder
    /// rejects it at construction time.
    pub fn builder() -> DecodeConfigBuilder {
        DecodeConfigBuilder {
            cfg: DecodeConfig::default(),
        }
    }

    /// A builder seeded with this configuration's current values, for
    /// deriving a variant (`cfg.to_builder().olt_entries(512).build()`).
    pub fn to_builder(self) -> DecodeConfigBuilder {
        DecodeConfigBuilder { cfg: self }
    }
}

/// A [`DecodeConfig`] that failed validation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// Beam must be finite and strictly positive.
    BadBeam(f32),
    /// `max_active` of zero would prune every token.
    ZeroMaxActive,
    /// A non-zero OLT capacity must be a power of two (the table is
    /// XOR-indexed).
    OltNotPowerOfTwo(usize),
    /// A non-zero per-session bias-cache capacity must be a power of
    /// two (same XOR-indexed table layout as the OLT).
    BiasCacheNotPowerOfTwo(usize),
    /// Lattice beam must be finite and strictly positive (a zero or
    /// negative lattice beam would prune the Viterbi path itself).
    BadLatticeBeam(f32),
    /// `scorer_batch` of zero would starve the scoring stage.
    ZeroScorerBatch,
    /// `scorer_batch` above [`MAX_SCORER_BATCH`] (an unbounded batch
    /// defeats the bounded-queue memory argument).
    ScorerBatchTooLarge(usize),
    /// `max_search_lag` above [`MAX_SEARCH_LAG`] (an unbounded lag
    /// defeats the bounded-queue memory argument).
    SearchLagTooLarge(usize),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::BadBeam(b) => {
                write!(f, "beam must be finite and > 0, got {b}")
            }
            ConfigError::ZeroMaxActive => write!(f, "max_active must be > 0"),
            ConfigError::OltNotPowerOfTwo(n) => {
                write!(f, "olt_entries must be 0 or a power of two, got {n}")
            }
            ConfigError::BiasCacheNotPowerOfTwo(n) => {
                write!(f, "bias_cache_entries must be 0 or a power of two, got {n}")
            }
            ConfigError::BadLatticeBeam(b) => {
                write!(f, "lattice_beam must be finite and > 0, got {b}")
            }
            ConfigError::ZeroScorerBatch => write!(f, "scorer_batch must be > 0"),
            ConfigError::ScorerBatchTooLarge(n) => {
                write!(f, "scorer_batch must be <= {MAX_SCORER_BATCH}, got {n}")
            }
            ConfigError::SearchLagTooLarge(n) => {
                write!(f, "max_search_lag must be <= {MAX_SEARCH_LAG}, got {n}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Builder for [`DecodeConfig`]; see [`DecodeConfig::builder`].
#[derive(Debug, Clone, Copy)]
pub struct DecodeConfigBuilder {
    cfg: DecodeConfig,
}

impl DecodeConfigBuilder {
    /// Beam width (must be finite and > 0).
    pub fn beam(mut self, beam: f32) -> Self {
        self.cfg.beam = beam;
        self
    }

    /// Live-token cap per frame (must be > 0; `usize::MAX` disables).
    pub fn max_active(mut self, max_active: usize) -> Self {
        self.cfg.max_active = max_active;
        self
    }

    /// Toggle preemptive pruning (§3.3).
    pub fn preemptive_pruning(mut self, on: bool) -> Self {
        self.cfg.preemptive_pruning = on;
        self
    }

    /// Software-OLT capacity in entries (0 disables; otherwise must be
    /// a power of two).
    pub fn olt_entries(mut self, entries: usize) -> Self {
        self.cfg.olt_entries = entries;
        self
    }

    /// Per-session bias-cache capacity in entries (0 disables;
    /// otherwise must be a power of two).
    pub fn bias_cache_entries(mut self, entries: usize) -> Self {
        self.cfg.bias_cache_entries = entries;
        self
    }

    /// Frame-loop kernel selection (see [`DecodeKernel`]).
    pub fn kernel(mut self, kernel: DecodeKernel) -> Self {
        self.cfg.kernel = kernel;
        self
    }

    /// Lattice beam for lattice-producing entry points (must be finite
    /// and > 0).
    pub fn lattice_beam(mut self, lattice_beam: f32) -> Self {
        self.cfg.lattice_beam = lattice_beam;
        self
    }

    /// Scoring-stage batch cap for pipelined decoding (must be in
    /// `1..=`[`MAX_SCORER_BATCH`]).
    pub fn scorer_batch(mut self, frames: usize) -> Self {
        self.cfg.scorer_batch = frames;
        self
    }

    /// Scored-frame queue depth for pipelined decoding (0 = strictly
    /// synchronous; must be `<=` [`MAX_SEARCH_LAG`]).
    pub fn max_search_lag(mut self, frames: usize) -> Self {
        self.cfg.max_search_lag = frames;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    /// [`ConfigError`] describing the first rejected field.
    pub fn build(self) -> Result<DecodeConfig, ConfigError> {
        let c = self.cfg;
        if !c.beam.is_finite() || c.beam <= 0.0 {
            return Err(ConfigError::BadBeam(c.beam));
        }
        if c.max_active == 0 {
            return Err(ConfigError::ZeroMaxActive);
        }
        if c.olt_entries != 0 && !c.olt_entries.is_power_of_two() {
            return Err(ConfigError::OltNotPowerOfTwo(c.olt_entries));
        }
        if c.bias_cache_entries != 0 && !c.bias_cache_entries.is_power_of_two() {
            return Err(ConfigError::BiasCacheNotPowerOfTwo(c.bias_cache_entries));
        }
        if !c.lattice_beam.is_finite() || c.lattice_beam <= 0.0 {
            return Err(ConfigError::BadLatticeBeam(c.lattice_beam));
        }
        if c.scorer_batch == 0 {
            return Err(ConfigError::ZeroScorerBatch);
        }
        if c.scorer_batch > MAX_SCORER_BATCH {
            return Err(ConfigError::ScorerBatchTooLarge(c.scorer_batch));
        }
        if c.max_search_lag > MAX_SEARCH_LAG {
            return Err(ConfigError::SearchLagTooLarge(c.max_search_lag));
        }
        Ok(c)
    }
}

/// Counters collected during one utterance decode.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DecodeStats {
    /// Frames processed.
    pub frames: usize,
    /// Tokens created (pre-pruning).
    pub tokens_created: u64,
    /// Tokens discarded by beam/histogram pruning.
    pub tokens_pruned: u64,
    /// Peak live tokens in any frame.
    pub max_active: usize,
    /// Sum of live tokens over frames (for mean-active computations).
    pub total_active: u64,
    /// LM lookups issued (cross-word transitions).
    pub lm_lookups: u64,
    /// Total binary-search probes + back-off arc fetches.
    pub lm_fetches: u64,
    /// Back-off arcs traversed.
    pub backoff_hops: u64,
    /// Hypotheses abandoned by preemptive pruning (§3.3).
    pub preemptive_prunes: u64,
    /// Non-emitting (epsilon) expansions performed.
    pub epsilon_expansions: u64,
    /// Software-OLT probes issued (one per LM lookup step while the
    /// table is enabled).
    pub olt_probes: u64,
    /// Software-OLT probes that hit (binary search skipped).
    pub olt_hits: u64,
    /// Resolutions installed into the software OLT.
    pub olt_installs: u64,
    /// Installs that displaced a live entry.
    pub olt_evictions: u64,
    /// Per-session bias-cache probes (composite-state resolutions;
    /// zero on unbiased decodes).
    pub bias_probes: u64,
    /// Bias-cache probes that hit (base walk + join skipped).
    pub bias_hits: u64,
    /// Resolutions installed into the bias cache.
    pub bias_installs: u64,
    /// Bias-cache installs that displaced a live entry.
    pub bias_evictions: u64,
}

impl DecodeStats {
    /// Mean live tokens per frame.
    pub fn mean_active(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.total_active as f64 / self.frames as f64
        }
    }

    /// Mean LM fetches per lookup (the cost the Offset Lookup Table and
    /// binary search fight over).
    pub fn fetches_per_lookup(&self) -> f64 {
        if self.lm_lookups == 0 {
            0.0
        } else {
            self.lm_fetches as f64 / self.lm_lookups as f64
        }
    }

    /// Software-OLT hit ratio in `[0, 1]` (0.0 when the table was off).
    pub fn olt_hit_ratio(&self) -> f64 {
        if self.olt_probes == 0 {
            0.0
        } else {
            self.olt_hits as f64 / self.olt_probes as f64
        }
    }

    /// Per-session bias-cache hit ratio in `[0, 1]` (0.0 when unbiased
    /// or the cache was off).
    pub fn bias_hit_ratio(&self) -> f64 {
        if self.bias_probes == 0 {
            0.0
        } else {
            self.bias_hits as f64 / self.bias_probes as f64
        }
    }
}

/// Output of decoding one utterance.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeResult {
    /// Best-path word sequence.
    pub words: Vec<WordId>,
    /// Frame at which each word in `words` was recognized (the frame of
    /// the token-passing arc that carried the word label). Parallel to
    /// `words`; empty when the decode was incomplete.
    pub word_frames: Vec<u32>,
    /// Cost of the best complete hypothesis (`f32::INFINITY` when no
    /// hypothesis reached a final state).
    pub cost: f32,
    /// Search statistics.
    pub stats: DecodeStats,
}

impl DecodeResult {
    /// Whether the search produced a complete hypothesis.
    pub fn is_complete(&self) -> bool {
        self.cost.is_finite()
    }

    /// Per-word frame spans `(word, first_frame, last_frame)` derived
    /// from `word_frames`: each word's span runs from just after the
    /// previous word's recognition frame through its own. Spans are
    /// inclusive and non-overlapping; word boundaries inside a span are
    /// not refined below the word level.
    pub fn word_spans(&self) -> Vec<(WordId, u32, u32)> {
        let mut spans = Vec::with_capacity(self.words.len());
        let mut start = 0u32;
        for (&w, &end) in self.words.iter().zip(&self.word_frames) {
            spans.push((w, start.min(end), end));
            start = end + 1;
        }
        spans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = DecodeConfig::default();
        assert!(c.beam > 0.0);
        assert!(c.max_active > 100);
        assert!(c.preemptive_pruning);
    }

    #[test]
    fn builder_accepts_valid_configs() {
        let c = DecodeConfig::builder()
            .beam(9.0)
            .max_active(64)
            .preemptive_pruning(false)
            .olt_entries(4096)
            .kernel(DecodeKernel::Legacy)
            .build()
            .unwrap();
        assert_eq!(c.beam, 9.0);
        assert_eq!(c.max_active, 64);
        assert!(!c.preemptive_pruning);
        assert_eq!(c.olt_entries, 4096);
        assert_eq!(c.kernel, DecodeKernel::Legacy);
        assert_eq!(c.kernel.name(), "legacy");
        // The feature-flag default picks a kernel; both stay valid.
        assert!(DecodeConfig::builder()
            .kernel(DecodeKernel::Soa)
            .build()
            .is_ok());
        // Defaults pass unmodified.
        assert_eq!(
            DecodeConfig::builder().build().unwrap(),
            DecodeConfig::default()
        );
        // usize::MAX disables the cap and is valid.
        assert!(DecodeConfig::builder()
            .max_active(usize::MAX)
            .build()
            .is_ok());
        // OLT 0 = disabled is valid.
        assert!(DecodeConfig::builder().olt_entries(0).build().is_ok());
    }

    #[test]
    fn builder_validates_pipeline_knobs() {
        let c = DecodeConfig::builder()
            .scorer_batch(32)
            .max_search_lag(0)
            .build()
            .unwrap();
        assert_eq!(c.scorer_batch, 32);
        assert_eq!(c.max_search_lag, 0);
        // Edge of the accepted ranges.
        assert!(DecodeConfig::builder()
            .scorer_batch(MAX_SCORER_BATCH)
            .max_search_lag(MAX_SEARCH_LAG)
            .build()
            .is_ok());
        assert_eq!(
            DecodeConfig::builder().scorer_batch(0).build(),
            Err(ConfigError::ZeroScorerBatch)
        );
        assert_eq!(
            DecodeConfig::builder()
                .scorer_batch(MAX_SCORER_BATCH + 1)
                .build(),
            Err(ConfigError::ScorerBatchTooLarge(MAX_SCORER_BATCH + 1))
        );
        assert_eq!(
            DecodeConfig::builder()
                .max_search_lag(MAX_SEARCH_LAG + 1)
                .build(),
            Err(ConfigError::SearchLagTooLarge(MAX_SEARCH_LAG + 1))
        );
        // Every new error renders a message naming the field.
        assert!(ConfigError::ZeroScorerBatch
            .to_string()
            .contains("scorer_batch"));
        assert!(ConfigError::ScorerBatchTooLarge(9_999)
            .to_string()
            .contains("9999"));
        assert!(ConfigError::SearchLagTooLarge(9_999)
            .to_string()
            .contains("max_search_lag"));
    }

    #[test]
    fn builder_rejects_invalid_configs() {
        assert_eq!(
            DecodeConfig::builder().beam(0.0).build(),
            Err(ConfigError::BadBeam(0.0))
        );
        assert_eq!(
            DecodeConfig::builder().beam(-3.0).build(),
            Err(ConfigError::BadBeam(-3.0))
        );
        assert!(matches!(
            DecodeConfig::builder().beam(f32::NAN).build(),
            Err(ConfigError::BadBeam(_))
        ));
        assert!(matches!(
            DecodeConfig::builder().beam(f32::INFINITY).build(),
            Err(ConfigError::BadBeam(_))
        ));
        assert_eq!(
            DecodeConfig::builder().max_active(0).build(),
            Err(ConfigError::ZeroMaxActive)
        );
        assert_eq!(
            DecodeConfig::builder().olt_entries(100).build(),
            Err(ConfigError::OltNotPowerOfTwo(100))
        );
        assert_eq!(
            DecodeConfig::builder().lattice_beam(0.0).build(),
            Err(ConfigError::BadLatticeBeam(0.0))
        );
        assert!(matches!(
            DecodeConfig::builder().lattice_beam(f32::INFINITY).build(),
            Err(ConfigError::BadLatticeBeam(_))
        ));
        assert!(matches!(
            DecodeConfig::builder().lattice_beam(f32::NAN).build(),
            Err(ConfigError::BadLatticeBeam(_))
        ));
    }

    #[test]
    fn derived_ratios() {
        let s = DecodeStats {
            frames: 10,
            total_active: 250,
            lm_lookups: 5,
            lm_fetches: 40,
            ..Default::default()
        };
        assert_eq!(s.mean_active(), 25.0);
        assert_eq!(s.fetches_per_lookup(), 8.0);
        let empty = DecodeStats::default();
        assert_eq!(empty.mean_active(), 0.0);
        assert_eq!(empty.fetches_per_lookup(), 0.0);
    }

    #[test]
    fn incomplete_result_detected() {
        let r = DecodeResult {
            words: vec![],
            word_frames: vec![],
            cost: f32::INFINITY,
            stats: DecodeStats::default(),
        };
        assert!(!r.is_complete());
        assert!(r.word_spans().is_empty());
    }

    #[test]
    fn word_spans_partition_the_frames() {
        let r = DecodeResult {
            words: vec![7, 3, 9],
            word_frames: vec![4, 5, 11],
            cost: 1.0,
            stats: DecodeStats::default(),
        };
        assert_eq!(r.word_spans(), vec![(7, 0, 4), (3, 5, 5), (9, 6, 11)]);
    }
}
