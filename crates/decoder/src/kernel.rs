//! The SoA frame kernel ([`crate::config::DecodeKernel::Soa`]).
//!
//! Same search, different loop shape. The legacy kernel walks the
//! token map entry-by-entry, re-hashing on every relaxation; this
//! kernel exploits the struct-of-arrays [`TokenStore`] layout so the
//! hot phases run over contiguous lanes:
//!
//! * **Threshold** — the beam compare runs over the `costs` lane as a
//!   branch-free fold producing a packed `u64` survivor bitmask
//!   (bit = `!(cost > thr)`, so NaN handling is bit-identical to the
//!   legacy `cost > thr` prune), which the stable-Rust autovectorizer
//!   turns into SIMD compares.
//! * **BatchProbe** — survivor indices are compacted out of the mask
//!   with `trailing_zeros`/`b &= b - 1`, then a tight prefetch loop
//!   issues [`AmSource::prefetch_state`]/[`LmSource::prefetch_state`]
//!   hints over the whole probe buffer before any expansion work. The
//!   hints are contents-neutral: true reordered OLT probing would
//!   reorder install/evict decisions and break trace identity, so the
//!   batched pass warms caches while [`crate::otf::lm_walk`] — shared
//!   verbatim with the legacy kernel — performs every probe/install in
//!   the original order (see DESIGN.md §13).
//! * **Expand** — each survivor's arcs replay from the decoded-arc
//!   staging arena ([`crate::scratch::ArcStage`]): the first visit to
//!   an AM state unpacks its compressed arc stream once into a flat
//!   slice, and every later visit — HMM self-loops revisit the same
//!   states frame after frame — is a contiguous walk that skips the
//!   bit-stream decode entirely. The walk software-pipelines: while
//!   survivor `j` expands, survivor `j + 1`'s AM/LM state records are
//!   prefetched. Relaxations use a fused probe-then-commit
//!   ([`TokenStore::probe`] + [`TokenStore::insert_probed`]): one hash
//!   walk where the legacy path pays two.
//! * **Closure** — the epsilon worklist holds dense entry indices
//!   (`u32`) instead of keys, so a pop re-reads a token with a lane
//!   load instead of a hash walk; the epsilon filter scans the staged
//!   slice rather than re-decoding the state's arcs on every pop.
//!
//! Every [`TraceSink`] event and every [`DecodeStats`] counter is
//! emitted at exactly the same point as the legacy kernel — the two
//! are differential-tested for bit identity (transcripts, cost bits,
//! stats, ordered event streams) by the `soa_identity` proptests and
//! verify-matrix check. The only sink calls unique to this module are
//! the [`KernelPhase`] timers, which are observability-only and
//! explicitly excluded from trace identity (the recorder ignores
//! them).

use std::time::Instant;

use unfold_wfst::{Label, Semiring, StateId, TropicalWeight, EPSILON};

use crate::config::{DecodeConfig, DecodeStats};
use crate::lattice::{Lattice, COMPACT_ENTRY_BYTES};
use crate::olt::SoftOlt;
use crate::otf::{lm_walk, split, token_key};
use crate::scratch::{ArcStage, SessionScratch, WorkScratch};
use crate::search::{prune_threshold_store, Token, TokenStore};
use crate::sources::{addr, AmSource, Fetch, LmSource};
use crate::trace::{DecodeStage, KernelPhase, TraceSink};

/// Reports a finished kernel phase to sinks that asked for timing.
#[inline]
fn tick(sink: &mut dyn TraceSink, t0: Option<Instant>, phase: KernelPhase) {
    if let Some(t0) = t0 {
        sink.kernel_phase(phase, t0.elapsed().as_nanos() as u64);
    }
}

/// SoA counterpart of [`crate::otf::expand_frame`]'s legacy body:
/// identical event stream and stats, lane-oriented inner loops.
#[allow(clippy::too_many_arguments)]
pub(crate) fn expand_frame_soa<A: AmSource + ?Sized, L: LmSource + ?Sized>(
    config: &DecodeConfig,
    am: &A,
    lm: &L,
    session: &mut SessionScratch,
    work: &mut WorkScratch,
    costs: &[f32],
    t: usize,
    sink: &mut dyn TraceSink,
    stats: &mut DecodeStats,
) {
    work.ensure_validated(am, lm, costs.len());
    work.bind_arc_stage(am);
    session.lattice.advance_pop();
    sink.frame_start(t, session.cur.len());
    stats.frames += 1;
    stats.max_active = stats.max_active.max(session.cur.len());
    stats.total_active += session.cur.len() as u64;
    let timing = sink.wants_kernel_timing();

    sink.stage_enter(DecodeStage::Pruning);
    let t0 = timing.then(Instant::now);
    let thr = prune_threshold_store(
        &session.cur,
        config.beam,
        config.max_active,
        &mut work.prune_costs,
    );
    // Beam compare over the contiguous cost lane into packed flags.
    // `!(c > thr)` (not `c <= thr`) so a NaN cost survives exactly as
    // it does under the legacy `cost > thr` prune test.
    let n = session.cur.len();
    {
        let cs = session.cur.costs();
        let mask = &mut work.survivor_mask;
        mask.clear();
        mask.resize(n.div_ceil(64), 0);
        for (w, chunk) in mask.iter_mut().zip(cs.chunks(64)) {
            let mut bits = 0u64;
            for (i, &c) in chunk.iter().enumerate() {
                // Negated on purpose: `!(c > thr)` (not `c <= thr`) so
                // NaN costs survive exactly as under the legacy prune.
                #[allow(clippy::neg_cmp_op_on_partial_ord)]
                let survives = !(c > thr);
                bits |= u64::from(survives) << i;
            }
            *w = bits;
        }
    }
    // Compact set bits into the probe buffer of surviving entry
    // indices: `trailing_zeros` finds the next survivor, `b &= b - 1`
    // clears it.
    work.survivors.clear();
    for (wi, &w) in work.survivor_mask.iter().enumerate() {
        let mut b = w;
        while b != 0 {
            work.survivors.push((wi * 64) as u32 + b.trailing_zeros());
            b &= b - 1;
        }
    }
    stats.tokens_pruned += (n - work.survivors.len()) as u64;
    tick(sink, t0, KernelPhase::Threshold);
    sink.stage_switch(DecodeStage::Pruning, DecodeStage::ArcExpansion);
    session.next.clear();
    let mut next_best = f32::INFINITY;

    // Batched probe pass: issue prefetch hints for every survivor's
    // AM and LM state records before expansion touches any of them.
    let t0 = timing.then(Instant::now);
    {
        let keys = session.cur.keys_slice();
        for &e in work.survivors.iter() {
            let (am_s, lm_s) = split(keys[e as usize]);
            am.prefetch_state(am_s);
            lm.prefetch_state(lm_s);
        }
    }
    tick(sink, t0, KernelPhase::BatchProbe);

    let t0 = timing.then(Instant::now);
    {
        let cur = &session.cur;
        let next = &mut session.next;
        let olt = &mut work.olt;
        let bias = &mut session.bias_cache;
        let probes = &mut work.probes;
        let stage = &mut work.arc_stage;
        let lattice = &mut session.lattice;
        let survivors = &work.survivors;
        let keys = cur.keys_slice();
        for (j, &e) in survivors.iter().enumerate() {
            // Software pipelining: warm survivor j+1's state records
            // while survivor j expands.
            if let Some(&ne) = survivors.get(j + 1) {
                let (am_n, lm_n) = split(keys[ne as usize]);
                am.prefetch_state(am_n);
                lm.prefetch_state(lm_n);
            }
            let (k, tok) = cur.pair_at(e as usize);
            let (am_s, lm_s) = split(k);
            sink.state_fetch(am.state_addr(am_s));
            // Replay the state's decoded arcs from the staging arena
            // (first visit stages them): a contiguous slice walk where
            // the legacy kernel re-unpacks the compressed bit stream.
            for &v in stage.arcs(am, am_s) {
                sink.am_arc_fetch(v.addr, v.bytes);
                let arc = v.arc;
                if arc.ilabel == EPSILON {
                    continue; // non-emitting: closure phase
                }
                sink.acoustic_fetch(t, arc.ilabel);
                // Validated once per model in `ensure_validated`.
                debug_assert!(
                    (arc.ilabel as usize) <= costs.len(),
                    "pdf {} beyond the {}-wide score row",
                    arc.ilabel,
                    costs.len()
                );
                // Same tropical ⊗-chain as the legacy kernel: identical
                // left-to-right f32 additions, identical bits.
                let base = TropicalWeight::from_cost(tok.cost)
                    .times(TropicalWeight::from_cost(arc.weight))
                    .times(TropicalWeight::from_cost(costs[arc.ilabel as usize - 1]))
                    .value();
                stats.tokens_created += 1;
                if base > next_best + config.beam {
                    stats.tokens_pruned += 1;
                    continue;
                }
                let (lm_next, cost, word) = if arc.olabel != EPSILON {
                    let walk_thr = if config.preemptive_pruning {
                        next_best + config.beam
                    } else {
                        f32::INFINITY
                    };
                    match lm_walk(
                        lm, lm_s, arc.olabel, base, walk_thr, olt, bias, probes, sink, stats,
                    ) {
                        Some((dest, c)) => (dest, c, arc.olabel),
                        None => continue,
                    }
                } else {
                    (lm_s, base, EPSILON)
                };
                next_best = TropicalWeight::from_cost(cost)
                    .plus(TropicalWeight::from_cost(next_best))
                    .value();
                lattice.record_emit(k, token_key(arc.nextstate, lm_next), word, cost);
                relax_soa(
                    next,
                    token_key(arc.nextstate, lm_next),
                    cost,
                    tok.lat,
                    word,
                    t as u32,
                    lattice,
                    sink,
                );
            }
        }
    }
    tick(sink, t0, KernelPhase::Expand);

    let t0 = timing.then(Instant::now);
    epsilon_closure_soa(
        config,
        am,
        lm,
        &mut session.next,
        &mut work.worklist_idx,
        &mut work.eps_local,
        &mut work.probes,
        &mut work.olt,
        &mut session.bias_cache,
        &mut work.arc_stage,
        &mut session.lattice,
        t as u32,
        next_best + config.beam,
        sink,
        stats,
    );
    tick(sink, t0, KernelPhase::Closure);
    sink.stage_exit(DecodeStage::ArcExpansion);

    // Frame-end fold over the contiguous cost lane. The `is_finite`
    // conditional replicates the legacy fold exactly: it differs from
    // a plain `max` when +inf costs appear, and the FrameEnd event is
    // part of the recorded identity.
    let mut best = TropicalWeight::zero();
    let mut worst = f32::INFINITY;
    for &c in session.next.costs() {
        best = TropicalWeight::from_cost(c).plus(best);
        worst = if worst.is_finite() { worst.max(c) } else { c };
    }
    sink.frame_end(t, session.next.len(), best.value(), worst);
    std::mem::swap(&mut session.cur, &mut session.next);
}

/// SoA counterpart of [`crate::otf::epsilon_closure`]: the worklist
/// holds dense entry indices, so a pop re-reads the (possibly
/// improved) token with a lane load instead of a hash walk. Entry
/// indices are stable under insertion (nothing is ever removed
/// mid-closure), and `0..len` enumerates exactly `tokens.keys()` in
/// insertion order, so the LIFO processing order — and therefore the
/// event stream — matches the legacy closure token for token.
#[allow(clippy::too_many_arguments)]
pub(crate) fn epsilon_closure_soa<A: AmSource + ?Sized, L: LmSource + ?Sized>(
    config: &DecodeConfig,
    am: &A,
    lm: &L,
    tokens: &mut TokenStore,
    worklist: &mut Vec<u32>,
    eps_local: &mut Vec<(StateId, f32, Label)>,
    probes: &mut Vec<Fetch>,
    olt: &mut SoftOlt,
    bias: &mut SoftOlt,
    stage: &mut ArcStage,
    lattice: &mut Lattice,
    frame: u32,
    thr: f32,
    sink: &mut dyn TraceSink,
    stats: &mut DecodeStats,
) {
    worklist.clear();
    worklist.extend(0..tokens.len() as u32);
    let mut guard = 0u64;
    while let Some(e) = worklist.pop() {
        guard += 1;
        assert!(
            guard < 100_000_000,
            "epsilon closure diverged: negative cycle?"
        );
        let (k, tok) = tokens.pair_at(e as usize);
        if tok.cost > thr {
            continue;
        }
        let (am_s, lm_s) = split(k);
        eps_local.clear();
        // Replay from the staging arena: the epsilon filter scans a
        // contiguous decoded slice instead of re-unpacking the state's
        // compressed arc stream on every worklist pop.
        for v in stage.arcs(am, am_s) {
            if v.arc.ilabel != EPSILON {
                continue;
            }
            sink.am_arc_fetch(v.addr, v.bytes);
            stats.epsilon_expansions += 1;
            eps_local.push((
                v.arc.nextstate,
                TropicalWeight::from_cost(tok.cost)
                    .times(TropicalWeight::from_cost(v.arc.weight))
                    .value(),
                v.arc.olabel,
            ));
        }
        for &(am_next, base, word) in eps_local.iter() {
            stats.tokens_created += 1;
            let (lm_next, cost, out_word) = if word != EPSILON {
                let walk_thr = if config.preemptive_pruning {
                    thr
                } else {
                    f32::INFINITY
                };
                match lm_walk(
                    lm, lm_s, word, base, walk_thr, olt, bias, probes, sink, stats,
                ) {
                    Some((dest, c)) => (dest, c, word),
                    None => continue,
                }
            } else {
                (lm_s, base, EPSILON)
            };
            lattice.record_eps(k, token_key(am_next, lm_next), out_word, cost);
            if let Some(ne) = relax_soa(
                tokens,
                token_key(am_next, lm_next),
                cost,
                tok.lat,
                out_word,
                frame,
                lattice,
                sink,
            ) {
                worklist.push(ne);
            }
        }
    }
}

/// Fused relaxation: one [`TokenStore::probe`] hash walk serves both
/// the improvement test and the commit (the legacy `relax` pays a
/// `get` walk and then an `insert` walk). Emits the identical event
/// sequence — `token_store` (for word-bearing arcs) then
/// `hash_insert`, only on improvement — and returns the improved
/// token's dense entry index for the closure worklist.
#[allow(clippy::too_many_arguments)]
fn relax_soa(
    map: &mut TokenStore,
    k: u64,
    cost: f32,
    parent_lat: u32,
    word: Label,
    frame: u32,
    lattice: &mut Lattice,
    sink: &mut dyn TraceSink,
) -> Option<u32> {
    let p = map.probe(k);
    let existing = p.entry();
    if let Some(e) = existing {
        // Negated on purpose — same predicate shape as the legacy
        // `cost < existing.cost` test, NaN behaviour included.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        let keep_existing = !(cost < map.costs()[e as usize]);
        if keep_existing {
            return None;
        }
    }
    let lat = if word != EPSILON {
        let idx = lattice.push(parent_lat, word, frame);
        sink.token_store(
            addr::TOKEN_BASE + u64::from(idx) * u64::from(COMPACT_ENTRY_BYTES),
            COMPACT_ENTRY_BYTES,
        );
        idx
    } else {
        parent_lat
    };
    sink.hash_insert(k);
    match existing {
        Some(e) => {
            map.update_entry(e, Token { cost, lat });
            Some(e)
        }
        None => {
            map.insert_probed(p, k, Token { cost, lat });
            Some(map.len() as u32 - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::{DecodeConfig, DecodeKernel};
    use crate::otf::OtfDecoder;
    use crate::record::TraceRecorder;
    use crate::trace::NullSink;
    use proptest::prelude::*;
    use std::sync::OnceLock;
    use unfold_am::{build_am, synthesize_utterance, HmmTopology, Lexicon, NoiseModel};
    use unfold_lm::{lm_to_wfst, CorpusSpec, DiscountConfig, NGramModel};
    use unfold_wfst::Wfst;

    fn models() -> &'static (Lexicon, Wfst, Wfst) {
        static MODELS: OnceLock<(Lexicon, Wfst, Wfst)> = OnceLock::new();
        MODELS.get_or_init(|| {
            let lex = Lexicon::generate(60, 25, 4);
            let am = build_am(&lex, HmmTopology::Kaldi3State);
            let spec = CorpusSpec {
                vocab_size: 60,
                num_sentences: 400,
                ..Default::default()
            };
            let model = NGramModel::train(&spec.generate(5), 60, DiscountConfig::default());
            (lex, am.fst, lm_to_wfst(&model))
        })
    }

    /// Decodes with both kernels and asserts full bit identity:
    /// transcript, cost bits, every stats counter, and the ordered
    /// trace-event stream (the strongest observable equivalence the
    /// decoder exposes — it implies identical OLT install/evict order).
    fn assert_kernels_identical(config: &DecodeConfig, scores: &unfold_am::AcousticScores) {
        let (_, am, lm) = models();
        let legacy_cfg = config
            .to_builder()
            .kernel(DecodeKernel::Legacy)
            .build()
            .unwrap();
        let soa_cfg = config
            .to_builder()
            .kernel(DecodeKernel::Soa)
            .build()
            .unwrap();
        let mut rec_legacy = TraceRecorder::default();
        let mut rec_soa = TraceRecorder::default();
        let a = OtfDecoder::new(legacy_cfg).decode(am, lm, scores, &mut rec_legacy);
        let b = OtfDecoder::new(soa_cfg).decode(am, lm, scores, &mut rec_soa);
        assert_eq!(a.words, b.words, "transcripts diverged");
        assert_eq!(a.cost.to_bits(), b.cost.to_bits(), "cost bits diverged");
        assert_eq!(a.stats, b.stats, "stats diverged");
        assert_eq!(
            rec_legacy.events(),
            rec_soa.events(),
            "ordered trace-event streams diverged"
        );
    }

    #[test]
    fn soa_matches_legacy_on_clean_decode() {
        let (lex, _, _) = models();
        let utt = synthesize_utterance(
            &[7, 3, 15, 2],
            lex,
            HmmTopology::Kaldi3State,
            &NoiseModel::clean(),
            11,
        );
        assert_kernels_identical(&DecodeConfig::default(), &utt.scores);
    }

    #[test]
    fn soa_matches_legacy_under_tight_beam_and_olt() {
        let (lex, _, _) = models();
        // Rare words + noise: back-off walks, preemptive prunes, OLT
        // evictions all fire on this workload.
        let noise = NoiseModel {
            noise_sigma: 1.3,
            ..NoiseModel::default()
        };
        let utt = synthesize_utterance(
            &[55, 58, 33, 59, 41, 60],
            lex,
            HmmTopology::Kaldi3State,
            &noise,
            23,
        );
        for olt in [0usize, 64] {
            for max_active in [40usize, usize::MAX] {
                let cfg = DecodeConfig::builder()
                    .beam(8.0)
                    .max_active(max_active)
                    .olt_entries(olt)
                    .preemptive_pruning(true)
                    .build()
                    .unwrap();
                assert_kernels_identical(&cfg, &utt.scores);
            }
        }
    }

    #[test]
    fn soa_kernel_emits_phase_timing_when_asked() {
        use crate::metrics::MetricsSink;
        use crate::trace::KernelPhase;
        let (lex, am, lm) = models();
        let utt = synthesize_utterance(
            &[2, 4, 6],
            lex,
            HmmTopology::Kaldi3State,
            &NoiseModel::clean(),
            3,
        );
        let cfg = DecodeConfig::builder()
            .kernel(DecodeKernel::Soa)
            .build()
            .unwrap();
        let mut sink = MetricsSink::new();
        let _ = OtfDecoder::new(cfg).decode(am, lm, &utt.scores, &mut sink);
        for phase in KernelPhase::ALL {
            assert!(
                sink.kernel_phases().count(phase.index()) > 0,
                "phase {} never reported",
                phase.name()
            );
        }
        // A sink that doesn't ask (NullSink) costs no phase clock reads
        // and, crucially, changes nothing about the decode itself.
        let cfg2 = DecodeConfig::builder()
            .kernel(DecodeKernel::Soa)
            .build()
            .unwrap();
        let timed = OtfDecoder::new(cfg2).decode(am, lm, &utt.scores, &mut NullSink);
        assert!(timed.is_complete());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// The `soa_identity` contract: across a randomized grid of
        /// utterances × beam × olt_entries × max_active × preemptive
        /// pruning, both kernels are bit-identical in transcript, cost,
        /// stats, and ordered trace events.
        #[test]
        fn soa_identity_under_config_grid(
            words in proptest::collection::vec(1u32..=60, 1..6),
            seed in 0u64..1000,
            noise_sigma in 0.0f32..1.5,
            beam in 5.0f32..16.0,
            olt_idx in 0usize..3,
            max_active_idx in 0usize..3,
            preemptive in any::<bool>(),
        ) {
            let (lex, _, _) = models();
            let noise = NoiseModel { noise_sigma, ..NoiseModel::default() };
            let utt = synthesize_utterance(
                &words, lex, HmmTopology::Kaldi3State, &noise, seed,
            );
            let olt = [0usize, 64, 256][olt_idx];
            let max_active = [30usize, 200, usize::MAX][max_active_idx];
            let cfg = DecodeConfig::builder()
                .beam(beam)
                .max_active(max_active)
                .olt_entries(olt)
                .preemptive_pruning(preemptive)
                .build()
                .unwrap();
            assert_kernels_identical(&cfg, &utt.scores);
        }
    }
}
