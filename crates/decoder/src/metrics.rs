//! Observability sinks: [`MetricsSink`] turns the decode-time event
//! stream into `unfold-obs` metrics; [`TeeSink`] fans one stream out to
//! several sinks so metrics can ride alongside the accelerator
//! simulator in a single decode.
//!
//! Design rule: observability listens, it never steers. A sink receives
//! the same events whatever it does with them, so swapping `NullSink`
//! for `MetricsSink` (or a `TeeSink` of both) cannot change a
//! [`crate::DecodeResult`] — the `sink_independence` integration test
//! pins this.

use unfold_obs::{
    ns_per_raw_tick, raw_ticks, Collector, FrameRing, FrameTelemetry, Histogram, MetricsRegistry,
    PhaseAccum, StageId, StageTimer,
};
use unfold_wfst::{Label, StateId};

use crate::trace::{DecodeStage, KernelPhase, TraceSink};

/// Running totals MetricsSink keeps as plain fields (hash-free event
/// handling; they become registry counters only at export).
#[derive(Debug, Default, Clone, Copy)]
struct Totals {
    frames: u64,
    state_fetches: u64,
    am_arc_fetches: u64,
    am_arc_bytes: u64,
    lm_lookups: u64,
    lm_arc_fetches: u64,
    lm_arc_bytes: u64,
    backoff_hops: u64,
    acoustic_fetches: u64,
    hash_inserts: u64,
    lattice_bytes: u64,
    preemptive_prunes: u64,
    olt_probes: u64,
    olt_hits: u64,
    olt_installs: u64,
    olt_evictions: u64,
}

/// Lane names for the kernel-phase accumulator, in
/// [`KernelPhase::index`] order.
const KERNEL_PHASE_NAMES: [&str; KernelPhase::ALL.len()] = {
    let mut names = [""; KernelPhase::ALL.len()];
    let mut i = 0;
    while i < KernelPhase::ALL.len() {
        names[i] = KernelPhase::ALL[i].name();
        i += 1;
    }
    names
};

/// State of the frame currently being decoded.
#[derive(Debug, Clone, Copy)]
struct OpenFrame {
    frame: usize,
    active_in: usize,
    /// Raw clock ticks at frame start (see [`unfold_obs::raw_ticks`]).
    started_ticks: u64,
    /// Per-frame-delta counters snapshotted at frame start.
    lm_lookups: u64,
    backoff_hops: u64,
    preemptive_prunes: u64,
    olt_probes: u64,
    olt_hits: u64,
}

/// A [`TraceSink`] that aggregates the event stream into decode-time
/// metrics: per-stage exclusive wall time, per-frame telemetry, and
/// run-level counters/histograms. Export with
/// [`MetricsSink::to_jsonl`] / [`MetricsSink::summary_markdown`] or
/// grab the full [`Collector`] via [`MetricsSink::collector`].
#[derive(Debug)]
pub struct MetricsSink {
    stages: StageTimer,
    stage_ids: [StageId; DecodeStage::ALL.len()],
    frames: FrameRing,
    frame_ns: Histogram,
    active_tokens: Histogram,
    totals: Totals,
    kernel_phases: PhaseAccum,
    seq: u64,
    open: Option<OpenFrame>,
    /// Tick→ns rate cached at construction (calibration is per-process,
    /// so reading it once here avoids an atomic probe per frame).
    ns_per_tick: f64,
}

impl Default for MetricsSink {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsSink {
    /// A sink with the default frame-ring capacity.
    pub fn new() -> Self {
        Self::with_frame_capacity(unfold_obs::frame::DEFAULT_FRAME_CAPACITY)
    }

    /// A sink retaining at most `frame_capacity` most-recent frames.
    pub fn with_frame_capacity(frame_capacity: usize) -> Self {
        // Calibrate the tick clock now, outside any timed region, so the
        // first frame doesn't pay for it.
        let ns_per_tick = ns_per_raw_tick();
        let mut stages = StageTimer::new();
        let stage_ids = core::array::from_fn(|i| stages.intern(DecodeStage::ALL[i].name()));
        MetricsSink {
            stages,
            stage_ids,
            frames: FrameRing::with_capacity(frame_capacity),
            frame_ns: Histogram::new(),
            active_tokens: Histogram::new(),
            totals: Totals::default(),
            kernel_phases: PhaseAccum::new(&KERNEL_PHASE_NAMES),
            seq: 0,
            open: None,
            ns_per_tick,
        }
    }

    /// The stage timer, for callers that time phases the search itself
    /// cannot see (e.g. acoustic scoring happens before `decode`).
    pub fn stages_mut(&mut self) -> &mut StageTimer {
        &mut self.stages
    }

    /// Retained per-frame telemetry.
    pub fn frames(&self) -> &FrameRing {
        &self.frames
    }

    /// Mutable frame telemetry — used to attach simulator cache
    /// snapshots after a traced run.
    pub fn frames_mut(&mut self) -> &mut FrameRing {
        &mut self.frames
    }

    fn registry(&self) -> MetricsRegistry {
        let mut r = MetricsRegistry::new();
        let t = &self.totals;
        r.counter("frames").add(t.frames);
        r.counter("state_fetches").add(t.state_fetches);
        r.counter("am_arc_fetches").add(t.am_arc_fetches);
        r.counter("am_arc_bytes").add(t.am_arc_bytes);
        r.counter("lm_lookups").add(t.lm_lookups);
        r.counter("lm_arc_fetches").add(t.lm_arc_fetches);
        r.counter("lm_arc_bytes").add(t.lm_arc_bytes);
        r.counter("backoff_hops").add(t.backoff_hops);
        r.counter("acoustic_fetches").add(t.acoustic_fetches);
        r.counter("hash_inserts").add(t.hash_inserts);
        r.counter("lattice_bytes").add(t.lattice_bytes);
        r.counter("preemptive_prunes").add(t.preemptive_prunes);
        r.counter("olt_probes").add(t.olt_probes);
        r.counter("olt_hits").add(t.olt_hits);
        r.counter("olt_installs").add(t.olt_installs);
        r.counter("olt_evictions").add(t.olt_evictions);
        if self.kernel_phases.any_recorded() {
            for stat in self.kernel_phases.stats() {
                r.counter(&format!("kernel_{}_ns", stat.name))
                    .add(stat.total_ns);
                r.counter(&format!("kernel_{}_calls", stat.name))
                    .add(stat.count);
            }
        }
        *r.histogram("frame_ns") = self.frame_ns.clone();
        *r.histogram("active_tokens") = self.active_tokens.clone();
        r
    }

    /// Snapshots everything into an `unfold-obs` [`Collector`].
    pub fn collector(&self) -> Collector {
        Collector {
            registry: self.registry(),
            stages: self.stages.clone(),
            frames: self.frames.clone(),
        }
    }

    /// Per-frame latency histogram (nanoseconds).
    pub fn frame_latency(&self) -> &Histogram {
        &self.frame_ns
    }

    /// Accumulated SoA kernel-phase timing (all lanes zero when the
    /// decode ran the legacy kernel, which emits no phase samples).
    pub fn kernel_phases(&self) -> &PhaseAccum {
        &self.kernel_phases
    }

    /// Serializes the run as JSONL (spans, frames, run totals).
    pub fn to_jsonl(&self) -> String {
        self.collector().to_jsonl()
    }

    /// Renders the run as a markdown summary.
    pub fn summary_markdown(&self) -> String {
        self.collector().summary_markdown()
    }
}

impl TraceSink for MetricsSink {
    // Frame boundaries piggyback on the stage timer's clock reads where
    // they can: the decoders bracket every frame's work with stage
    // transitions, so the tick recorded at the nearest transition is at
    // most a few bookkeeping instructions away from the true boundary.
    // Only when no transition has happened inside the frame (a decoder
    // that emits frames but no stages) does the sink read the clock
    // itself. In streaming use, time the caller spends between `push`
    // calls lands on the next frame's wall time.
    fn frame_start(&mut self, frame: usize, active: usize) {
        self.totals.frames += 1;
        let started_ticks = if frame == 0 {
            raw_ticks()
        } else {
            self.stages.last_tick_raw().unwrap_or_else(raw_ticks)
        };
        self.open = Some(OpenFrame {
            frame,
            active_in: active,
            started_ticks,
            lm_lookups: self.totals.lm_lookups,
            backoff_hops: self.totals.backoff_hops,
            preemptive_prunes: self.totals.preemptive_prunes,
            olt_probes: self.totals.olt_probes,
            olt_hits: self.totals.olt_hits,
        });
    }

    fn frame_end(&mut self, frame: usize, active: usize, best_cost: f32, worst_cost: f32) {
        let Some(open) = self.open.take() else { return };
        debug_assert_eq!(open.frame, frame, "unbalanced frame_start/frame_end");
        let end_ticks = match self.stages.last_tick_raw() {
            Some(t) if t > open.started_ticks => t,
            _ => raw_ticks(),
        };
        let wall_ns =
            (end_ticks.saturating_sub(open.started_ticks) as f64 * self.ns_per_tick) as u64;
        self.frame_ns.record(wall_ns);
        self.active_tokens.record(active as u64);
        let t = &self.totals;
        self.frames.push(FrameTelemetry {
            seq: self.seq,
            frame,
            active_in: open.active_in,
            active_out: active,
            best_cost,
            worst_cost,
            lm_lookups: t.lm_lookups - open.lm_lookups,
            backoff_hops: t.backoff_hops - open.backoff_hops,
            preemptive_prunes: t.preemptive_prunes - open.preemptive_prunes,
            olt_probes: t.olt_probes - open.olt_probes,
            olt_hits: t.olt_hits - open.olt_hits,
            wall_ns,
            cache: None,
        });
        self.seq += 1;
    }

    fn stage_enter(&mut self, stage: DecodeStage) {
        self.stages.enter_id(self.stage_ids[stage.index()]);
    }

    fn stage_exit(&mut self, stage: DecodeStage) {
        self.stages.exit_id(self.stage_ids[stage.index()]);
    }

    fn stage_switch(&mut self, from: DecodeStage, to: DecodeStage) {
        self.stages
            .switch_id(self.stage_ids[from.index()], self.stage_ids[to.index()]);
    }

    fn state_fetch(&mut self, _addr: u64) {
        self.totals.state_fetches += 1;
    }

    fn am_arc_fetch(&mut self, _addr: u64, bytes: u32) {
        self.totals.am_arc_fetches += 1;
        self.totals.am_arc_bytes += u64::from(bytes);
    }

    fn lm_lookup(&mut self, _lm_state: StateId, _word: Label) {
        self.totals.lm_lookups += 1;
    }

    fn lm_arc_fetch(&mut self, _addr: u64, bytes: u32) {
        self.totals.lm_arc_fetches += 1;
        self.totals.lm_arc_bytes += u64::from(bytes);
    }

    fn lm_resolved(&mut self, _lm_state: StateId, _word: Label, backoff_hops: u32) {
        self.totals.backoff_hops += u64::from(backoff_hops);
    }

    fn acoustic_fetch(&mut self, _frame: usize, _pdf: Label) {
        self.totals.acoustic_fetches += 1;
    }

    fn hash_insert(&mut self, _key: u64) {
        self.totals.hash_inserts += 1;
    }

    fn token_store(&mut self, _addr: u64, bytes: u32) {
        self.totals.lattice_bytes += u64::from(bytes);
    }

    fn preemptive_prune(&mut self) {
        self.totals.preemptive_prunes += 1;
    }

    fn olt_probe(&mut self, _lm_state: StateId, _word: Label, hit: bool) {
        self.totals.olt_probes += 1;
        if hit {
            self.totals.olt_hits += 1;
        }
    }

    fn olt_install(&mut self, evicted: bool) {
        self.totals.olt_installs += 1;
        if evicted {
            self.totals.olt_evictions += 1;
        }
    }

    fn wants_kernel_timing(&self) -> bool {
        true
    }

    fn kernel_phase(&mut self, phase: KernelPhase, ns: u64) {
        self.kernel_phases.add(phase.index(), ns);
    }
}

/// Fans one event stream out to every wrapped sink, in order. Lets a
/// single decode feed the accelerator simulator and a [`MetricsSink`]
/// (or any other combination) at once.
pub struct TeeSink<'a> {
    sinks: Vec<&'a mut dyn TraceSink>,
}

impl<'a> TeeSink<'a> {
    /// Builds a tee over the given sinks.
    pub fn new(sinks: Vec<&'a mut dyn TraceSink>) -> Self {
        TeeSink { sinks }
    }

    /// Number of fan-out targets.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// Whether the tee has no targets.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl TraceSink for TeeSink<'_> {
    fn frame_start(&mut self, frame: usize, active: usize) {
        for s in &mut self.sinks {
            s.frame_start(frame, active);
        }
    }
    fn frame_end(&mut self, frame: usize, active: usize, best_cost: f32, worst_cost: f32) {
        for s in &mut self.sinks {
            s.frame_end(frame, active, best_cost, worst_cost);
        }
    }
    fn stage_enter(&mut self, stage: DecodeStage) {
        for s in &mut self.sinks {
            s.stage_enter(stage);
        }
    }
    fn stage_exit(&mut self, stage: DecodeStage) {
        for s in &mut self.sinks {
            s.stage_exit(stage);
        }
    }
    fn stage_switch(&mut self, from: DecodeStage, to: DecodeStage) {
        for s in &mut self.sinks {
            s.stage_switch(from, to);
        }
    }
    fn state_fetch(&mut self, addr: u64) {
        for s in &mut self.sinks {
            s.state_fetch(addr);
        }
    }
    fn am_arc_fetch(&mut self, addr: u64, bytes: u32) {
        for s in &mut self.sinks {
            s.am_arc_fetch(addr, bytes);
        }
    }
    fn lm_lookup(&mut self, lm_state: StateId, word: Label) {
        for s in &mut self.sinks {
            s.lm_lookup(lm_state, word);
        }
    }
    fn lm_arc_fetch(&mut self, addr: u64, bytes: u32) {
        for s in &mut self.sinks {
            s.lm_arc_fetch(addr, bytes);
        }
    }
    fn lm_resolved(&mut self, lm_state: StateId, word: Label, backoff_hops: u32) {
        for s in &mut self.sinks {
            s.lm_resolved(lm_state, word, backoff_hops);
        }
    }
    fn acoustic_fetch(&mut self, frame: usize, pdf: Label) {
        for s in &mut self.sinks {
            s.acoustic_fetch(frame, pdf);
        }
    }
    fn hash_insert(&mut self, key: u64) {
        for s in &mut self.sinks {
            s.hash_insert(key);
        }
    }
    fn token_store(&mut self, addr: u64, bytes: u32) {
        for s in &mut self.sinks {
            s.token_store(addr, bytes);
        }
    }
    fn preemptive_prune(&mut self) {
        for s in &mut self.sinks {
            s.preemptive_prune();
        }
    }
    fn olt_probe(&mut self, lm_state: StateId, word: Label, hit: bool) {
        for s in &mut self.sinks {
            s.olt_probe(lm_state, word, hit);
        }
    }
    fn olt_install(&mut self, evicted: bool) {
        for s in &mut self.sinks {
            s.olt_install(evicted);
        }
    }

    fn wants_kernel_timing(&self) -> bool {
        self.sinks.iter().any(|s| s.wants_kernel_timing())
    }

    fn kernel_phase(&mut self, phase: KernelPhase, ns: u64) {
        for s in &mut self.sinks {
            s.kernel_phase(phase, ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::CountingSink;
    use unfold_obs::ObsRecord;

    fn drive(sink: &mut dyn TraceSink) {
        sink.frame_start(0, 3);
        sink.stage_enter(DecodeStage::Pruning);
        sink.stage_exit(DecodeStage::Pruning);
        sink.stage_enter(DecodeStage::ArcExpansion);
        sink.state_fetch(0x40);
        sink.am_arc_fetch(0x100, 16);
        sink.acoustic_fetch(0, 2);
        sink.stage_enter(DecodeStage::LmLookup);
        sink.lm_lookup(1, 7);
        sink.olt_probe(1, 7, false);
        sink.lm_arc_fetch(0xC000_0000, 6);
        sink.lm_resolved(1, 7, 2);
        sink.olt_install(false);
        sink.lm_lookup(1, 7);
        sink.olt_probe(1, 7, true);
        sink.lm_resolved(1, 7, 0);
        sink.stage_exit(DecodeStage::LmLookup);
        sink.hash_insert(42);
        sink.token_store(0, 8);
        sink.preemptive_prune();
        sink.stage_exit(DecodeStage::ArcExpansion);
        sink.frame_end(0, 5, 1.25, 9.5);
    }

    #[test]
    fn metrics_sink_builds_frame_telemetry() {
        let mut m = MetricsSink::new();
        drive(&mut m);
        assert_eq!(m.frames().total_seen(), 1);
        let f = m.frames().iter().next().expect("one frame");
        assert_eq!(f.active_in, 3);
        assert_eq!(f.active_out, 5);
        assert_eq!(f.best_cost, 1.25);
        assert_eq!(f.worst_cost, 9.5);
        assert_eq!(f.lm_lookups, 2);
        assert_eq!(f.backoff_hops, 2);
        assert_eq!(f.preemptive_prunes, 1);
        assert_eq!(f.olt_probes, 2);
        assert_eq!(f.olt_hits, 1);
        assert_eq!(m.frame_latency().count(), 1);
    }

    #[test]
    fn metrics_sink_stage_report_is_balanced() {
        let mut m = MetricsSink::new();
        drive(&mut m);
        let report = m.collector().stages.report();
        let names: Vec<&str> = report.iter().map(|r| r.name.as_str()).collect();
        assert!(names.contains(&"pruning"));
        assert!(names.contains(&"arc_expansion"));
        assert!(names.contains(&"lm_lookup"));
        assert!(m.collector().stages.is_balanced());
    }

    #[test]
    fn metrics_sink_exports_parseable_jsonl() {
        let mut m = MetricsSink::new();
        drive(&mut m);
        let jsonl = m.to_jsonl();
        let mut frames = 0;
        let mut runs = 0;
        for line in jsonl.lines() {
            match ObsRecord::parse_line(line).expect("valid JSONL") {
                ObsRecord::Frame(_) => frames += 1,
                ObsRecord::Run(_) => runs += 1,
                ObsRecord::Span(_) => {}
                r @ (ObsRecord::SessionSpan(_) | ObsRecord::Flight(_)) => {
                    panic!("decoder telemetry emitted a serve-side record: {r:?}")
                }
            }
        }
        assert_eq!(frames, 1);
        assert_eq!(runs, 1);
    }

    #[test]
    fn tee_fans_out_to_all_sinks() {
        let mut counting = CountingSink::default();
        let mut metrics = MetricsSink::new();
        {
            let mut tee = TeeSink::new(vec![&mut counting, &mut metrics]);
            assert_eq!(tee.len(), 2);
            drive(&mut tee);
        }
        assert_eq!(counting.frames, 1);
        assert_eq!(counting.total_backoff_hops, 2);
        assert_eq!(metrics.frames().total_seen(), 1);
    }

    #[test]
    fn kernel_phase_timing_is_aggregated() {
        let mut m = MetricsSink::new();
        assert!(m.wants_kernel_timing());
        m.kernel_phase(KernelPhase::Threshold, 100);
        m.kernel_phase(KernelPhase::Expand, 50);
        m.kernel_phase(KernelPhase::Threshold, 20);
        let p = m.kernel_phases();
        assert_eq!(p.total_ns(KernelPhase::Threshold.index()), 120);
        assert_eq!(p.count(KernelPhase::Threshold.index()), 2);
        assert_eq!(p.total_ns(KernelPhase::Expand.index()), 50);
        assert!(m.to_jsonl().contains("kernel_threshold_ns"));
    }

    #[test]
    fn legacy_runs_export_no_kernel_phase_counters() {
        let mut m = MetricsSink::new();
        drive(&mut m);
        assert!(!m.kernel_phases().any_recorded());
        assert!(!m.to_jsonl().contains("kernel_threshold_ns"));
    }

    #[test]
    fn tee_wants_kernel_timing_if_any_member_does() {
        let mut counting = CountingSink::default();
        {
            let tee = TeeSink::new(vec![&mut counting]);
            assert!(!tee.wants_kernel_timing());
        }
        let mut metrics = MetricsSink::new();
        let mut tee = TeeSink::new(vec![&mut counting, &mut metrics]);
        assert!(tee.wants_kernel_timing());
        tee.kernel_phase(KernelPhase::Closure, 9);
        drop(tee);
        assert_eq!(
            metrics.kernel_phases().count(KernelPhase::Closure.index()),
            1
        );
    }

    #[test]
    fn frame_end_without_start_is_ignored() {
        let mut m = MetricsSink::new();
        m.frame_end(0, 1, 0.0, 0.0);
        assert_eq!(m.frames().total_seen(), 0);
    }
}
