//! Word error rate (Table 6's metric): Levenshtein alignment of the
//! hypothesis against the reference, WER = (S + D + I) / N.

use unfold_lm::WordId;

/// Alignment counts from scoring one or more utterances.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WerReport {
    /// Substitutions.
    pub substitutions: u64,
    /// Deletions (reference words missing from the hypothesis).
    pub deletions: u64,
    /// Insertions (hypothesis words not in the reference).
    pub insertions: u64,
    /// Reference word count.
    pub ref_words: u64,
}

impl WerReport {
    /// Word error rate in percent.
    ///
    /// # Panics
    /// Panics if no reference words have been scored.
    pub fn percent(&self) -> f64 {
        assert!(self.ref_words > 0, "percent: no reference words scored");
        100.0 * (self.substitutions + self.deletions + self.insertions) as f64
            / self.ref_words as f64
    }

    /// Accumulates another report (for corpus-level WER).
    pub fn accumulate(&mut self, other: WerReport) {
        self.substitutions += other.substitutions;
        self.deletions += other.deletions;
        self.insertions += other.insertions;
        self.ref_words += other.ref_words;
    }
}

/// One step of a reference/hypothesis alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlignOp {
    /// Reference and hypothesis words match.
    Correct(WordId),
    /// `reference` word was recognized as a different `hypothesis` word.
    Substitute {
        /// The word that was spoken.
        reference: WordId,
        /// The word that was recognized.
        hypothesis: WordId,
    },
    /// A reference word was missed entirely.
    Delete(WordId),
    /// A hypothesis word has no reference counterpart.
    Insert(WordId),
}

/// Produces the full edit alignment between `reference` and `hyp`
/// (minimum-error path; ties broken substitution-first). The error
/// counts of the alignment equal [`wer`]'s.
pub fn align(reference: &[WordId], hyp: &[WordId]) -> Vec<AlignOp> {
    let n = reference.len();
    let m = hyp.len();
    let mut cost = vec![0u32; (n + 1) * (m + 1)];
    let idx = |i: usize, j: usize| i * (m + 1) + j;
    for i in 1..=n {
        cost[idx(i, 0)] = i as u32;
    }
    for j in 1..=m {
        cost[idx(0, j)] = j as u32;
    }
    for i in 1..=n {
        for j in 1..=m {
            let hit = u32::from(reference[i - 1] != hyp[j - 1]);
            cost[idx(i, j)] = (cost[idx(i - 1, j - 1)] + hit)
                .min(cost[idx(i - 1, j)] + 1)
                .min(cost[idx(i, j - 1)] + 1);
        }
    }
    // Backtrace, preferring diagonal moves.
    let mut ops = Vec::new();
    let (mut i, mut j) = (n, m);
    while i > 0 || j > 0 {
        if i > 0 && j > 0 {
            let diag = cost[idx(i - 1, j - 1)] + u32::from(reference[i - 1] != hyp[j - 1]);
            if diag == cost[idx(i, j)] {
                ops.push(if reference[i - 1] == hyp[j - 1] {
                    AlignOp::Correct(reference[i - 1])
                } else {
                    AlignOp::Substitute {
                        reference: reference[i - 1],
                        hypothesis: hyp[j - 1],
                    }
                });
                i -= 1;
                j -= 1;
                continue;
            }
        }
        if i > 0 && cost[idx(i - 1, j)] + 1 == cost[idx(i, j)] {
            ops.push(AlignOp::Delete(reference[i - 1]));
            i -= 1;
        } else {
            ops.push(AlignOp::Insert(hyp[j - 1]));
            j -= 1;
        }
    }
    ops.reverse();
    ops
}

/// Oracle report: the best (minimum-error) hypothesis among
/// `candidates` — how lattice/n-best quality is measured (an oracle WER
/// far below the 1-best WER means rescoring has headroom).
///
/// # Panics
/// Panics if `candidates` is empty.
pub fn oracle_wer(reference: &[WordId], candidates: &[Vec<WordId>]) -> WerReport {
    assert!(!candidates.is_empty(), "oracle_wer: no candidates");
    candidates
        .iter()
        .map(|c| wer(reference, c))
        .min_by_key(|r| r.substitutions + r.deletions + r.insertions)
        .expect("non-empty")
}

/// Aligns `hyp` against `reference` with unit costs.
///
/// ```
/// use unfold_decoder::wer;
/// let r = wer(&[1, 2, 3], &[1, 9, 3]);
/// assert_eq!(r.substitutions, 1);
/// assert!((r.percent() - 33.33).abs() < 0.01);
/// ```
pub fn wer(reference: &[WordId], hyp: &[WordId]) -> WerReport {
    let n = reference.len();
    let m = hyp.len();
    // dp[i][j] = (cost, subs, dels, ins) for ref[..i] vs hyp[..j].
    #[derive(Clone, Copy)]
    struct Cell {
        cost: u32,
        s: u32,
        d: u32,
        i: u32,
    }
    let mut dp = vec![
        Cell {
            cost: 0,
            s: 0,
            d: 0,
            i: 0
        };
        (n + 1) * (m + 1)
    ];
    let idx = |i: usize, j: usize| i * (m + 1) + j;
    for i in 1..=n {
        dp[idx(i, 0)] = Cell {
            cost: i as u32,
            s: 0,
            d: i as u32,
            i: 0,
        };
    }
    for j in 1..=m {
        dp[idx(0, j)] = Cell {
            cost: j as u32,
            s: 0,
            d: 0,
            i: j as u32,
        };
    }
    for i in 1..=n {
        for j in 1..=m {
            let hit = reference[i - 1] == hyp[j - 1];
            let diag = dp[idx(i - 1, j - 1)];
            let sub = Cell {
                cost: diag.cost + u32::from(!hit),
                s: diag.s + u32::from(!hit),
                d: diag.d,
                i: diag.i,
            };
            let up = dp[idx(i - 1, j)];
            let del = Cell {
                cost: up.cost + 1,
                s: up.s,
                d: up.d + 1,
                i: up.i,
            };
            let left = dp[idx(i, j - 1)];
            let ins = Cell {
                cost: left.cost + 1,
                s: left.s,
                d: left.d,
                i: left.i + 1,
            };
            let best = if sub.cost <= del.cost && sub.cost <= ins.cost {
                sub
            } else if del.cost <= ins.cost {
                del
            } else {
                ins
            };
            dp[idx(i, j)] = best;
        }
    }
    let f = dp[idx(n, m)];
    WerReport {
        substitutions: u64::from(f.s),
        deletions: u64::from(f.d),
        insertions: u64::from(f.i),
        ref_words: n as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_match_is_zero() {
        let r = wer(&[1, 2, 3], &[1, 2, 3]);
        assert_eq!(r.percent(), 0.0);
    }

    #[test]
    fn pure_deletion() {
        let r = wer(&[1, 2, 3, 4], &[1, 4]);
        assert_eq!(r.deletions, 2);
        assert_eq!(r.substitutions, 0);
        assert_eq!(r.percent(), 50.0);
    }

    #[test]
    fn pure_insertion() {
        let r = wer(&[1, 2], &[1, 9, 9, 2]);
        assert_eq!(r.insertions, 2);
        assert_eq!(r.percent(), 100.0);
    }

    #[test]
    fn empty_hypothesis_is_all_deletions() {
        let r = wer(&[5, 6, 7], &[]);
        assert_eq!(r.deletions, 3);
        assert_eq!(r.percent(), 100.0);
    }

    #[test]
    fn accumulate_pools_counts() {
        let mut total = WerReport::default();
        total.accumulate(wer(&[1, 2], &[1, 2]));
        total.accumulate(wer(&[3, 4], &[3, 9]));
        assert_eq!(total.ref_words, 4);
        assert_eq!(total.percent(), 25.0);
    }

    #[test]
    #[should_panic(expected = "no reference words")]
    fn percent_without_reference_panics() {
        let _ = WerReport::default().percent();
    }

    #[test]
    fn oracle_picks_the_best_candidate() {
        let reference = [1u32, 2, 3];
        let candidates = vec![vec![9, 9, 9], vec![1, 2, 9], vec![5]];
        let r = oracle_wer(&reference, &candidates);
        assert_eq!(r.substitutions + r.deletions + r.insertions, 1);
    }

    #[test]
    #[should_panic(expected = "no candidates")]
    fn oracle_requires_candidates() {
        let _ = oracle_wer(&[1], &[]);
    }

    #[test]
    fn alignment_classifies_each_op() {
        // Examples with a unique minimal alignment.
        assert_eq!(
            align(&[1, 2, 3], &[1, 3]),
            vec![AlignOp::Correct(1), AlignOp::Delete(2), AlignOp::Correct(3)]
        );
        assert_eq!(
            align(&[1, 2], &[1, 9, 2]),
            vec![AlignOp::Correct(1), AlignOp::Insert(9), AlignOp::Correct(2)]
        );
        assert_eq!(
            align(&[7], &[8]),
            vec![AlignOp::Substitute {
                reference: 7,
                hypothesis: 8
            }]
        );
    }

    proptest! {
        #[test]
        fn alignment_error_count_matches_wer(r in proptest::collection::vec(1u32..6, 1..12),
                                             h in proptest::collection::vec(1u32..6, 0..12)) {
            let ops = align(&r, &h);
            let errs = ops.iter().filter(|o| !matches!(o, AlignOp::Correct(_))).count() as u64;
            let rep = wer(&r, &h);
            prop_assert_eq!(errs, rep.substitutions + rep.deletions + rep.insertions);
            // The alignment covers both sequences exactly.
            let ref_len = ops.iter().filter(|o| !matches!(o, AlignOp::Insert(_))).count();
            let hyp_len = ops.iter().filter(|o| !matches!(o, AlignOp::Delete(_))).count();
            prop_assert_eq!(ref_len, r.len());
            prop_assert_eq!(hyp_len, h.len());
        }

        #[test]
        fn error_counts_match_cost(r in proptest::collection::vec(1u32..6, 0..12),
                                   h in proptest::collection::vec(1u32..6, 0..12)) {
            prop_assume!(!r.is_empty());
            let rep = wer(&r, &h);
            // Total errors bounded by max(len) and at least |len diff|.
            let errs = rep.substitutions + rep.deletions + rep.insertions;
            prop_assert!(errs <= r.len().max(h.len()) as u64);
            prop_assert!(errs >= (r.len() as i64 - h.len() as i64).unsigned_abs());
        }

        #[test]
        fn symmetric_total_errors(r in proptest::collection::vec(1u32..6, 1..10),
                                  h in proptest::collection::vec(1u32..6, 1..10)) {
            let a = wer(&r, &h);
            let b = wer(&h, &r);
            let ea = a.substitutions + a.deletions + a.insertions;
            let eb = b.substitutions + b.deletions + b.insertions;
            // The total distance is symmetric; the S/D/I split is not
            // (tie-breaking picks different alignments).
            prop_assert_eq!(ea, eb);
        }
    }
}
