//! Shared beam-search machinery: deterministic hash maps, pruning
//! thresholds, and token relaxation used by both decoders.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Deterministic FNV-style hasher so decode traces (and therefore
/// simulator results) are reproducible across runs — `RandomState`
/// would randomize token iteration order.
#[derive(Debug, Clone, Copy, Default)]
pub struct DetHasher(u64);

impl Hasher for DetHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        const PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut h = if self.0 == 0 {
            0xCBF2_9CE4_8422_2325
        } else {
            self.0
        };
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
        self.0 = h;
    }

    fn write_u64(&mut self, v: u64) {
        // Strong single-shot mix (splitmix64 finalizer).
        let mut z = v.wrapping_add(self.0).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.0 = z ^ (z >> 31);
    }

    fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }
}

/// Deterministic hash map keyed by token keys.
pub type TokenMap<K, V> = HashMap<K, V, BuildHasherDefault<DetHasher>>;

/// A live search hypothesis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Token {
    /// Accumulated path cost.
    pub cost: f32,
    /// Index of the hypothesis's last word in the lattice
    /// ([`crate::lattice::LATTICE_ROOT`] if no word yet).
    pub lat: u32,
}

/// Computes the pruning threshold for a token population: `best + beam`,
/// tightened to the `max_active`-th smallest cost when the population
/// exceeds `max_active` (histogram-style pruning).
pub fn prune_threshold<K>(tokens: &TokenMap<K, Token>, beam: f32, max_active: usize) -> f32
where
    K: std::hash::Hash + Eq,
{
    if tokens.is_empty() {
        return f32::INFINITY;
    }
    let best = tokens
        .values()
        .map(|t| t.cost)
        .fold(f32::INFINITY, f32::min);
    let mut thr = best + beam;
    if tokens.len() > max_active {
        let mut costs: Vec<f32> = tokens.values().map(|t| t.cost).collect();
        let (_, nth, _) =
            costs.select_nth_unstable_by(max_active - 1, |a, b| a.partial_cmp(b).unwrap());
        thr = thr.min(*nth);
    }
    thr
}

/// [`prune_threshold`] over a [`TokenStore`], staging the cost copy in
/// a caller-owned buffer so the per-frame histogram selection performs
/// no allocation in steady state.
pub fn prune_threshold_store(
    tokens: &TokenStore,
    beam: f32,
    max_active: usize,
    costs: &mut Vec<f32>,
) -> f32 {
    if tokens.is_empty() {
        return f32::INFINITY;
    }
    let best = tokens
        .values()
        .map(|t| t.cost)
        .fold(f32::INFINITY, f32::min);
    let mut thr = best + beam;
    if tokens.len() > max_active {
        costs.clear();
        costs.extend(tokens.values().map(|t| t.cost));
        let (_, nth, _) =
            costs.select_nth_unstable_by(max_active - 1, |a, b| a.partial_cmp(b).unwrap());
        thr = thr.min(*nth);
    }
    thr
}

const EMPTY_SLOT: u32 = u32::MAX;

#[inline]
fn splitmix64(v: u64) -> u64 {
    let mut z = v.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The live token population of one frame: a dense entry array plus an
/// open-addressing index over it.
///
/// The dense array makes iteration order *insertion order* — a property
/// `HashMap` lacks: its iteration order depends on table capacity, so a
/// map reused across frames (larger capacity than a fresh one) would
/// visit tokens differently and perturb traces, stats, and ultimately
/// pruning decisions. Insertion order is capacity-independent, which is
/// what lets [`crate::DecodeScratch`] be reused across frames,
/// utterances, and worker threads while keeping decode output
/// bit-identical to a from-scratch run.
#[derive(Debug, Clone, Default)]
pub struct TokenStore {
    entries: Vec<(u64, Token)>,
    /// Power-of-two slot array holding indices into `entries`
    /// ([`EMPTY_SLOT`] marks a free slot).
    index: Vec<u32>,
}

impl TokenStore {
    /// Number of live tokens.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every token but keeps both allocations.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.index.fill(EMPTY_SLOT);
    }

    /// `(key, token)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &(u64, Token)> {
        self.entries.iter()
    }

    /// Tokens in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Token> {
        self.entries.iter().map(|(_, t)| t)
    }

    /// Keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.entries.iter().map(|(k, _)| *k)
    }

    /// The token stored under `key`, if any.
    #[inline]
    pub fn get(&self, key: u64) -> Option<Token> {
        if self.index.is_empty() {
            return None;
        }
        let mask = self.index.len() - 1;
        let mut slot = splitmix64(key) as usize & mask;
        loop {
            match self.index[slot] {
                EMPTY_SLOT => return None,
                e => {
                    let (k, t) = self.entries[e as usize];
                    if k == key {
                        return Some(t);
                    }
                }
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Inserts or overwrites `key`. An overwrite keeps the entry's
    /// original insertion position.
    pub fn insert(&mut self, key: u64, tok: Token) {
        if self.entries.len() * 2 >= self.index.len() {
            self.grow();
        }
        let mask = self.index.len() - 1;
        let mut slot = splitmix64(key) as usize & mask;
        loop {
            match self.index[slot] {
                EMPTY_SLOT => {
                    self.index[slot] = self.entries.len() as u32;
                    self.entries.push((key, tok));
                    return;
                }
                e => {
                    if self.entries[e as usize].0 == key {
                        self.entries[e as usize].1 = tok;
                        return;
                    }
                }
            }
            slot = (slot + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let cap = (self.index.len() * 2).max(64);
        self.index.clear();
        self.index.resize(cap, EMPTY_SLOT);
        let mask = cap - 1;
        for (i, &(k, _)) in self.entries.iter().enumerate() {
            let mut slot = splitmix64(k) as usize & mask;
            while self.index[slot] != EMPTY_SLOT {
                slot = (slot + 1) & mask;
            }
            self.index[slot] = i as u32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::LATTICE_ROOT;

    fn map_of(costs: &[f32]) -> TokenMap<u32, Token> {
        let mut m = TokenMap::default();
        for (i, &c) in costs.iter().enumerate() {
            m.insert(
                i as u32,
                Token {
                    cost: c,
                    lat: LATTICE_ROOT,
                },
            );
        }
        m
    }

    #[test]
    fn beam_threshold() {
        let m = map_of(&[5.0, 3.0, 9.0]);
        assert_eq!(prune_threshold(&m, 2.0, 100), 5.0);
    }

    #[test]
    fn histogram_tightens_threshold() {
        let m = map_of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        // Beam alone allows everything; max_active=2 keeps the 2 best.
        let thr = prune_threshold(&m, 100.0, 2);
        assert_eq!(thr, 2.0);
    }

    #[test]
    fn empty_population() {
        let m: TokenMap<u32, Token> = TokenMap::default();
        assert_eq!(prune_threshold(&m, 5.0, 10), f32::INFINITY);
    }

    #[test]
    fn hasher_is_deterministic() {
        use std::hash::Hash;
        let mut a = DetHasher::default();
        let mut b = DetHasher::default();
        42u64.hash(&mut a);
        42u64.hash(&mut b);
        assert_eq!(a.finish(), b.finish());
        let mut c = DetHasher::default();
        43u64.hash(&mut c);
        assert_ne!(a.finish(), c.finish());
    }
}
