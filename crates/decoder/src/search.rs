//! Shared beam-search machinery: deterministic hash maps, pruning
//! thresholds, and token relaxation used by both decoders.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Deterministic FNV-style hasher so decode traces (and therefore
/// simulator results) are reproducible across runs — `RandomState`
/// would randomize token iteration order.
#[derive(Debug, Clone, Copy, Default)]
pub struct DetHasher(u64);

impl Hasher for DetHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        const PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut h = if self.0 == 0 {
            0xCBF2_9CE4_8422_2325
        } else {
            self.0
        };
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
        self.0 = h;
    }

    fn write_u64(&mut self, v: u64) {
        // Strong single-shot mix (splitmix64 finalizer).
        let mut z = v.wrapping_add(self.0).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.0 = z ^ (z >> 31);
    }

    fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }
}

/// Deterministic hash map keyed by token keys.
pub type TokenMap<K, V> = HashMap<K, V, BuildHasherDefault<DetHasher>>;

/// A live search hypothesis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Token {
    /// Accumulated path cost.
    pub cost: f32,
    /// Index of the hypothesis's last word in the lattice
    /// ([`crate::lattice::LATTICE_ROOT`] if no word yet).
    pub lat: u32,
}

/// Computes the pruning threshold for a token population: `best + beam`,
/// tightened to the `max_active`-th smallest cost when the population
/// exceeds `max_active` (histogram-style pruning).
pub fn prune_threshold<K>(tokens: &TokenMap<K, Token>, beam: f32, max_active: usize) -> f32
where
    K: std::hash::Hash + Eq,
{
    if tokens.is_empty() {
        return f32::INFINITY;
    }
    let best = tokens
        .values()
        .map(|t| t.cost)
        .fold(f32::INFINITY, f32::min);
    let mut thr = best + beam;
    if tokens.len() > max_active {
        let mut costs: Vec<f32> = tokens.values().map(|t| t.cost).collect();
        let (_, nth, _) =
            costs.select_nth_unstable_by(max_active - 1, |a, b| a.partial_cmp(b).unwrap());
        thr = thr.min(*nth);
    }
    thr
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::LATTICE_ROOT;

    fn map_of(costs: &[f32]) -> TokenMap<u32, Token> {
        let mut m = TokenMap::default();
        for (i, &c) in costs.iter().enumerate() {
            m.insert(
                i as u32,
                Token {
                    cost: c,
                    lat: LATTICE_ROOT,
                },
            );
        }
        m
    }

    #[test]
    fn beam_threshold() {
        let m = map_of(&[5.0, 3.0, 9.0]);
        assert_eq!(prune_threshold(&m, 2.0, 100), 5.0);
    }

    #[test]
    fn histogram_tightens_threshold() {
        let m = map_of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        // Beam alone allows everything; max_active=2 keeps the 2 best.
        let thr = prune_threshold(&m, 100.0, 2);
        assert_eq!(thr, 2.0);
    }

    #[test]
    fn empty_population() {
        let m: TokenMap<u32, Token> = TokenMap::default();
        assert_eq!(prune_threshold(&m, 5.0, 10), f32::INFINITY);
    }

    #[test]
    fn hasher_is_deterministic() {
        use std::hash::Hash;
        let mut a = DetHasher::default();
        let mut b = DetHasher::default();
        42u64.hash(&mut a);
        42u64.hash(&mut b);
        assert_eq!(a.finish(), b.finish());
        let mut c = DetHasher::default();
        43u64.hash(&mut c);
        assert_ne!(a.finish(), c.finish());
    }
}
