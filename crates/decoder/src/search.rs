//! Shared beam-search machinery: deterministic hash maps, pruning
//! thresholds, and token relaxation used by both decoders.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use unfold_wfst::{Semiring, TropicalWeight};

/// Deterministic FNV-style hasher so decode traces (and therefore
/// simulator results) are reproducible across runs — `RandomState`
/// would randomize token iteration order.
#[derive(Debug, Clone, Copy, Default)]
pub struct DetHasher(u64);

impl Hasher for DetHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        const PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut h = if self.0 == 0 {
            0xCBF2_9CE4_8422_2325
        } else {
            self.0
        };
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
        self.0 = h;
    }

    fn write_u64(&mut self, v: u64) {
        // Strong single-shot mix (splitmix64 finalizer).
        let mut z = v.wrapping_add(self.0).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.0 = z ^ (z >> 31);
    }

    fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }
}

/// Deterministic hash map keyed by token keys.
pub type TokenMap<K, V> = HashMap<K, V, BuildHasherDefault<DetHasher>>;

/// A live search hypothesis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Token {
    /// Accumulated path cost.
    pub cost: f32,
    /// Index of the hypothesis's last word in the lattice
    /// ([`crate::lattice::LATTICE_ROOT`] if no word yet).
    pub lat: u32,
}

/// Computes the pruning threshold for a token population: `best + beam`,
/// tightened to the `max_active`-th smallest cost when the population
/// exceeds `max_active` (histogram-style pruning).
pub fn prune_threshold<K>(tokens: &TokenMap<K, Token>, beam: f32, max_active: usize) -> f32
where
    K: std::hash::Hash + Eq,
{
    if tokens.is_empty() {
        return f32::INFINITY;
    }
    // Tropical fold: `plus` keeps the better hypothesis, `times` extends
    // it by the beam. Bit-identical to the bare f32 min/add it replaces
    // (`from_cost(c).plus(acc)` keeps `acc` for NaN costs, exactly like
    // the `c < acc` predicate did).
    let best = tokens.values().fold(TropicalWeight::zero(), |acc, t| {
        TropicalWeight::from_cost(t.cost).plus(acc)
    });
    let mut thr = best.times(TropicalWeight::from_cost(beam)).value();
    if tokens.len() > max_active {
        let mut costs: Vec<f32> = tokens.values().map(|t| t.cost).collect();
        let (_, nth, _) =
            costs.select_nth_unstable_by(max_active - 1, |a, b| a.partial_cmp(b).unwrap());
        thr = thr.min(*nth);
    }
    thr
}

/// [`prune_threshold`] over a [`TokenStore`], staging the cost copy in
/// a caller-owned buffer so the per-frame histogram selection performs
/// no allocation in steady state.
///
/// The SoA store exposes its costs as one contiguous `f32` slice, so
/// the best-cost fold is a straight-line slice reduction the
/// autovectorizer handles, and the `max_active` staging copy is a
/// single `extend_from_slice` (memcpy) followed by an O(n)
/// `select_nth_unstable_by` — no per-token iterator plumbing.
pub fn prune_threshold_store(
    tokens: &TokenStore,
    beam: f32,
    max_active: usize,
    costs: &mut Vec<f32>,
) -> f32 {
    if tokens.is_empty() {
        return f32::INFINITY;
    }
    let cs = tokens.costs();
    // Same tropical fold as [`prune_threshold`], over the contiguous
    // cost lane; compiles to the identical branchless min reduction.
    let mut best = TropicalWeight::zero();
    for &c in cs {
        best = TropicalWeight::from_cost(c).plus(best);
    }
    let mut thr = best.times(TropicalWeight::from_cost(beam)).value();
    if cs.len() > max_active {
        costs.clear();
        costs.extend_from_slice(cs);
        let (_, nth, _) =
            costs.select_nth_unstable_by(max_active - 1, |a, b| a.partial_cmp(b).unwrap());
        thr = thr.min(*nth);
    }
    thr
}

const EMPTY_SLOT: u32 = u32::MAX;

#[inline]
fn splitmix64(v: u64) -> u64 {
    let mut z = v.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Outcome of one open-addressing walk over a [`TokenStore`] index:
/// either the dense position of an existing entry, or the slot where a
/// fresh key would land. Lets the decoder's relax path pay one hash
/// walk instead of the two a `get`-then-`insert` pair costs.
///
/// A `Probe` is only valid until the next mutation of the store it came
/// from; [`TokenStore::insert_probed`] re-walks defensively whenever
/// the index has grown in between.
#[derive(Debug, Clone, Copy)]
pub struct Probe {
    /// Index slot where the walk terminated.
    slot: u32,
    /// Dense entry position, or [`EMPTY_SLOT`] if the key is absent.
    entry: u32,
    /// Index capacity at probe time (detects growth before commit).
    cap: u32,
}

impl Probe {
    /// Dense entry position of the existing token, if the key was
    /// present.
    #[inline]
    pub fn entry(&self) -> Option<u32> {
        (self.entry != EMPTY_SLOT).then_some(self.entry)
    }
}

/// The live token population of one frame, laid out struct-of-arrays:
/// parallel dense lanes (`keys`, `costs`, `lats`) plus an
/// open-addressing index over them.
///
/// Each `keys` lane packs the token's two `u32` state ids —
/// `(am_state << 32) | lm_state` — into one `u64`, so the key compare
/// in the index walk is a single 64-bit op and the kernel can split
/// lanes with shifts instead of field loads. `costs` is one contiguous
/// `f32` slice, which is what lets the beam-threshold fold, the
/// prune-survivor scan, and the histogram staging copy in
/// [`prune_threshold_store`] compile to straight-line vectorizable
/// loops instead of pointer-chasing `(key, Token)` pairs.
///
/// The dense lanes make iteration order *insertion order* — a property
/// `HashMap` lacks: its iteration order depends on table capacity, so a
/// map reused across frames (larger capacity than a fresh one) would
/// visit tokens differently and perturb traces, stats, and ultimately
/// pruning decisions. Insertion order is capacity-independent, which is
/// what lets [`crate::DecodeScratch`] be reused across frames,
/// utterances, and worker threads while keeping decode output
/// bit-identical to a from-scratch run.
#[derive(Debug, Clone, Default)]
pub struct TokenStore {
    /// Packed `(am_state << 32) | lm_state` token keys, insertion order.
    keys: Vec<u64>,
    /// Accumulated path cost per token (parallel to `keys`).
    costs: Vec<f32>,
    /// Lattice backpointer per token (parallel to `keys`).
    lats: Vec<u32>,
    /// Power-of-two slot array holding dense positions
    /// ([`EMPTY_SLOT`] marks a free slot).
    index: Vec<u32>,
}

impl TokenStore {
    /// Number of live tokens.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the store holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Drops every token but keeps all four lane allocations.
    pub fn clear(&mut self) {
        self.keys.clear();
        self.costs.clear();
        self.lats.clear();
        self.index.fill(EMPTY_SLOT);
    }

    /// Packed token keys in insertion order.
    pub fn keys_slice(&self) -> &[u64] {
        &self.keys
    }

    /// Path costs in insertion order (parallel to
    /// [`TokenStore::keys_slice`]).
    pub fn costs(&self) -> &[f32] {
        &self.costs
    }

    /// Lattice backpointers in insertion order (parallel to
    /// [`TokenStore::keys_slice`]).
    pub fn lats(&self) -> &[u32] {
        &self.lats
    }

    /// The `(key, token)` pair at dense position `i`.
    #[inline]
    pub fn pair_at(&self, i: usize) -> (u64, Token) {
        (
            self.keys[i],
            Token {
                cost: self.costs[i],
                lat: self.lats[i],
            },
        )
    }

    /// `(key, token)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, Token)> + '_ {
        self.keys
            .iter()
            .zip(self.costs.iter().zip(self.lats.iter()))
            .map(|(&k, (&cost, &lat))| (k, Token { cost, lat }))
    }

    /// Tokens in insertion order.
    pub fn values(&self) -> impl Iterator<Item = Token> + '_ {
        self.costs
            .iter()
            .zip(self.lats.iter())
            .map(|(&cost, &lat)| Token { cost, lat })
    }

    /// Keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.keys.iter().copied()
    }

    /// One open-addressing walk for `key`: where it lives, or where it
    /// would go.
    #[inline]
    pub fn probe(&self, key: u64) -> Probe {
        if self.index.is_empty() {
            return Probe {
                slot: 0,
                entry: EMPTY_SLOT,
                cap: 0,
            };
        }
        let mask = self.index.len() - 1;
        let mut slot = splitmix64(key) as usize & mask;
        loop {
            match self.index[slot] {
                EMPTY_SLOT => {
                    return Probe {
                        slot: slot as u32,
                        entry: EMPTY_SLOT,
                        cap: self.index.len() as u32,
                    }
                }
                e => {
                    if self.keys[e as usize] == key {
                        return Probe {
                            slot: slot as u32,
                            entry: e,
                            cap: self.index.len() as u32,
                        };
                    }
                }
            }
            slot = (slot + 1) & mask;
        }
    }

    /// The token stored under `key`, if any.
    #[inline]
    pub fn get(&self, key: u64) -> Option<Token> {
        let e = self.probe(key).entry()?;
        Some(Token {
            cost: self.costs[e as usize],
            lat: self.lats[e as usize],
        })
    }

    /// Overwrites the token at dense position `entry` in place (the key
    /// keeps its insertion position; the index is untouched).
    #[inline]
    pub fn update_entry(&mut self, entry: u32, tok: Token) {
        self.costs[entry as usize] = tok.cost;
        self.lats[entry as usize] = tok.lat;
    }

    /// Inserts or overwrites `key`. An overwrite keeps the entry's
    /// original insertion position.
    pub fn insert(&mut self, key: u64, tok: Token) {
        let p = self.probe(key);
        self.insert_probed(p, key, tok);
    }

    /// Commits an insert-or-overwrite at a previously probed position,
    /// skipping the second index walk `get`-then-`insert` would pay.
    /// Falls back to a fresh walk if the index grew (or needs to grow)
    /// since the probe.
    pub fn insert_probed(&mut self, p: Probe, key: u64, tok: Token) {
        if let Some(e) = p.entry() {
            self.update_entry(e, tok);
            return;
        }
        if self.keys.len() * 2 >= self.index.len() {
            self.grow();
        }
        let mut slot = p.slot as usize;
        if self.index.len() as u32 != p.cap {
            // Index changed since the probe: re-walk to the free slot.
            let mask = self.index.len() - 1;
            slot = splitmix64(key) as usize & mask;
            while self.index[slot] != EMPTY_SLOT {
                slot = (slot + 1) & mask;
            }
        }
        debug_assert_eq!(self.index[slot], EMPTY_SLOT);
        self.index[slot] = self.keys.len() as u32;
        self.keys.push(key);
        self.costs.push(tok.cost);
        self.lats.push(tok.lat);
    }

    fn grow(&mut self) {
        let cap = (self.index.len() * 2).max(64);
        self.index.clear();
        self.index.resize(cap, EMPTY_SLOT);
        let mask = cap - 1;
        for (i, &k) in self.keys.iter().enumerate() {
            let mut slot = splitmix64(k) as usize & mask;
            while self.index[slot] != EMPTY_SLOT {
                slot = (slot + 1) & mask;
            }
            self.index[slot] = i as u32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::LATTICE_ROOT;

    fn map_of(costs: &[f32]) -> TokenMap<u32, Token> {
        let mut m = TokenMap::default();
        for (i, &c) in costs.iter().enumerate() {
            m.insert(
                i as u32,
                Token {
                    cost: c,
                    lat: LATTICE_ROOT,
                },
            );
        }
        m
    }

    #[test]
    fn beam_threshold() {
        let m = map_of(&[5.0, 3.0, 9.0]);
        assert_eq!(prune_threshold(&m, 2.0, 100), 5.0);
    }

    #[test]
    fn histogram_tightens_threshold() {
        let m = map_of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        // Beam alone allows everything; max_active=2 keeps the 2 best.
        let thr = prune_threshold(&m, 100.0, 2);
        assert_eq!(thr, 2.0);
    }

    #[test]
    fn empty_population() {
        let m: TokenMap<u32, Token> = TokenMap::default();
        assert_eq!(prune_threshold(&m, 5.0, 10), f32::INFINITY);
    }

    fn tok(cost: f32) -> Token {
        Token {
            cost,
            lat: LATTICE_ROOT,
        }
    }

    #[test]
    fn store_iterates_in_insertion_order_across_growth() {
        let mut s = TokenStore::default();
        // Far past the initial 64-slot index so grow() runs repeatedly.
        for i in 0..500u64 {
            s.insert(i * 0x9E37_79B9, tok(i as f32));
        }
        let keys: Vec<u64> = s.keys().collect();
        let want: Vec<u64> = (0..500u64).map(|i| i * 0x9E37_79B9).collect();
        assert_eq!(keys, want);
        assert_eq!(s.keys_slice(), &want[..]);
        for (i, (k, t)) in s.iter().enumerate() {
            assert_eq!((k, t), s.pair_at(i));
            assert_eq!(t.cost, i as f32);
        }
    }

    #[test]
    fn store_overwrite_keeps_position_and_lanes_stay_parallel() {
        let mut s = TokenStore::default();
        s.insert(10, tok(1.0));
        s.insert(20, tok(2.0));
        s.insert(10, Token { cost: 0.5, lat: 7 });
        assert_eq!(s.len(), 2);
        assert_eq!(s.keys_slice(), &[10, 20]);
        assert_eq!(s.costs(), &[0.5, 2.0]);
        assert_eq!(s.lats(), &[7, LATTICE_ROOT]);
        assert_eq!(s.get(10), Some(Token { cost: 0.5, lat: 7 }));
    }

    #[test]
    fn probe_then_commit_matches_get_then_insert() {
        let mut a = TokenStore::default();
        let mut b = TokenStore::default();
        // Deterministic pseudo-random key stream with repeats.
        let mut x = 0x1234_5678u64;
        for i in 0..300 {
            x = splitmix64(x);
            let key = x % 97;
            let t = tok(i as f32);
            // Path A: fused probe/commit (possibly via update_entry).
            let p = a.probe(key);
            match p.entry() {
                Some(e) => a.update_entry(e, t),
                None => a.insert_probed(p, key, t),
            }
            // Path B: classic insert.
            b.insert(key, t);
            assert_eq!(a.get(key), b.get(key));
        }
        assert_eq!(a.len(), b.len());
        let av: Vec<(u64, Token)> = a.iter().collect();
        let bv: Vec<(u64, Token)> = b.iter().collect();
        assert_eq!(av, bv);
    }

    #[test]
    fn stale_probe_is_safe_after_growth() {
        let mut s = TokenStore::default();
        let p = s.probe(999); // probed while index was empty
        for i in 0..100u64 {
            s.insert(i, tok(0.0));
        }
        s.insert_probed(p, 999, tok(3.0));
        assert_eq!(s.get(999), Some(tok(3.0)));
        assert_eq!(s.len(), 101);
    }

    #[test]
    fn clear_keeps_tokens_out_but_reuses_index() {
        let mut s = TokenStore::default();
        for i in 0..50u64 {
            s.insert(i, tok(0.0));
        }
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.get(3), None);
        s.insert(3, tok(1.0));
        assert_eq!(s.get(3), Some(tok(1.0)));
        assert_eq!(s.keys_slice(), &[3]);
    }

    #[test]
    fn hasher_is_deterministic() {
        use std::hash::Hash;
        let mut a = DetHasher::default();
        let mut b = DetHasher::default();
        42u64.hash(&mut a);
        42u64.hash(&mut b);
        assert_eq!(a.finish(), b.finish());
        let mut c = DetHasher::default();
        43u64.hash(&mut c);
        assert_ne!(a.finish(), c.finish());
    }
}
