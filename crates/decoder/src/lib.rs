#![warn(missing_docs)]

//! Viterbi beam-search decoders for the UNFOLD reproduction.
//!
//! Two functionally-equivalent decoders, mirroring the paper's two
//! systems:
//!
//! * [`FullyComposedDecoder`] — token-passing beam search over the
//!   offline-composed WFST (the Reza et al. baseline, §2),
//! * [`OtfDecoder`] — the on-the-fly decoder: each token pairs an AM
//!   state with an LM state; cross-word AM arcs trigger an LM lookup
//!   (binary search + back-off walk), optionally cut short by the
//!   paper's preemptive pruning (§3.3).
//!
//! Both decoders are generic over *sources* ([`sources`]) so the same
//! search runs against uncompressed [`unfold_wfst::Wfst`]s or the
//! bit-packed compressed models, and both emit a memory-access trace
//! through a [`TraceSink`] that the accelerator simulator replays.
//!
//! # Example
//!
//! ```
//! use unfold_am::{build_am, synthesize_utterance, HmmTopology, Lexicon, NoiseModel};
//! use unfold_lm::{lm_to_wfst, CorpusSpec, NGramModel};
//! use unfold_decoder::{DecodeConfig, OtfDecoder, NullSink};
//!
//! let lex = Lexicon::generate(50, 20, 1);
//! let am = build_am(&lex, HmmTopology::Kaldi3State);
//! let spec = CorpusSpec { vocab_size: 50, num_sentences: 200, ..Default::default() };
//! let model = NGramModel::train(&spec.generate(2), 50, Default::default());
//! let lm = lm_to_wfst(&model);
//!
//! let utt = synthesize_utterance(&[5, 9], &lex, HmmTopology::Kaldi3State, &NoiseModel::clean(), 3);
//! let decoder = OtfDecoder::new(DecodeConfig::default());
//! let result = decoder.decode(&am.fst, &lm, &utt.scores, &mut NullSink);
//! assert_eq!(result.words, vec![5, 9]);
//! ```

pub mod config;
pub mod full;
pub mod ingest;
pub(crate) mod kernel;
pub mod lattice;
pub mod metrics;
pub mod olt;
pub mod otf;
pub mod pipeline;
pub mod record;
pub mod scratch;
pub(crate) mod search;
pub mod sources;
pub mod streaming;
pub mod trace;
pub mod twopass;
pub mod wer;

pub use config::{
    ConfigError, DecodeConfig, DecodeConfigBuilder, DecodeKernel, DecodeResult, DecodeStats,
    MAX_SCORER_BATCH, MAX_SEARCH_LAG,
};
pub use full::FullyComposedDecoder;
pub use ingest::{
    AcousticScorer, FrameInput, GmmScorer, PrecomputedScorer, ScoreError, SessionIngest,
};
pub use lattice::{Lattice, LatticeArc, LatticeNode, WordHyp, WordLattice};
pub use metrics::{MetricsSink, TeeSink};
pub use olt::SoftOlt;
pub use otf::OtfDecoder;
pub use pipeline::decode_pipelined;
pub use record::{TraceEvent, TraceRecorder};
pub use scratch::{validate_models, DecodeScratch, SessionScratch, WorkScratch};
pub use sources::{
    addr, AmSource, ArcVisit, Fetch, LinearLm, LmResolution, LmSource, MAX_BACKOFF_HOPS,
};
pub use streaming::{OtfStream, StreamSession};
pub use trace::{CountingSink, DecodeStage, KernelPhase, NullSink, TraceSink};
pub use twopass::{LatticeRescorer, NGramRescorer, TwoPassDecoder, TwoPassResult, UnigramLm};
pub use wer::{align, oracle_wer, wer, AlignOp, WerReport};
