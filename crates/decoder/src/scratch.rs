//! Reusable decode working memory.
//!
//! The frame loop's data structures are split by *ownership lifetime*:
//!
//! * [`SessionScratch`] — state intrinsic to one in-progress utterance:
//!   the double-buffered token populations and the word lattice. A
//!   streaming session must keep these alive between frame pushes.
//! * [`WorkScratch`] — transient buffers the frame loop borrows while
//!   it runs: the epsilon-closure worklist, the LM probe buffer, the
//!   pruning histogram staging area, and the software OLT. Nothing in
//!   here carries meaning across a frame boundary, so a multi-session
//!   scheduler keeps **one per worker** and lends it to whichever
//!   session the worker is currently advancing.
//!
//! [`DecodeScratch`] bundles both for the common one-utterance-at-a-time
//! case; it is cleared (not reallocated) between frames and utterances,
//! so after the first few frames warm the buffers, steady-state decoding
//! performs no heap allocation.
//!
//! Reuse is only legal because every structure here iterates in a
//! capacity-independent order (see [`crate::search::TokenStore`]):
//! decode output stays bit-identical whether the scratch is fresh or
//! warm, which the batch decoder relies on to give identical results
//! for any worker count.

use unfold_wfst::{StateId, EPSILON};

use crate::config::DecodeConfig;
use crate::lattice::Lattice;
use crate::olt::SoftOlt;
use crate::search::TokenStore;
use crate::sources::{AmSource, ArcVisit, Fetch, LmSource, MAX_BACKOFF_HOPS};

/// Per-utterance persistent search state: the live token populations
/// and the word lattice. This is the minimum a paused streaming session
/// must hold on to between frame pushes.
#[derive(Debug, Default)]
pub struct SessionScratch {
    /// Token population entering the current frame.
    pub(crate) cur: TokenStore,
    /// Population being built for the next frame (swapped with `cur`).
    pub(crate) next: TokenStore,
    /// Word lattice of the utterance in progress.
    pub(crate) lattice: Lattice,
    /// Per-session dynamic memo layer: caches *composite* (biased LM
    /// state, word) resolutions when this session decodes through a
    /// biasing adapter. Private to the session — composite entries mix
    /// in a per-session bias automaton, so unlike the worker-shared
    /// OLT they must never leak across users. Empty (disabled) unless
    /// configured; unbiased decodes never probe it.
    pub(crate) bias_cache: SoftOlt,
    /// `bias_cache_entries` the layer was built for (rebuild detection).
    bias_built_for: usize,
}

impl SessionScratch {
    /// Fresh, empty session state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Prepares for a new utterance: clears the token populations and
    /// lattice (capacity is kept) and resets the per-session bias
    /// cache (its entries are keyed to one base-LM × bias pairing; a
    /// fresh utterance may bind a different one).
    pub fn begin(&mut self) {
        self.cur.clear();
        self.next.clear();
        self.lattice.clear();
        self.bias_cache.reset();
    }

    /// Sizes the per-session bias cache for `entries` **without**
    /// resetting a table that is already the right size (mirrors
    /// [`WorkScratch::configure_olt`]). A serve scheduler calls this
    /// when it admits a biased session; plain decodes configure it from
    /// [`DecodeConfig::bias_cache_entries`](crate::DecodeConfig).
    pub fn configure_bias_cache(&mut self, entries: usize) {
        if self.bias_built_for != entries {
            self.bias_cache = SoftOlt::new(entries);
            self.bias_built_for = entries;
        }
    }

    /// Live hypotheses right now.
    pub fn num_active(&self) -> usize {
        self.cur.len()
    }
}

/// Frame-loop transient buffers plus the software OLT. Shared by every
/// utterance a worker advances; holds nothing an individual search
/// depends on across frames (the OLT is a pure memo — see
/// [`crate::olt::SoftOlt`] — so sharing it across sessions decoding
/// against the same LM never changes any session's output).
#[derive(Debug, Default)]
pub struct WorkScratch {
    /// Epsilon-closure worklist (legacy kernel: token keys).
    pub(crate) worklist: Vec<u64>,
    /// Epsilon-closure worklist (SoA kernel: dense entry indices, so a
    /// pop is a direct lane load instead of a hash walk).
    pub(crate) worklist_idx: Vec<u32>,
    /// Per-state epsilon-arc staging buffer.
    pub(crate) eps_local: Vec<(unfold_wfst::StateId, f32, unfold_wfst::Label)>,
    /// LM binary-search probe buffer.
    pub(crate) probes: Vec<Fetch>,
    /// Histogram-pruning cost staging buffer.
    pub(crate) prune_costs: Vec<f32>,
    /// Packed survivor flags, one bit per token entering the frame
    /// (SoA kernel): built by a vectorizable compare sweep over the
    /// contiguous cost lane, consumed with `trailing_zeros` bit tricks.
    pub(crate) survivor_mask: Vec<u64>,
    /// The frame's batched probe buffer (SoA kernel): dense indices of
    /// beam survivors, compacted from the bitmask. Prefetch and
    /// expansion iterate this instead of re-testing every token.
    pub(crate) survivors: Vec<u32>,
    /// Decoded-arc staging arena (SoA kernel): the AM-side analog of
    /// the OLT memo. See [`ArcStage`].
    pub(crate) arc_stage: ArcStage,
    /// Acoustic score-row staging buffer for the feature-frame ingest
    /// path ([`crate::StreamSession::ingest_frame`]): the scorer fills
    /// it, the frame expansion reads it, nothing survives the call.
    pub(crate) score_row: Vec<f32>,
    /// Software Offset Lookup Table (empty when disabled).
    pub(crate) olt: SoftOlt,
    /// `olt_entries` the table was built for (rebuild detection).
    olt_built_for: usize,
    /// Generation stamp of the LM the OLT's entries were memoized
    /// against (see [`WorkScratch::bind_olt_model`]).
    olt_model: Option<u64>,
    /// `(am, lm, num_pdfs)` identity of the last validated model pair.
    validated: Option<(usize, usize, usize)>,
    /// `(am, num_states)` identity the arc stage is bound to (see
    /// [`WorkScratch::bind_arc_stage`]).
    stage_am: Option<(usize, usize)>,
}

impl WorkScratch {
    /// Fresh, empty worker buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Per-utterance reset: clears the transient buffers and resets (or
    /// rebuilds, if `config.olt_entries` changed) the software OLT.
    /// Model-validation state is kept — it is per model pair, not per
    /// utterance.
    pub fn begin(&mut self, config: &DecodeConfig) {
        self.worklist.clear();
        self.worklist_idx.clear();
        self.eps_local.clear();
        self.probes.clear();
        self.survivor_mask.clear();
        self.survivors.clear();
        self.configure_olt(config.olt_entries);
        self.olt.reset();
    }

    /// Sizes the OLT for `olt_entries` **without** resetting a table
    /// that is already the right size. A multi-session scheduler calls
    /// this once per quantum: the memo keeps accumulating across the
    /// sessions a worker serves (they share the LM, so every entry
    /// stays valid), mirroring how the hardware table is a per-engine
    /// resource rather than a per-utterance one.
    pub fn configure_olt(&mut self, olt_entries: usize) {
        if self.olt_built_for != olt_entries {
            self.olt = SoftOlt::new(olt_entries);
            self.olt_built_for = olt_entries;
        }
    }

    /// Binds the OLT memo to the LM identified by `model_gen`,
    /// resetting the table when the worker switches models. OLT entries
    /// are offsets into one specific LM's arc layout, so a scheduler
    /// serving sessions pinned to *different* LMs must call this before
    /// each quantum; consecutive quanta against the same LM keep the
    /// memo warm.
    ///
    /// `model_gen` must uniquely identify an LM for the scratch's whole
    /// lifetime — including models that have since been retired and
    /// dropped. A registry hands out monotonically increasing stamps
    /// (see `unfold_serve::ServeCore`); a heap address is **not** a
    /// valid key, because the allocator can place a newly added model
    /// at a retired model's old address (ABA), silently reviving memo
    /// entries laid out for the dead model's arc stream. A model switch
    /// also drops the cached model-validation state, so a swapped-in
    /// model is re-validated even if it reuses the old one's address.
    pub fn bind_olt_model(&mut self, model_gen: u64) {
        if self.olt_model != Some(model_gen) {
            self.olt.reset();
            self.validated = None;
            self.stage_am = None;
            self.olt_model = Some(model_gen);
        }
    }

    /// Validates `(am, lm)` once per scratch (keyed by address
    /// identity and score-row width): the checks the hot path demotes
    /// to `debug_assert!` run here instead, in one O(model) sweep.
    pub(crate) fn ensure_validated<A: AmSource + ?Sized, L: LmSource + ?Sized>(
        &mut self,
        am: &A,
        lm: &L,
        num_pdfs: usize,
    ) {
        // The LM side keys by `validation_addr`, not the wrapper's own
        // address: a biasing adapter constructed fresh each quantum
        // forwards its pinned base LM's address, so the O(model) sweep
        // still runs once per model pair instead of once per quantum.
        let key = (
            (am as *const A).cast::<u8>() as usize,
            lm.validation_addr(),
            num_pdfs,
        );
        if self.validated == Some(key) {
            return;
        }
        validate_models(am, lm, num_pdfs);
        self.validated = Some(key);
    }

    /// Binds the decoded-arc stage to `am`, resetting the arena when
    /// the scratch last staged a *different* AM (keyed by address and
    /// state count; [`WorkScratch::bind_olt_model`] additionally drops
    /// the binding on a model-generation change, the ABA-safe path).
    /// Every SoA kernel entry point calls this before touching
    /// [`WorkScratch::arc_stage`]; consecutive utterances against the
    /// same AM keep the memo warm, exactly like the OLT.
    pub(crate) fn bind_arc_stage<A: AmSource + ?Sized>(&mut self, am: &A) {
        let key = ((am as *const A).cast::<u8>() as usize, am.num_states());
        if self.stage_am != Some(key) {
            self.arc_stage.reset(am.num_states());
            self.stage_am = Some(key);
        }
    }
}

/// Decoded-arc staging arena: the AM-side analog of the software OLT.
///
/// The compressed AM stores arcs as a variable-width bit stream, so
/// every visit to a state pays the unpack cost — and HMM topologies
/// revisit the same states frame after frame (self-loops alone
/// guarantee it). The SoA kernel stages each state's decoded
/// [`ArcVisit`]s into one flat arena on first visit and replays the
/// contiguous slice thereafter; a per-state span table maps
/// `StateId -> (start, len)`.
///
/// Replay is bit-identical to re-decoding by construction: an
/// [`ArcVisit`] carries the arc *and* the `(addr, bytes)` fetch
/// footprint, and bit-stream decoding is deterministic, so the slice
/// holds exactly what `for_each_arc` would produce — same arcs, same
/// order, same trace events. Like the OLT, the stage is a pure memo:
/// it never changes any decode's output, only how fast the arcs
/// arrive. It is (re)bound to an AM via
/// [`WorkScratch::bind_arc_stage`] and persists across utterances.
///
/// The arena is soft-capped at [`ArcStage::ARENA_CAP`] visits; states
/// first seen after the cap decode through a transient buffer instead
/// of staging (bounded memory on pathologically large models, at the
/// cost of losing the memo for the tail).
#[derive(Debug, Default)]
pub(crate) struct ArcStage {
    /// Per-state `(start, len)` into `arena`; `start == UNSTAGED`
    /// means the state has not been decoded yet.
    spans: Vec<(u32, u32)>,
    /// Flat decoded-arc storage, appended in first-visit order.
    arena: Vec<ArcVisit>,
    /// Fallback decode buffer for states beyond the arena cap.
    tmp: Vec<ArcVisit>,
}

impl ArcStage {
    const UNSTAGED: u32 = u32::MAX;
    /// Soft bound on staged visits (32 bytes each — 32 MiB ceiling).
    pub(crate) const ARENA_CAP: usize = 1 << 20;

    /// Drops every staged span and resizes the span table for a model
    /// with `num_states` AM states.
    pub(crate) fn reset(&mut self, num_states: usize) {
        self.spans.clear();
        self.spans.resize(num_states, (Self::UNSTAGED, 0));
        self.arena.clear();
    }

    /// The decoded arcs of AM state `s`: a contiguous replay slice when
    /// staged, staging it first when not. Identical to what
    /// `am.for_each_arc(s, ..)` would visit, in the same order.
    #[inline]
    pub(crate) fn arcs<A: AmSource + ?Sized>(&mut self, am: &A, s: StateId) -> &[ArcVisit] {
        let i = s as usize;
        let (start, len) = self.spans[i];
        if start != Self::UNSTAGED {
            return &self.arena[start as usize..start as usize + len as usize];
        }
        if self.arena.len() < Self::ARENA_CAP {
            let start = self.arena.len();
            let arena = &mut self.arena;
            am.for_each_arc(s, &mut |v| arena.push(v));
            self.spans[i] = (start as u32, (self.arena.len() - start) as u32);
            &self.arena[start..]
        } else {
            self.tmp.clear();
            let tmp = &mut self.tmp;
            am.for_each_arc(s, &mut |v| tmp.push(v));
            &self.tmp
        }
    }

    /// Visits staged so far (test and reporting hook).
    #[cfg(test)]
    pub(crate) fn staged_visits(&self) -> usize {
        self.arena.len()
    }
}

/// Per-decoder (or per-worker) reusable working memory for the
/// one-utterance-at-a-time decode path. Create once, pass to
/// [`crate::OtfDecoder::decode_with`] for every utterance.
#[derive(Debug, Default)]
pub struct DecodeScratch {
    /// Per-utterance search state.
    pub(crate) session: SessionScratch,
    /// Frame-loop transient buffers.
    pub(crate) work: WorkScratch,
}

impl DecodeScratch {
    /// Fresh, empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Prepares for a new utterance: clears the token populations and
    /// lattice, and resets (or rebuilds, if `config.olt_entries`
    /// changed) the software OLT. Model-validation state is kept — it
    /// is per model pair, not per utterance.
    pub fn begin(&mut self, config: &DecodeConfig) {
        self.session.configure_bias_cache(config.bias_cache_entries);
        self.session.begin();
        self.work.begin(config);
    }
}

/// One-time model sweep backing the hot path's `debug_assert!`s: every
/// emitting AM arc's PDF id must fit the score row, and every LM
/// state's back-off chain must terminate within [`MAX_BACKOFF_HOPS`].
///
/// # Panics
/// Panics with a diagnostic on the first violation.
pub fn validate_models<A: AmSource + ?Sized, L: LmSource + ?Sized>(
    am: &A,
    lm: &L,
    num_pdfs: usize,
) {
    for s in 0..am.num_states() as unfold_wfst::StateId {
        am.for_each_arc(s, &mut |v| {
            assert!(
                v.arc.ilabel == EPSILON || (v.arc.ilabel as usize) <= num_pdfs,
                "AM state {s}: pdf {} beyond the {num_pdfs}-wide score row",
                v.arc.ilabel,
            );
        });
    }
    for s in 0..lm.num_states() as unfold_wfst::StateId {
        let mut state = s;
        let mut hops = 0u32;
        while let Some((back, _)) = lm.backoff(state) {
            hops += 1;
            assert!(
                hops <= MAX_BACKOFF_HOPS,
                "LM state {s}: back-off chain exceeds {MAX_BACKOFF_HOPS} hops"
            );
            state = back.nextstate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unfold_am::{build_am, HmmTopology, Lexicon};
    use unfold_lm::{lm_to_wfst, CorpusSpec, DiscountConfig, NGramModel};

    fn models() -> (unfold_wfst::Wfst, unfold_wfst::Wfst) {
        let lex = Lexicon::generate(40, 18, 3);
        let am = build_am(&lex, HmmTopology::Kaldi3State);
        let spec = CorpusSpec {
            vocab_size: 40,
            num_sentences: 200,
            ..Default::default()
        };
        let model = NGramModel::train(&spec.generate(9), 40, DiscountConfig::default());
        (am.fst, lm_to_wfst(&model))
    }

    #[test]
    fn well_formed_models_validate() {
        let (am, lm) = models();
        let pdfs = (0..am.num_states() as u32)
            .flat_map(|s| am.arcs(s).iter().map(|a| a.ilabel))
            .max()
            .unwrap() as usize;
        validate_models(&am, &lm, pdfs);
    }

    #[test]
    #[should_panic(expected = "beyond the")]
    fn narrow_score_row_is_rejected() {
        let (am, lm) = models();
        validate_models(&am, &lm, 1);
    }

    #[test]
    fn validation_runs_once_per_model_pair() {
        let (am, lm) = models();
        let pdfs = 1_000;
        let mut scratch = DecodeScratch::new();
        scratch.work.ensure_validated(&am, &lm, pdfs);
        let key = scratch.work.validated;
        assert!(key.is_some());
        scratch.begin(&DecodeConfig::default());
        assert_eq!(
            scratch.work.validated, key,
            "begin() must not drop validation"
        );
        scratch.work.ensure_validated(&am, &lm, pdfs);
        assert_eq!(scratch.work.validated, key);
    }

    #[test]
    fn begin_rebuilds_olt_on_capacity_change() {
        let mut scratch = DecodeScratch::new();
        scratch.begin(&DecodeConfig::builder().olt_entries(64).build().unwrap());
        assert_eq!(scratch.work.olt.num_entries(), 64);
        scratch.begin(&DecodeConfig::builder().olt_entries(0).build().unwrap());
        assert!(!scratch.work.olt.is_enabled());
    }

    #[test]
    fn bind_olt_model_resets_only_on_generation_change() {
        let (am, lm) = models();
        let mut work = WorkScratch::new();
        work.configure_olt(128);
        work.bind_olt_model(7);
        work.ensure_validated(&am, &lm, 1_000);
        work.olt.insert(3, 7, 11, 0.5);
        // Re-binding the same generation keeps the memo (and the
        // validation cache) warm — the cross-quantum case a worker
        // serving one LM relies on...
        work.bind_olt_model(7);
        assert_eq!(work.olt.probe(3, 7), Some((11, 0.5)));
        assert!(work.validated.is_some());
        // ...while a different generation — even for a model the
        // allocator placed at the same address — drops both the OLT
        // memo and the validation cache.
        work.bind_olt_model(8);
        assert_eq!(work.olt.probe(3, 7), None);
        assert!(
            work.validated.is_none(),
            "model switch must force re-validation"
        );
    }

    #[test]
    fn arc_stage_replays_identically_and_memoizes() {
        let (am, _) = models();
        let mut stage = ArcStage::default();
        stage.reset(am.num_states());
        let s = am.start();
        let mut direct = Vec::new();
        am.for_each_arc(s, &mut |v| direct.push(v));
        assert!(!direct.is_empty(), "start state should have arcs");
        assert_eq!(stage.arcs(&am, s), &direct[..], "staging pass diverged");
        let staged = stage.staged_visits();
        assert_eq!(stage.arcs(&am, s), &direct[..], "replay diverged");
        assert_eq!(
            stage.staged_visits(),
            staged,
            "revisit must replay, not re-stage"
        );
    }

    #[test]
    fn bind_arc_stage_keeps_memo_for_same_am_and_resets_on_switch() {
        let (am, other) = models();
        let mut work = WorkScratch::new();
        work.bind_arc_stage(&am);
        let _ = work.arc_stage.arcs(&am, am.start());
        let staged = work.arc_stage.staged_visits();
        assert!(staged > 0);
        // Same AM: warm across utterances, like the OLT.
        work.bind_arc_stage(&am);
        assert_eq!(work.arc_stage.staged_visits(), staged);
        // Different AM: stale spans describe the old arc layout.
        work.bind_arc_stage(&other);
        assert_eq!(
            work.arc_stage.staged_visits(),
            0,
            "AM switch must reset the stage"
        );
    }

    #[test]
    fn bind_olt_model_change_drops_arc_stage_binding() {
        let (am, _) = models();
        let mut work = WorkScratch::new();
        work.bind_olt_model(1);
        work.bind_arc_stage(&am);
        let _ = work.arc_stage.arcs(&am, am.start());
        assert!(work.arc_stage.staged_visits() > 0);
        // A model-generation change is the ABA-safe invalidation path:
        // the next bind must restart the arena cold even though the AM
        // sits at the same address.
        work.bind_olt_model(2);
        work.bind_arc_stage(&am);
        assert_eq!(work.arc_stage.staged_visits(), 0);
    }

    #[test]
    fn configure_olt_resizes_without_resetting_same_size() {
        let mut work = WorkScratch::new();
        work.configure_olt(128);
        assert_eq!(work.olt.num_entries(), 128);
        work.olt.insert(3, 7, 11, 0.5);
        // Same size: the memo must survive.
        work.configure_olt(128);
        assert_eq!(work.olt.probe(3, 7), Some((11, 0.5)));
        // New size: rebuilt empty.
        work.configure_olt(256);
        assert_eq!(work.olt.probe(3, 7), None);
    }
}
