//! Word lattice: the backpointer structure from which the best word
//! sequence is recovered.
//!
//! Tokens do not store word histories; they store an index into this
//! append-only lattice. Each entry records a recognized word and the
//! entry that preceded it, so a hypothesis's words are recovered by
//! walking backpointers from its lattice index — the same compact
//! token-to-lattice split the paper adopts from \[22\] to cut Token Cache
//! traffic ("the Token Issuer \[writes\] the word lattice in a compact
//! representation").

use unfold_lm::WordId;

/// Bytes one lattice entry occupies in the compact representation
/// (\[22\]-style: packed backpointer + word id).
pub const COMPACT_ENTRY_BYTES: u32 = 8;
/// Bytes one lattice entry occupies in the plain representation used by
/// the fully-composed baseline's Token Issuer.
pub const PLAIN_ENTRY_BYTES: u32 = 16;

/// Sentinel lattice index meaning "no predecessor".
pub const LATTICE_ROOT: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Entry {
    prev: u32,
    word: WordId,
    #[allow(dead_code)]
    frame: u32,
}

/// Append-only word lattice.
#[derive(Debug, Clone, Default)]
pub struct Lattice {
    entries: Vec<Entry>,
}

impl Lattice {
    /// Creates an empty lattice.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the lattice is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every entry but keeps the allocation (scratch reuse
    /// between utterances).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Appends a word recognized at `frame`, preceded by `prev`
    /// (or [`LATTICE_ROOT`]). Returns the new entry's index.
    ///
    /// # Panics
    /// Panics if `prev` is neither [`LATTICE_ROOT`] nor a valid index,
    /// or if the lattice would exceed `u32::MAX - 1` entries.
    pub fn push(&mut self, prev: u32, word: WordId, frame: u32) -> u32 {
        assert!(
            prev == LATTICE_ROOT || (prev as usize) < self.entries.len(),
            "push: dangling backpointer {prev}"
        );
        let idx = self.entries.len();
        assert!(idx < (u32::MAX - 1) as usize, "push: lattice overflow");
        self.entries.push(Entry { prev, word, frame });
        idx as u32
    }

    /// Recovers the word sequence ending at `index` (oldest first).
    /// [`LATTICE_ROOT`] yields the empty sequence.
    ///
    /// # Panics
    /// Panics if `index` is invalid.
    pub fn backtrace(&self, index: u32) -> Vec<WordId> {
        let mut words = Vec::new();
        let mut cur = index;
        while cur != LATTICE_ROOT {
            let e = &self.entries[cur as usize];
            words.push(e.word);
            cur = e.prev;
        }
        words.reverse();
        words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backtrace_recovers_sequence() {
        let mut l = Lattice::new();
        let a = l.push(LATTICE_ROOT, 10, 0);
        let b = l.push(a, 20, 5);
        let c = l.push(b, 30, 9);
        assert_eq!(l.backtrace(c), vec![10, 20, 30]);
        assert_eq!(l.backtrace(a), vec![10]);
        assert_eq!(l.backtrace(LATTICE_ROOT), Vec::<WordId>::new());
    }

    #[test]
    fn branches_share_prefixes() {
        let mut l = Lattice::new();
        let a = l.push(LATTICE_ROOT, 1, 0);
        let b1 = l.push(a, 2, 3);
        let b2 = l.push(a, 3, 3);
        assert_eq!(l.backtrace(b1), vec![1, 2]);
        assert_eq!(l.backtrace(b2), vec![1, 3]);
        assert_eq!(l.len(), 3);
    }

    #[test]
    #[should_panic(expected = "dangling backpointer")]
    fn dangling_prev_panics() {
        let mut l = Lattice::new();
        l.push(5, 1, 0);
    }
}
