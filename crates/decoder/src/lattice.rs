//! Word lattices: the compact backpointer chain the 1-best search
//! writes, the raw expansion tape recorded alongside it, and the
//! [`WordLattice`] post-pass that turns the tape into an exact, pruned
//! word lattice with posteriors and deterministic N-best paths.
//!
//! Tokens do not store word histories; they store an index into the
//! append-only [`Lattice`]. Each entry records a recognized word and the
//! entry that preceded it, so a hypothesis's words are recovered by
//! walking backpointers from its lattice index — the same compact
//! token-to-lattice split the paper adopts from \[22\] to cut Token Cache
//! traffic ("the Token Issuer \[writes\] the word lattice in a compact
//! representation").
//!
//! The backpointer chain only remembers the Viterbi predecessor of each
//! token. When a lattice is requested, the decoder additionally turns on
//! the *expansion tape*: every relaxation the search attempts — emitting
//! or epsilon, improving or not — is appended as a raw
//! `(source token, destination token, word, destination cost)` record.
//! Because the tape captures *all* surviving incoming arcs per
//! (frame, state), the post-pass can reconstruct the exact set of
//! hypotheses the beam search considered, not just the single best
//! (the GPU exact-lattice decoder of Povey et al. materializes lattices
//! from token passing the same way). The tape is contents-neutral for
//! search: recording never changes decode output, stats, or the trace
//! event stream.
//!
//! The post-pass ([`WordLattice::build`]) works in two semirings through
//! the [`Semiring`] trait: tropical (min, +) for the exact
//! forward/backward Viterbi scores that drive lattice-beam pruning, and
//! log (-log-sum-exp, +) for the forward/backward occupation scores that
//! yield arc posteriors — per-word confidence.

use std::collections::BTreeMap;

use unfold_lm::WordId;
use unfold_wfst::{LogWeight, Semiring, TropicalWeight};

use crate::search::TokenStore;
use crate::sources::AmSource;

/// Bytes one lattice entry occupies in the compact representation
/// (\[22\]-style: packed backpointer + word id).
pub const COMPACT_ENTRY_BYTES: u32 = 8;
/// Bytes one lattice entry occupies in the plain representation used by
/// the fully-composed baseline's Token Issuer.
pub const PLAIN_ENTRY_BYTES: u32 = 16;

/// Sentinel lattice index meaning "no predecessor".
pub const LATTICE_ROOT: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Entry {
    prev: u32,
    word: WordId,
    frame: u32,
}

/// One raw record on the expansion tape: the search relaxed an arc from
/// the token keyed `src_key` (in population `src_pop`) into the token
/// keyed `dst_key` (in population `dst_pop`), carrying `word` (0 for
/// none), arriving with path cost `dst_cost`.
#[derive(Debug, Clone, Copy)]
struct TapeArc {
    src_pop: u32,
    dst_pop: u32,
    src_key: u64,
    dst_key: u64,
    word: WordId,
    dst_cost: f32,
}

/// Append-only word lattice backpointer store, plus (when recording is
/// enabled) the raw expansion tape a [`WordLattice`] is built from.
#[derive(Debug, Clone, Default)]
pub struct Lattice {
    entries: Vec<Entry>,
    /// Whether the expansion tape is being recorded.
    recording: bool,
    /// Current token population: 0 for the seed closure, `t + 1` once
    /// frame `t` has been expanded.
    cur_pop: u32,
    /// Token key of the seed token (population 0).
    start_key: u64,
    /// Raw expansion records, in the order the search attempted them.
    tape: Vec<TapeArc>,
}

impl Lattice {
    /// Creates an empty lattice.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the lattice is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every entry and tape record but keeps the allocations
    /// (scratch reuse between utterances). Recording is switched off;
    /// each lattice-producing entry point re-enables it explicitly.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.tape.clear();
        self.recording = false;
        self.cur_pop = 0;
        self.start_key = 0;
    }

    /// Enables or disables the expansion tape. Contents-neutral for the
    /// search itself.
    pub(crate) fn set_recording(&mut self, on: bool) {
        self.recording = on;
    }

    /// Whether the expansion tape is being recorded.
    pub(crate) fn is_recording(&self) -> bool {
        self.recording
    }

    /// Records the seed token's key (population 0).
    pub(crate) fn record_start(&mut self, key: u64) {
        if self.recording {
            self.start_key = key;
        }
    }

    /// Advances to the next token population; called once at the start
    /// of every frame expansion.
    pub(crate) fn advance_pop(&mut self) {
        self.cur_pop += 1;
    }

    /// Records an emitting relaxation: an arc from `src_key` in the
    /// previous population into `dst_key` in the current one.
    #[inline]
    pub(crate) fn record_emit(&mut self, src_key: u64, dst_key: u64, word: WordId, dst_cost: f32) {
        if self.recording {
            debug_assert!(self.cur_pop >= 1, "emitting arc before any frame");
            self.tape.push(TapeArc {
                src_pop: self.cur_pop - 1,
                dst_pop: self.cur_pop,
                src_key,
                dst_key,
                word,
                dst_cost,
            });
        }
    }

    /// Records an epsilon-closure relaxation within the current
    /// population.
    #[inline]
    pub(crate) fn record_eps(&mut self, src_key: u64, dst_key: u64, word: WordId, dst_cost: f32) {
        if self.recording {
            self.tape.push(TapeArc {
                src_pop: self.cur_pop,
                dst_pop: self.cur_pop,
                src_key,
                dst_key,
                word,
                dst_cost,
            });
        }
    }

    /// Appends a word recognized at `frame`, preceded by `prev`
    /// (or [`LATTICE_ROOT`]). Returns the new entry's index.
    ///
    /// # Panics
    /// Panics if `prev` is neither [`LATTICE_ROOT`] nor a valid index,
    /// or if the lattice would exceed `u32::MAX - 1` entries.
    pub fn push(&mut self, prev: u32, word: WordId, frame: u32) -> u32 {
        assert!(
            prev == LATTICE_ROOT || (prev as usize) < self.entries.len(),
            "push: dangling backpointer {prev}"
        );
        let idx = self.entries.len();
        assert!(idx < (u32::MAX - 1) as usize, "push: lattice overflow");
        self.entries.push(Entry { prev, word, frame });
        idx as u32
    }

    /// Recovers the word sequence ending at `index` (oldest first).
    /// [`LATTICE_ROOT`] yields the empty sequence.
    ///
    /// # Panics
    /// Panics if `index` is invalid.
    pub fn backtrace(&self, index: u32) -> Vec<WordId> {
        self.backtrace_spanned(index)
            .into_iter()
            .map(|(w, _)| w)
            .collect()
    }

    /// Like [`Lattice::backtrace`], but pairs every word with the frame
    /// it was recognized at.
    ///
    /// # Panics
    /// Panics if `index` is invalid.
    pub fn backtrace_spanned(&self, index: u32) -> Vec<(WordId, u32)> {
        let mut words = Vec::new();
        let mut cur = index;
        while cur != LATTICE_ROOT {
            let e = &self.entries[cur as usize];
            words.push((e.word, e.frame));
            cur = e.prev;
        }
        words.reverse();
        words
    }
}

/// A node of a [`WordLattice`]: one surviving search token, identified
/// by its `(frame, packed state key)` pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatticeNode {
    /// Token population: 0 before any frame, `t + 1` after frame `t`.
    pub frame: u32,
    /// Packed `(am_state << 32) | lm_state` search key.
    pub key: u64,
    /// Exact tropical forward cost from the start node — bit-identical
    /// to the search token's accumulated path cost.
    pub forward: f32,
    /// Tropical backward cost to the cheapest reachable final.
    pub backward: f32,
    /// Log-semiring forward score (α) over the pruned lattice.
    pub log_forward: f32,
    /// Log-semiring backward score (β, including final weights) over
    /// the pruned lattice.
    pub log_backward: f32,
}

/// An arc of a [`WordLattice`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatticeArc {
    /// Source node index.
    pub from: u32,
    /// Destination node index.
    pub to: u32,
    /// Word carried by the arc (0 = none).
    pub word: WordId,
    /// Tropical cost contribution of this arc.
    pub weight: f32,
    /// Posterior probability of the arc under the log semiring, in
    /// `[0, 1]`.
    pub posterior: f32,
}

/// One word of a best-path hypothesis with its recognition frame and
/// lattice-posterior confidence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WordHyp {
    /// The word.
    pub word: WordId,
    /// Frame the word was recognized at.
    pub frame: u32,
    /// Posterior confidence in `[0, 1]`.
    pub confidence: f32,
}

/// An exact, lattice-beam-pruned word lattice over surviving search
/// tokens.
///
/// Nodes are ordered by `(frame, key)` and arcs by
/// `(from, to, word)`, so two lattices built from the same search —
/// regardless of kernel, OLT size, scratch reuse, or streaming — are
/// bit-identical structure-for-structure; the verify matrix pins this.
/// Every node lies on at least one complete path whose total cost is
/// within `lattice_beam` of the best (non-coreachable nodes are
/// pruned), and the exact Viterbi path is always present.
#[derive(Debug, Clone)]
pub struct WordLattice {
    nodes: Vec<LatticeNode>,
    arcs: Vec<LatticeArc>,
    /// CSR offsets into `arcs` per node (length `nodes.len() + 1`).
    arc_start: Vec<u32>,
    /// Final nodes and their final weights.
    finals: Vec<(u32, f32)>,
    start: u32,
    best_cost: f32,
    num_frames: u32,
}

impl Default for WordLattice {
    fn default() -> Self {
        WordLattice::empty()
    }
}

/// Safety valve for the best-first path enumerations: total heap pops.
const EXPLORE_BUDGET: usize = 400_000;

impl WordLattice {
    /// The empty lattice (an incomplete decode).
    pub(crate) fn empty() -> Self {
        WordLattice {
            nodes: Vec::new(),
            arcs: Vec::new(),
            arc_start: vec![0],
            finals: Vec::new(),
            start: 0,
            best_cost: f32::INFINITY,
            num_frames: 0,
        }
    }

    /// Builds the pruned word lattice from a recorded expansion tape and
    /// the search's final token population.
    pub(crate) fn build<A: AmSource + ?Sized>(
        am: &A,
        tape: &Lattice,
        final_population: &TokenStore,
        lattice_beam: f32,
    ) -> WordLattice {
        debug_assert!(tape.is_recording(), "building a lattice without a tape");
        let t_final = tape.cur_pop;

        // Final (key, final weight) pairs from the last population.
        let mut final_keys: Vec<(u64, f32)> = Vec::new();
        for key in final_population.keys() {
            let am_state = (key >> 32) as u32;
            if let Some(fw) = am.final_weight(am_state) {
                final_keys.push((key, fw));
            }
        }

        // Node universe, canonically ordered by (population, key).
        let mut ids: BTreeMap<(u32, u64), u32> = BTreeMap::new();
        ids.insert((0, tape.start_key), 0);
        for a in &tape.tape {
            ids.insert((a.src_pop, a.src_key), 0);
            ids.insert((a.dst_pop, a.dst_key), 0);
        }
        for &(k, _) in &final_keys {
            ids.insert((t_final, k), 0);
        }
        let mut node_meta: Vec<(u32, u64)> = Vec::with_capacity(ids.len());
        for (i, ((pop, key), v)) in ids.iter_mut().enumerate() {
            *v = i as u32;
            node_meta.push((*pop, *key));
        }
        let n = node_meta.len();
        let start = ids[&(0, tape.start_key)];

        // Canonical arc list: sorted, then deduplicated to the cheapest
        // record per (src, dst, word). Duplicates arise whenever the
        // closure re-expands an improved token; the minimum is exactly
        // the settled source cost plus the arc cost, so the surviving
        // record is independent of the order the search emitted them in.
        let mut raw: Vec<TapeArc> = tape.tape.clone();
        raw.sort_by(|a, b| {
            (a.src_pop, a.src_key, a.dst_pop, a.dst_key, a.word)
                .cmp(&(b.src_pop, b.src_key, b.dst_pop, b.dst_key, b.word))
                .then(a.dst_cost.total_cmp(&b.dst_cost))
        });
        raw.dedup_by(|next, kept| {
            (
                next.src_pop,
                next.src_key,
                next.dst_pop,
                next.dst_key,
                next.word,
            ) == (
                kept.src_pop,
                kept.src_key,
                kept.dst_pop,
                kept.dst_key,
                kept.word,
            )
        });

        // Exact tropical forward: a node's cost is the cheapest recorded
        // relaxation into it — bit-identical to the search token's cost,
        // because the search computed the same minimum over the same
        // multiset.
        let mut fv = vec![f32::INFINITY; n];
        fv[start as usize] = 0.0;
        for a in &raw {
            let d = ids[&(a.dst_pop, a.dst_key)] as usize;
            let c = TropicalWeight::from_cost(a.dst_cost)
                .plus(TropicalWeight::from_cost(fv[d]))
                .value();
            fv[d] = c;
        }

        // Provisional arcs with weight w = dst_cost - forward(src); the
        // decomposition makes every path's arc-weight sum equal its
        // search cost (up to float re-association). Self-loops are
        // dropped: the strict-improvement relax predicate means the
        // search itself never takes them.
        struct PArc {
            from: u32,
            to: u32,
            word: WordId,
            w: f32,
        }
        let mut parcs: Vec<PArc> = Vec::with_capacity(raw.len());
        for a in &raw {
            let s = ids[&(a.src_pop, a.src_key)];
            let d = ids[&(a.dst_pop, a.dst_key)];
            let w = a.dst_cost - fv[s as usize];
            if s != d && w.is_finite() {
                parcs.push(PArc {
                    from: s,
                    to: d,
                    word: a.word,
                    w,
                });
            }
        }

        // CSR over the provisional arcs (they are sorted by `from`
        // because node ids follow the (population, key) sort order).
        let mut pstart = vec![0u32; n + 1];
        for a in &parcs {
            pstart[a.from as usize + 1] += 1;
        }
        for i in 0..n {
            pstart[i + 1] += pstart[i];
        }

        // Topological order (Kahn, smallest node index first — emitting
        // arcs advance the frame, so this is near-sequential). Any
        // leftover nodes (an epsilon cycle, which well-formed models do
        // not produce) are appended in index order as a defensive
        // fallback; the enumeration budgets below keep everything
        // terminating regardless.
        let topo = {
            let mut indeg = vec![0u32; n];
            for a in &parcs {
                indeg[a.to as usize] += 1;
            }
            let mut heap = std::collections::BinaryHeap::new();
            for (i, &d) in indeg.iter().enumerate() {
                if d == 0 {
                    heap.push(std::cmp::Reverse(i as u32));
                }
            }
            let mut order = Vec::with_capacity(n);
            let mut seen = vec![false; n];
            while let Some(std::cmp::Reverse(u)) = heap.pop() {
                order.push(u);
                seen[u as usize] = true;
                let (lo, hi) = (pstart[u as usize] as usize, pstart[u as usize + 1] as usize);
                for a in &parcs[lo..hi] {
                    indeg[a.to as usize] -= 1;
                    if indeg[a.to as usize] == 0 {
                        heap.push(std::cmp::Reverse(a.to));
                    }
                }
            }
            for i in 0..n as u32 {
                if !seen[i as usize] {
                    order.push(i);
                }
            }
            order
        };

        // Tropical backward over the provisional lattice (reverse
        // topological, exact on a DAG).
        let mut bv = vec![f32::INFINITY; n];
        for &(k, fw) in &final_keys {
            let d = ids[&(t_final, k)] as usize;
            bv[d] = TropicalWeight::from_cost(fw)
                .plus(TropicalWeight::from_cost(bv[d]))
                .value();
        }
        for &u in topo.iter().rev() {
            let (lo, hi) = (pstart[u as usize] as usize, pstart[u as usize + 1] as usize);
            let mut acc = TropicalWeight::from_cost(bv[u as usize]);
            for a in &parcs[lo..hi] {
                acc = TropicalWeight::from_cost(a.w)
                    .times(TropicalWeight::from_cost(bv[a.to as usize]))
                    .plus(acc);
            }
            bv[u as usize] = acc.value();
        }

        // Best complete cost: minimum over finals of forward + final
        // weight (the same fold the search's finish step performs).
        let mut best = TropicalWeight::zero();
        for &(k, fw) in &final_keys {
            let d = ids[&(t_final, k)] as usize;
            best = TropicalWeight::from_cost(fv[d])
                .times(TropicalWeight::from_cost(fw))
                .plus(best);
        }
        let best_cost = best.value();
        if !best_cost.is_finite() {
            return WordLattice::empty();
        }

        // Lattice-beam prune: keep an arc iff the best complete path
        // through it is within `lattice_beam` of the best. Every node a
        // kept arc touches then lies on such a path itself (the Viterbi
        // witness to/from the node survives arc-by-arc), so the pruned
        // lattice stays connected and coreachable by construction.
        let bound = best_cost + lattice_beam;
        let mut keep_node = vec![false; n];
        keep_node[start as usize] = true;
        let kept: Vec<usize> = (0..parcs.len())
            .filter(|&i| {
                let a = &parcs[i];
                fv[a.from as usize] + a.w + bv[a.to as usize] <= bound
            })
            .collect();
        for &i in &kept {
            keep_node[parcs[i].from as usize] = true;
            keep_node[parcs[i].to as usize] = true;
        }
        for &(k, fw) in &final_keys {
            let d = ids[&(t_final, k)] as usize;
            if fv[d] + fw <= bound {
                keep_node[d] = true;
            }
        }

        // Renumber (sorted order preserved) and assemble.
        let mut remap = vec![u32::MAX; n];
        let mut nodes: Vec<LatticeNode> = Vec::new();
        for i in 0..n {
            if keep_node[i] {
                remap[i] = nodes.len() as u32;
                nodes.push(LatticeNode {
                    frame: node_meta[i].0,
                    key: node_meta[i].1,
                    forward: fv[i],
                    backward: bv[i],
                    log_forward: f32::INFINITY,
                    log_backward: f32::INFINITY,
                });
            }
        }
        let arcs: Vec<LatticeArc> = kept
            .iter()
            .map(|&i| {
                let a = &parcs[i];
                LatticeArc {
                    from: remap[a.from as usize],
                    to: remap[a.to as usize],
                    word: a.word,
                    weight: a.w,
                    posterior: 0.0,
                }
            })
            .collect();
        let finals: Vec<(u32, f32)> = final_keys
            .iter()
            .filter_map(|&(k, fw)| {
                let d = ids[&(t_final, k)] as usize;
                (keep_node[d] && fv[d] + fw <= bound).then(|| (remap[d], fw))
            })
            .collect();
        let m = nodes.len();
        let mut arc_start = vec![0u32; m + 1];
        for a in &arcs {
            arc_start[a.from as usize + 1] += 1;
        }
        for i in 0..m {
            arc_start[i + 1] += arc_start[i];
        }
        let mut lat = WordLattice {
            nodes,
            arcs,
            arc_start,
            finals: {
                let mut f = finals;
                f.sort_by_key(|&(d, _)| d);
                f
            },
            start: remap[start as usize],
            best_cost,
            num_frames: t_final,
        };
        lat.compute_posteriors(&topo, &remap);
        lat
    }

    /// Log-semiring forward/backward over the pruned lattice, filling
    /// `log_forward`/`log_backward` per node and `posterior` per arc.
    /// `topo`/`remap` carry the pre-prune topological order; the induced
    /// order on kept nodes is still topological.
    fn compute_posteriors(&mut self, topo: &[u32], remap: &[u32]) {
        let m = self.nodes.len();
        if m == 0 {
            return;
        }
        let order: Vec<u32> = topo
            .iter()
            .map(|&u| remap[u as usize])
            .filter(|&d| d != u32::MAX)
            .collect();
        let mut alpha = vec![LogWeight::zero(); m];
        alpha[self.start as usize] = LogWeight::one();
        for &u in &order {
            let a_u = alpha[u as usize];
            if a_u == LogWeight::zero() {
                continue;
            }
            let (lo, hi) = self.out_range(u);
            for a in &self.arcs[lo..hi] {
                alpha[a.to as usize] =
                    alpha[a.to as usize].plus(a_u.times(LogWeight::from_cost(a.weight)));
            }
        }
        let mut beta = vec![LogWeight::zero(); m];
        for &(d, fw) in &self.finals {
            beta[d as usize] = beta[d as usize].plus(LogWeight::from_cost(fw));
        }
        for &u in order.iter().rev() {
            let (lo, hi) = self.out_range(u);
            let mut acc = beta[u as usize];
            for a in &self.arcs[lo..hi] {
                acc = acc.plus(LogWeight::from_cost(a.weight).times(beta[a.to as usize]));
            }
            beta[u as usize] = acc;
        }
        let total = alpha[self.start as usize].times(beta[self.start as usize]);
        for (i, n) in self.nodes.iter_mut().enumerate() {
            n.log_forward = alpha[i].value();
            n.log_backward = beta[i].value();
        }
        for a in &mut self.arcs {
            let through = alpha[a.from as usize]
                .times(LogWeight::from_cost(a.weight))
                .times(beta[a.to as usize]);
            let p = (-(through.value() - total.value())).exp();
            a.posterior = p.clamp(0.0, 1.0);
        }
    }

    #[inline]
    fn out_range(&self, u: u32) -> (usize, usize) {
        (
            self.arc_start[u as usize] as usize,
            self.arc_start[u as usize + 1] as usize,
        )
    }

    /// Nodes, ordered by `(frame, key)`.
    pub fn nodes(&self) -> &[LatticeNode] {
        &self.nodes
    }

    /// Arcs, ordered by `(from, to, word)`.
    pub fn arcs(&self) -> &[LatticeArc] {
        &self.arcs
    }

    /// Final nodes and their final weights, ordered by node index.
    pub fn finals(&self) -> &[(u32, f32)] {
        &self.finals
    }

    /// Start node index.
    pub fn start(&self) -> u32 {
        self.start
    }

    /// Cost of the best complete path (`f32::INFINITY` when empty).
    pub fn best_cost(&self) -> f32 {
        self.best_cost
    }

    /// Number of frames the utterance spanned.
    pub fn num_frames(&self) -> u32 {
        self.num_frames
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of arcs.
    pub fn num_arcs(&self) -> usize {
        self.arcs.len()
    }

    /// Whether the lattice holds no complete hypothesis.
    pub fn is_empty(&self) -> bool {
        self.finals.is_empty()
    }

    /// Frame an arc's label was recognized at (the frame its expansion
    /// consumed; epsilon-closure arcs share the frame of the expansion
    /// that produced their population).
    pub fn arc_frame(&self, arc: &LatticeArc) -> u32 {
        self.nodes[arc.to as usize].frame.saturating_sub(1)
    }

    /// Largest `forward + weight + backward` slack over the best
    /// complete cost across all arcs — by construction at most the
    /// lattice beam the lattice was pruned with; the verify matrix
    /// asserts exactly that.
    pub fn max_path_slack(&self) -> f32 {
        let mut worst = 0.0f32;
        for a in &self.arcs {
            let through =
                self.nodes[a.from as usize].forward + a.weight + self.nodes[a.to as usize].backward;
            let slack = through - self.best_cost;
            if slack > worst {
                worst = slack;
            }
        }
        worst
    }

    /// Sum of arc posteriors over the emitting arcs that consume
    /// `frame` — ~1.0 for every frame of a well-formed lattice, since
    /// each complete path crosses each frame boundary exactly once.
    pub fn emitting_posterior_sum(&self, frame: u32) -> f64 {
        let mut sum = 0.0f64;
        for a in &self.arcs {
            let (f, t) = (
                self.nodes[a.from as usize].frame,
                self.nodes[a.to as usize].frame,
            );
            if t == f + 1 && f == frame {
                sum += f64::from(a.posterior);
            }
        }
        sum
    }

    /// The `n` cheapest distinct word sequences through the lattice,
    /// best first, with their path costs. Deterministic: paths are
    /// enumerated best-first (A* with the exact tropical backward score
    /// as heuristic) with ties broken by insertion order over the
    /// canonically sorted arc list.
    ///
    /// # Panics
    /// Panics if `n` is 0.
    pub fn nbest(&self, n: usize) -> Vec<(Vec<WordId>, f32)> {
        assert!(n > 0, "nbest: n must be > 0");
        let cap = 8 * n + 32;
        let (paths, _) = self.explore(n, f64::INFINITY, EXPLORE_BUDGET, cap);
        paths
            .into_iter()
            .map(|(words, cost)| (words, cost as f32))
            .collect()
    }

    /// Every distinct word sequence whose best path cost is at most
    /// `bound`, with that cost, or `None` if the enumeration exceeded
    /// `budget` heap pops (an unpruned lattice can hold exponentially
    /// many paths). Used by the verify matrix's exhaustive comparisons.
    pub fn paths_within(&self, bound: f32, budget: usize) -> Option<BTreeMap<Vec<WordId>, f64>> {
        let (paths, complete) = self.explore(usize::MAX, f64::from(bound), budget, usize::MAX);
        if !complete {
            return None;
        }
        let mut out = BTreeMap::new();
        for (words, cost) in paths {
            out.entry(words).or_insert(cost);
        }
        Some(out)
    }

    /// The best path as per-word hypotheses: word, recognition frame,
    /// and lattice-posterior confidence.
    pub fn best_path_detail(&self) -> Vec<WordHyp> {
        let (paths, _) = self.explore_arcs(1, f64::INFINITY, EXPLORE_BUDGET, 64);
        let Some((arc_path, _)) = paths.into_iter().next() else {
            return Vec::new();
        };
        arc_path
            .iter()
            .filter_map(|&ai| {
                let a = &self.arcs[ai as usize];
                (a.word != 0).then(|| WordHyp {
                    word: a.word,
                    frame: self.arc_frame(a),
                    confidence: a.posterior,
                })
            })
            .collect()
    }

    /// Best-first path enumeration returning word sequences; see
    /// [`WordLattice::explore_arcs`].
    fn explore(
        &self,
        max_paths: usize,
        cost_bound: f64,
        budget: usize,
        per_node_cap: usize,
    ) -> (Vec<(Vec<WordId>, f64)>, bool) {
        let (paths, complete) = self.explore_arcs(max_paths, cost_bound, budget, per_node_cap);
        let out = paths
            .into_iter()
            .map(|(arc_path, cost)| {
                let words: Vec<WordId> = arc_path
                    .iter()
                    .map(|&ai| self.arcs[ai as usize].word)
                    .filter(|&w| w != 0)
                    .collect();
                (words, cost)
            })
            .collect();
        (out, complete)
    }

    /// Core best-first enumeration over arc paths. Returns up to
    /// `max_paths` paths with distinct word sequences, each as the arc
    /// index list and its total cost, plus whether the enumeration ran
    /// to natural completion (as opposed to hitting `budget`).
    ///
    /// Two partial paths reaching the same node with the same word
    /// prefix are merged, keeping the cheaper (their suffix sets are
    /// identical, so the costlier one can never yield a distinct
    /// sequence or a better cost) — without this, time-alignment
    /// variants of one word sequence crowd out genuinely different
    /// sequences and the search degenerates.
    fn explore_arcs(
        &self,
        max_paths: usize,
        cost_bound: f64,
        budget: usize,
        per_node_cap: usize,
    ) -> (Vec<(Vec<u32>, f64)>, bool) {
        const SUPER_FINAL: u32 = u32::MAX;
        #[derive(Debug)]
        struct Item {
            est: f64,
            seq: u64,
            node: u32,
            g: f64,
            arcs: Vec<u32>,
            words: Vec<WordId>,
        }
        impl PartialEq for Item {
            fn eq(&self, o: &Self) -> bool {
                self.est.total_cmp(&o.est).is_eq() && self.seq == o.seq
            }
        }
        impl Eq for Item {}
        impl PartialOrd for Item {
            fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(o))
            }
        }
        impl Ord for Item {
            fn cmp(&self, o: &Self) -> std::cmp::Ordering {
                self.est.total_cmp(&o.est).then(self.seq.cmp(&o.seq))
            }
        }

        let mut out: Vec<(Vec<u32>, f64)> = Vec::new();
        if self.finals.is_empty() {
            return (out, true);
        }
        let mut final_weight = vec![f32::INFINITY; self.nodes.len()];
        for &(d, fw) in &self.finals {
            final_weight[d as usize] = final_weight[d as usize].min(fw);
        }
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<Item>> =
            std::collections::BinaryHeap::new();
        let mut seq = 0u64;
        let mut pops = vec![0usize; self.nodes.len()];
        let mut seen: std::collections::BTreeSet<Vec<WordId>> = std::collections::BTreeSet::new();
        // Best g per (node, word prefix): the alignment-merge table.
        let mut best_prefix: std::collections::BTreeMap<(u32, Vec<WordId>), f64> =
            std::collections::BTreeMap::new();
        let start_est = f64::from(self.nodes[self.start as usize].backward);
        best_prefix.insert((self.start, Vec::new()), 0.0);
        heap.push(std::cmp::Reverse(Item {
            est: start_est,
            seq,
            node: self.start,
            g: 0.0,
            arcs: Vec::new(),
            words: Vec::new(),
        }));
        let mut total_pops = 0usize;
        while let Some(std::cmp::Reverse(item)) = heap.pop() {
            if item.est > cost_bound {
                break; // everything still queued is costlier
            }
            total_pops += 1;
            if total_pops > budget {
                return (out, false);
            }
            if item.node == SUPER_FINAL {
                if seen.insert(item.words) {
                    out.push((item.arcs, item.g));
                    if out.len() >= max_paths {
                        return (out, true);
                    }
                }
                continue;
            }
            // A cheaper path already reached this node with this word
            // prefix: this one is a dominated alignment variant.
            if best_prefix
                .get(&(item.node, item.words.clone()))
                .is_some_and(|&g0| g0 < item.g)
            {
                continue;
            }
            let u = item.node as usize;
            if pops[u] >= per_node_cap {
                continue;
            }
            pops[u] += 1;
            let fw = final_weight[u];
            if fw.is_finite() {
                let g = item.g + f64::from(fw);
                seq += 1;
                heap.push(std::cmp::Reverse(Item {
                    est: g,
                    seq,
                    node: SUPER_FINAL,
                    g,
                    arcs: item.arcs.clone(),
                    words: item.words.clone(),
                }));
            }
            let (lo, hi) = self.out_range(item.node);
            for (off, a) in self.arcs[lo..hi].iter().enumerate() {
                let g = item.g + f64::from(a.weight);
                let est = g + f64::from(self.nodes[a.to as usize].backward);
                if est > cost_bound {
                    continue;
                }
                let mut words = item.words.clone();
                if a.word != 0 {
                    words.push(a.word);
                }
                match best_prefix.get(&(a.to, words.clone())) {
                    Some(&g0) if g0 <= g => continue, // dominated
                    _ => {
                        best_prefix.insert((a.to, words.clone()), g);
                    }
                }
                let mut arcs = item.arcs.clone();
                arcs.push((lo + off) as u32);
                seq += 1;
                heap.push(std::cmp::Reverse(Item {
                    est,
                    seq,
                    node: a.to,
                    g,
                    arcs,
                    words,
                }));
            }
        }
        (out, true)
    }

    /// Whether two lattices are bit-for-bit identical: same structure
    /// and identical float bits for every weight, score, and posterior.
    /// The verify matrix's determinism A/Bs compare with this.
    pub fn bit_identical(&self, other: &WordLattice) -> bool {
        self.start == other.start
            && self.num_frames == other.num_frames
            && self.best_cost.to_bits() == other.best_cost.to_bits()
            && self.nodes.len() == other.nodes.len()
            && self.arcs.len() == other.arcs.len()
            && self.finals.len() == other.finals.len()
            && self.nodes.iter().zip(&other.nodes).all(|(a, b)| {
                a.frame == b.frame
                    && a.key == b.key
                    && a.forward.to_bits() == b.forward.to_bits()
                    && a.backward.to_bits() == b.backward.to_bits()
                    && a.log_forward.to_bits() == b.log_forward.to_bits()
                    && a.log_backward.to_bits() == b.log_backward.to_bits()
            })
            && self.arcs.iter().zip(&other.arcs).all(|(a, b)| {
                a.from == b.from
                    && a.to == b.to
                    && a.word == b.word
                    && a.weight.to_bits() == b.weight.to_bits()
                    && a.posterior.to_bits() == b.posterior.to_bits()
            })
            && self
                .finals
                .iter()
                .zip(&other.finals)
                .all(|(a, b)| a.0 == b.0 && a.1.to_bits() == b.1.to_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backtrace_recovers_sequence() {
        let mut l = Lattice::new();
        let a = l.push(LATTICE_ROOT, 10, 0);
        let b = l.push(a, 20, 5);
        let c = l.push(b, 30, 9);
        assert_eq!(l.backtrace(c), vec![10, 20, 30]);
        assert_eq!(l.backtrace(a), vec![10]);
        assert_eq!(l.backtrace(LATTICE_ROOT), Vec::<WordId>::new());
        assert_eq!(l.backtrace_spanned(c), vec![(10, 0), (20, 5), (30, 9)]);
    }

    #[test]
    fn branches_share_prefixes() {
        let mut l = Lattice::new();
        let a = l.push(LATTICE_ROOT, 1, 0);
        let b1 = l.push(a, 2, 3);
        let b2 = l.push(a, 3, 3);
        assert_eq!(l.backtrace(b1), vec![1, 2]);
        assert_eq!(l.backtrace(b2), vec![1, 3]);
        assert_eq!(l.len(), 3);
    }

    #[test]
    #[should_panic(expected = "dangling backpointer")]
    fn dangling_prev_panics() {
        let mut l = Lattice::new();
        l.push(5, 1, 0);
    }

    #[test]
    fn tape_records_only_while_recording() {
        let mut l = Lattice::new();
        l.record_start(42);
        l.advance_pop();
        l.record_emit(42, 7, 0, 1.0);
        assert!(l.tape.is_empty());
        assert_eq!(l.start_key, 0);
        l.clear();
        l.set_recording(true);
        l.record_start(42);
        l.advance_pop();
        l.record_emit(42, 7, 3, 1.0);
        l.record_eps(7, 9, 0, 1.5);
        assert_eq!(l.tape.len(), 2);
        assert_eq!(l.tape[0].src_pop, 0);
        assert_eq!(l.tape[0].dst_pop, 1);
        assert_eq!(l.tape[1].src_pop, 1);
        assert_eq!(l.tape[1].dst_pop, 1);
        // clear() drops the tape and switches recording back off.
        l.clear();
        assert!(l.tape.is_empty());
        assert!(!l.is_recording());
        assert_eq!(l.cur_pop, 0);
    }

    /// A minimal AM stub: every state final with weight 0.
    struct AllFinal;
    impl AmSource for AllFinal {
        fn start(&self) -> u32 {
            0
        }
        fn num_states(&self) -> usize {
            1 << 20
        }
        fn final_weight(&self, _s: u32) -> Option<f32> {
            Some(0.0)
        }
        fn state_addr(&self, _s: u32) -> u64 {
            0
        }
        fn for_each_arc(&self, _s: u32, _f: &mut dyn FnMut(crate::ArcVisit)) {}
    }

    fn key(am: u32, lm: u32) -> u64 {
        (u64::from(am) << 32) | u64::from(lm)
    }

    /// Hand-built diamond: start splits into two one-frame hypotheses
    /// (words 1 and 2) that rejoin at a shared final token.
    fn diamond(beam: f32) -> WordLattice {
        let mut tape = Lattice::new();
        tape.set_recording(true);
        tape.record_start(key(0, 0));
        tape.advance_pop();
        tape.record_emit(key(0, 0), key(1, 1), 1, 1.0);
        tape.record_emit(key(0, 0), key(2, 2), 2, 3.0);
        tape.advance_pop();
        tape.record_emit(key(1, 1), key(3, 3), 0, 2.0);
        tape.record_emit(key(2, 2), key(3, 3), 0, 4.0);
        let mut finals = TokenStore::default();
        finals.insert(
            key(3, 3),
            crate::search::Token {
                cost: 2.0,
                lat: LATTICE_ROOT,
            },
        );
        WordLattice::build(&AllFinal, &tape, &finals, beam)
    }

    #[test]
    fn diamond_builds_exact_scores_and_nbest() {
        let lat = diamond(10.0);
        assert_eq!(lat.num_frames(), 2);
        assert_eq!(lat.num_nodes(), 4);
        assert_eq!(lat.num_arcs(), 4);
        assert_eq!(lat.best_cost(), 2.0);
        // Node forward costs are the recorded relaxation minima.
        let n3 = lat.nodes().iter().find(|n| n.key == key(3, 3)).unwrap();
        assert_eq!(n3.forward, 2.0);
        assert_eq!(n3.backward, 0.0);
        // Both paths, best first, deterministic.
        let nb = lat.nbest(5);
        assert_eq!(nb.len(), 2);
        assert_eq!(nb[0], (vec![1], 2.0));
        assert_eq!(nb[1], (vec![2], 4.0));
        // Path slack: worst arc is on the cost-4 path.
        assert!((lat.max_path_slack() - 2.0).abs() < 1e-6);
        // Posteriors: the two branches sum to ~1 on both frames.
        for f in 0..2 {
            assert!((lat.emitting_posterior_sum(f) - 1.0).abs() < 1e-4);
        }
        // The cheaper branch dominates the posterior mass.
        let a1 = lat.arcs().iter().find(|a| a.word == 1).unwrap();
        let a2 = lat.arcs().iter().find(|a| a.word == 2).unwrap();
        assert!(a1.posterior > a2.posterior);
        // Best-path detail carries the word, frame, and confidence.
        let detail = lat.best_path_detail();
        assert_eq!(detail.len(), 1);
        assert_eq!(detail[0].word, 1);
        assert_eq!(detail[0].frame, 0);
        assert!((detail[0].confidence - a1.posterior).abs() < 1e-6);
    }

    #[test]
    fn lattice_beam_prunes_the_costly_branch() {
        let lat = diamond(1.0);
        // The word-2 branch is 2.0 over the best path: pruned.
        assert_eq!(lat.nbest(5), vec![(vec![1], 2.0)]);
        assert_eq!(lat.num_arcs(), 2);
        assert!(lat.max_path_slack() <= 1.0);
        // Every kept frame's posterior mass is the single survivor.
        for f in 0..2 {
            assert!((lat.emitting_posterior_sum(f) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn paths_within_enumerates_and_bounds() {
        let lat = diamond(10.0);
        let all = lat.paths_within(10.0, 10_000).unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[&vec![1u32]], 2.0);
        assert_eq!(all[&vec![2u32]], 4.0);
        let tight = lat.paths_within(3.0, 10_000).unwrap();
        assert_eq!(tight.len(), 1);
        // A zero budget reports incompleteness instead of lying.
        assert!(lat.paths_within(10.0, 0).is_none());
    }

    #[test]
    fn empty_lattice_is_sane() {
        let lat = WordLattice::empty();
        assert!(lat.is_empty());
        assert_eq!(lat.best_cost(), f32::INFINITY);
        assert_eq!(lat.nbest(3), Vec::<(Vec<WordId>, f32)>::new());
        assert!(lat.best_path_detail().is_empty());
        assert_eq!(lat.max_path_slack(), 0.0);
        assert!(lat.bit_identical(&WordLattice::empty()));
    }

    #[test]
    #[should_panic(expected = "n must be > 0")]
    fn nbest_zero_panics() {
        diamond(10.0).nbest(0);
    }

    #[test]
    fn bit_identical_detects_structural_difference() {
        let a = diamond(10.0);
        let b = diamond(1.0);
        assert!(a.bit_identical(&diamond(10.0)));
        assert!(!a.bit_identical(&b));
    }
}
