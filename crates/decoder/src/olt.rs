//! Software Offset Lookup Table (paper §3.1, Figure 7).
//!
//! The hardware OLT memoizes `(LM state, word id)` → arc-offset results
//! so repeated LM lookups skip the binary search over the state's
//! sorted word arcs. This is the decoder-side counterpart: the same
//! probe-per-lookup-step / install-on-resolve protocol as the
//! simulator's model (`unfold-sim`'s `OffsetLookupTable`), indexed by
//! `state XOR word` like the paper's table, so the two hit rates can be
//! cross-checked against each other (`fig07_offset_table`).
//!
//! Two deliberate deviations from the 6-byte hardware entry:
//!
//! * entries store the **full** `(state, word)` key instead of a 24-bit
//!   tag. Hardware tolerates tag aliasing because a false hit only
//!   mis-predicts an offset that the subsequent arc read validates; in
//!   software a false hit would return a wrong arc, so hits must be
//!   exact.
//! * the table is 4-way set-associative rather than direct-mapped —
//!   software pays nothing for the comparators, and associativity keeps
//!   small tables useful on conflict-heavy working sets.
//!
//! Because an entry caches exactly the word arc the binary search would
//! have found (destination + weight), a hit replays the *identical*
//! float arithmetic the miss path performs: decode output is
//! bit-identical with the table on or off. Only fetch statistics
//! change.

use unfold_wfst::{Label, StateId};

/// Associativity of the software OLT.
pub const OLT_WAYS: usize = 4;

#[derive(Debug, Clone, Copy)]
struct Entry {
    /// Generation stamp; an entry is live iff it matches the table's
    /// current generation (O(1) whole-table reset between utterances).
    gen: u32,
    state: StateId,
    word: Label,
    dest: StateId,
    weight: f32,
}

const DEAD: Entry = Entry {
    gen: 0,
    state: 0,
    word: 0,
    dest: 0,
    weight: 0.0,
};

/// Fixed-capacity, set-associative memo table for LM word-arc
/// resolutions. Capacity 0 disables it ([`SoftOlt::is_enabled`]).
#[derive(Debug, Clone)]
pub struct SoftOlt {
    entries: Vec<Entry>,
    /// Round-robin victim cursor per set.
    cursors: Vec<u8>,
    set_mask: u64,
    gen: u32,
}

impl Default for SoftOlt {
    /// A disabled (zero-capacity) table.
    fn default() -> Self {
        SoftOlt::new(0)
    }
}

impl SoftOlt {
    /// Builds a table with (at least) `entries` slots, rounded up to a
    /// power of two of at least [`OLT_WAYS`]; 0 builds a disabled table.
    pub fn new(entries: usize) -> Self {
        if entries == 0 {
            return SoftOlt {
                entries: Vec::new(),
                cursors: Vec::new(),
                set_mask: 0,
                gen: 1,
            };
        }
        let entries = entries.next_power_of_two().max(OLT_WAYS);
        let sets = entries / OLT_WAYS;
        SoftOlt {
            entries: vec![DEAD; entries],
            cursors: vec![0; sets],
            set_mask: sets as u64 - 1,
            gen: 1,
        }
    }

    /// Whether the table has any capacity.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        !self.entries.is_empty()
    }

    /// Number of slots.
    pub fn num_entries(&self) -> usize {
        self.entries.len()
    }

    /// Invalidates every entry in O(1) (generation bump). Called
    /// between utterances so per-utterance statistics do not depend on
    /// which worker's scratch decoded the previous utterance.
    pub fn reset(&mut self) {
        if self.gen == u32::MAX {
            self.entries.fill(DEAD);
            self.gen = 1;
        } else {
            self.gen += 1;
        }
    }

    /// The paper indexes "using the XOR of the LM state index and the
    /// word ID"; here that selects the set.
    #[inline]
    fn set_of(&self, state: StateId, word: Label) -> usize {
        ((u64::from(state) ^ u64::from(word)) & self.set_mask) as usize * OLT_WAYS
    }

    /// Looks up `(state, word)`; on a hit returns the cached word arc's
    /// `(destination, weight)`.
    #[inline]
    pub fn probe(&self, state: StateId, word: Label) -> Option<(StateId, f32)> {
        if !self.is_enabled() {
            return None;
        }
        let base = self.set_of(state, word);
        for e in &self.entries[base..base + OLT_WAYS] {
            if e.gen == self.gen && e.state == state && e.word == word {
                return Some((e.dest, e.weight));
            }
        }
        None
    }

    /// Installs a resolved word arc; returns whether a live entry was
    /// evicted. Prefers dead ways; otherwise round-robins the victim.
    pub fn insert(&mut self, state: StateId, word: Label, dest: StateId, weight: f32) -> bool {
        let base = self.set_of(state, word);
        let set = base / OLT_WAYS;
        let mut victim = None;
        for (i, e) in self.entries[base..base + OLT_WAYS].iter().enumerate() {
            if e.gen != self.gen {
                victim = Some((i, false));
                break;
            }
        }
        let (way, evicted) = victim.unwrap_or_else(|| {
            let w = self.cursors[set] as usize % OLT_WAYS;
            self.cursors[set] = self.cursors[set].wrapping_add(1);
            (w, true)
        });
        self.entries[base + way] = Entry {
            gen: self.gen,
            state,
            word,
            dest,
            weight,
        };
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_table_never_hits() {
        let mut t = SoftOlt::new(0);
        assert!(!t.is_enabled());
        assert_eq!(t.probe(1, 2), None);
        t.reset();
        assert_eq!(t.num_entries(), 0);
    }

    #[test]
    fn miss_then_insert_then_hit() {
        let mut t = SoftOlt::new(64);
        assert!(t.is_enabled());
        assert_eq!(t.probe(5, 9), None);
        assert!(!t.insert(5, 9, 42, 1.5), "empty set must not evict");
        assert_eq!(t.probe(5, 9), Some((42, 1.5)));
    }

    #[test]
    fn reset_invalidates_everything() {
        let mut t = SoftOlt::new(64);
        t.insert(5, 9, 42, 1.5);
        t.reset();
        assert_eq!(t.probe(5, 9), None);
    }

    #[test]
    fn capacity_rounds_up() {
        assert_eq!(SoftOlt::new(1).num_entries(), OLT_WAYS);
        assert_eq!(SoftOlt::new(100).num_entries(), 128);
    }

    #[test]
    fn aliasing_pairs_coexist_within_a_set() {
        // (1, 2) and (2, 1) share a set (same XOR) but are distinct
        // keys; associativity must keep both.
        let mut t = SoftOlt::new(OLT_WAYS); // a single set
        t.insert(1, 2, 10, 0.5);
        t.insert(2, 1, 20, 0.25);
        assert_eq!(t.probe(1, 2), Some((10, 0.5)));
        assert_eq!(t.probe(2, 1), Some((20, 0.25)));
    }

    #[test]
    fn full_set_evicts_round_robin() {
        let mut t = SoftOlt::new(OLT_WAYS); // one set, OLT_WAYS ways
                                            // Fill the set with keys of equal XOR (all map to set 0 anyway
                                            // with a single set).
        for i in 0..OLT_WAYS as u32 {
            assert!(!t.insert(i, i + 1, i, 0.0));
        }
        assert!(t.insert(99, 100, 7, 0.0), "full set must evict");
    }

    #[test]
    fn deterministic_across_identical_histories() {
        let drive = || {
            let mut t = SoftOlt::new(16);
            let mut hits = 0;
            for i in 0..200u32 {
                let (s, w) = (i % 13, i % 7 + 1);
                if t.probe(s, w).is_some() {
                    hits += 1;
                } else {
                    t.insert(s, w, s + w, 0.125);
                }
            }
            hits
        };
        assert_eq!(drive(), drive());
    }
}
