//! The on-the-fly composition decoder — the search UNFOLD accelerates.
//!
//! Tokens are (AM state, LM state) pairs (paper Figure 3c). The AM
//! drives the search; when a cross-word AM arc is traversed, the word id
//! is resolved in the LM: a binary search over the state's sorted arcs,
//! walking back-off arcs on misses. Preemptive pruning (§3.3) abandons a
//! hypothesis *between back-off hops* once its accumulated cost can no
//! longer survive the beam — "it is guaranteed that we only discard the
//! hypotheses that would be pruned away later" because back-off weights
//! only ever add cost at the point of comparison.
//!
//! Two decode-time accelerations ride on top of the search, neither of
//! which changes its output:
//!
//! * a software Offset Lookup Table ([`crate::olt::SoftOlt`], §3.1)
//!   memoizing word-arc resolutions, consulted at every LM lookup step;
//! * a reusable [`DecodeScratch`] holding every frame-loop structure,
//!   so steady-state decoding allocates nothing.

use unfold_am::AcousticScores;
use unfold_wfst::{Label, Semiring, StateId, TropicalWeight, EPSILON};

use crate::config::{DecodeConfig, DecodeKernel, DecodeResult, DecodeStats};
use crate::lattice::{Lattice, WordLattice, COMPACT_ENTRY_BYTES, LATTICE_ROOT};
use crate::olt::SoftOlt;
use crate::scratch::{DecodeScratch, SessionScratch, WorkScratch};
use crate::search::{prune_threshold_store, Token, TokenStore};
use crate::sources::{addr, AmSource, Fetch, LmSource, MAX_BACKOFF_HOPS};
use crate::trace::{DecodeStage, TraceSink};

/// Token key: AM state in the high half, LM state in the low half —
/// also how the accelerator indexes its token hash tables ("the hash
/// tables are indexed through a combination of IDs of AM and LM states",
/// §3.2).
#[inline]
pub(crate) fn token_key(am: StateId, lm: StateId) -> u64 {
    (u64::from(am) << 32) | u64::from(lm)
}

#[inline]
pub(crate) fn split(key: u64) -> (StateId, StateId) {
    ((key >> 32) as StateId, key as StateId)
}

/// Beam-search decoder with on-the-fly AM ∘ LM composition.
#[derive(Debug, Clone)]
pub struct OtfDecoder {
    config: DecodeConfig,
}

impl OtfDecoder {
    /// Creates a decoder with the given beam configuration.
    pub fn new(config: DecodeConfig) -> Self {
        OtfDecoder { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &DecodeConfig {
        &self.config
    }

    /// Decodes and returns up to `k` distinct word sequences among the
    /// surviving complete hypotheses, best first. The 1-best entry
    /// equals [`OtfDecoder::decode`]'s result. Distinctness is by word
    /// sequence: hypotheses that differ only in their (AM, LM) state
    /// pair are merged, keeping the cheaper cost.
    ///
    /// This is the hypothesis list a two-pass rescorer consumes (the
    /// paper's §6 contrasts one-pass search — what UNFOLD implements —
    /// against lattice + rescore pipelines).
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn decode_nbest<A: AmSource + ?Sized, L: LmSource + ?Sized>(
        &self,
        am: &A,
        lm: &L,
        scores: &AcousticScores,
        k: usize,
        sink: &mut dyn TraceSink,
    ) -> Vec<(Vec<Label>, f32)> {
        self.decode_nbest_with(am, lm, scores, k, &mut DecodeScratch::new(), sink)
    }

    /// [`OtfDecoder::decode_nbest`] with caller-owned working memory.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn decode_nbest_with<A: AmSource + ?Sized, L: LmSource + ?Sized>(
        &self,
        am: &A,
        lm: &L,
        scores: &AcousticScores,
        k: usize,
        scratch: &mut DecodeScratch,
        sink: &mut dyn TraceSink,
    ) -> Vec<(Vec<Label>, f32)> {
        assert!(k > 0, "decode_nbest: k must be positive");
        let (res, lattice) = self.decode_lattice_with(am, lm, scores, scratch, sink);
        if !res.is_complete() {
            return Vec::new();
        }
        // Entry 0 is the exact Viterbi result (bit-identical to
        // `decode`); the remaining entries come out of the pruned word
        // lattice, skipping the duplicate of the 1-best sequence.
        let mut out: Vec<(Vec<Label>, f32)> = Vec::with_capacity(k);
        out.push((res.words.clone(), res.cost));
        if k > 1 {
            for (words, cost) in lattice.nbest(k) {
                if words == res.words {
                    continue;
                }
                // Lattice arc weights are derived from the exact search
                // scores, but clamp anyway so the list stays sorted even
                // under f32 re-association.
                let floor = out.last().map(|e| e.1).unwrap_or(res.cost);
                out.push((words, cost.max(floor)));
                if out.len() == k {
                    break;
                }
            }
        }
        out
    }

    /// Decodes one utterance and returns both the 1-best result and the
    /// pruned exact word lattice (all hypotheses within
    /// [`DecodeConfig::lattice_beam`] of the best complete path).
    ///
    /// The [`DecodeResult`] is bit-identical to [`OtfDecoder::decode`]:
    /// lattice recording is contents-neutral for the search.
    pub fn decode_lattice<A: AmSource + ?Sized, L: LmSource + ?Sized>(
        &self,
        am: &A,
        lm: &L,
        scores: &AcousticScores,
        sink: &mut dyn TraceSink,
    ) -> (DecodeResult, WordLattice) {
        self.decode_lattice_with(am, lm, scores, &mut DecodeScratch::new(), sink)
    }

    /// [`OtfDecoder::decode_lattice`] with caller-owned working memory.
    pub fn decode_lattice_with<A: AmSource + ?Sized, L: LmSource + ?Sized>(
        &self,
        am: &A,
        lm: &L,
        scores: &AcousticScores,
        scratch: &mut DecodeScratch,
        sink: &mut dyn TraceSink,
    ) -> (DecodeResult, WordLattice) {
        let mut stats = DecodeStats::default();
        self.run(am, lm, scores, scratch, sink, &mut stats, true);
        let res = finish(
            am,
            &scratch.session.cur,
            &scratch.session.lattice,
            stats,
            sink,
        );
        sink.stage_enter(DecodeStage::Lattice);
        let lattice = if res.is_complete() {
            WordLattice::build(
                am,
                &scratch.session.lattice,
                &scratch.session.cur,
                self.config.lattice_beam,
            )
        } else {
            WordLattice::empty()
        };
        sink.stage_exit(DecodeStage::Lattice);
        (res, lattice)
    }

    /// Decodes one utterance by composing `am` and `lm` on demand.
    ///
    /// Works with any [`AmSource`]/[`LmSource`] pair: uncompressed
    /// [`unfold_wfst::Wfst`]s or the bit-packed compressed models.
    ///
    /// # Panics
    /// Panics if the LM cannot resolve a word the AM emits (malformed
    /// LM: missing unigram coverage).
    pub fn decode<A: AmSource + ?Sized, L: LmSource + ?Sized>(
        &self,
        am: &A,
        lm: &L,
        scores: &AcousticScores,
        sink: &mut dyn TraceSink,
    ) -> DecodeResult {
        self.decode_with(am, lm, scores, &mut DecodeScratch::new(), sink)
    }

    /// [`OtfDecoder::decode`] with caller-owned working memory: reusing
    /// one [`DecodeScratch`] across utterances eliminates steady-state
    /// allocation, and the result is bit-identical to a fresh-scratch
    /// decode.
    pub fn decode_with<A: AmSource + ?Sized, L: LmSource + ?Sized>(
        &self,
        am: &A,
        lm: &L,
        scores: &AcousticScores,
        scratch: &mut DecodeScratch,
        sink: &mut dyn TraceSink,
    ) -> DecodeResult {
        let mut stats = DecodeStats::default();
        self.run(am, lm, scores, scratch, sink, &mut stats, false);
        finish(
            am,
            &scratch.session.cur,
            &scratch.session.lattice,
            stats,
            sink,
        )
    }

    /// Shared search loop: seeds the start token, runs the initial
    /// closure, expands every frame. The surviving population is left
    /// in `scratch.cur`. When `record` is set, the expansion tape is
    /// captured for [`WordLattice::build`] — contents-neutral for the
    /// search itself.
    #[allow(clippy::too_many_arguments)]
    fn run<A: AmSource + ?Sized, L: LmSource + ?Sized>(
        &self,
        am: &A,
        lm: &L,
        scores: &AcousticScores,
        scratch: &mut DecodeScratch,
        sink: &mut dyn TraceSink,
        stats: &mut DecodeStats,
        record: bool,
    ) {
        scratch.begin(&self.config);
        scratch.session.lattice.set_recording(record);
        scratch.work.ensure_validated(am, lm, scores.num_pdfs());
        seed_closure(
            &self.config,
            am,
            lm,
            &mut scratch.session,
            &mut scratch.work,
            sink,
            stats,
        );
        for t in 0..scores.num_frames() {
            expand_frame(
                &self.config,
                am,
                lm,
                &mut scratch.session,
                &mut scratch.work,
                scores.frame(t),
                t,
                sink,
                stats,
            );
        }
    }
}

/// Seeds the start token into `session.cur` and runs the initial
/// non-emitting closure under the configured kernel. Shared by
/// [`OtfDecoder`] and [`crate::streaming::StreamSession`].
pub(crate) fn seed_closure<A: AmSource + ?Sized, L: LmSource + ?Sized>(
    config: &DecodeConfig,
    am: &A,
    lm: &L,
    session: &mut SessionScratch,
    work: &mut WorkScratch,
    sink: &mut dyn TraceSink,
    stats: &mut DecodeStats,
) {
    session.cur.insert(
        token_key(am.start(), lm.start()),
        Token {
            cost: 0.0,
            lat: LATTICE_ROOT,
        },
    );
    session
        .lattice
        .record_start(token_key(am.start(), lm.start()));
    match config.kernel {
        DecodeKernel::Legacy => epsilon_closure(
            config,
            am,
            lm,
            &mut session.cur,
            &mut work.worklist,
            &mut work.eps_local,
            &mut work.probes,
            &mut work.olt,
            &mut session.bias_cache,
            &mut session.lattice,
            0,
            f32::INFINITY,
            sink,
            stats,
        ),
        DecodeKernel::Soa => {
            // The streaming path seeds before the first frame's
            // `ensure_validated`, so the stage binds here too.
            work.bind_arc_stage(am);
            crate::kernel::epsilon_closure_soa(
                config,
                am,
                lm,
                &mut session.cur,
                &mut work.worklist_idx,
                &mut work.eps_local,
                &mut work.probes,
                &mut work.olt,
                &mut session.bias_cache,
                &mut work.arc_stage,
                &mut session.lattice,
                0,
                f32::INFINITY,
                sink,
                stats,
            )
        }
    }
}

/// Processes one frame under the configured kernel: prune, expand
/// emitting arcs against the frame's cost row (`costs[pdf - 1]`), then
/// run the non-emitting closure. The population entering the frame is
/// `session.cur`; the surviving population is swapped back into
/// `session.cur` on return. Shared by [`OtfDecoder::decode`] and
/// [`crate::streaming::StreamSession`] — the latter lends a (possibly
/// different) worker's `work` buffers on every call, which is safe
/// because nothing in [`WorkScratch`] carries search state across a
/// frame boundary.
///
/// Both kernels produce the identical ordered [`TraceSink`] event
/// stream and [`DecodeStats`] — pinned by the `soa_identity` proptests
/// and verify-matrix check.
#[allow(clippy::too_many_arguments)]
pub(crate) fn expand_frame<A: AmSource + ?Sized, L: LmSource + ?Sized>(
    config: &DecodeConfig,
    am: &A,
    lm: &L,
    session: &mut SessionScratch,
    work: &mut WorkScratch,
    costs: &[f32],
    t: usize,
    sink: &mut dyn TraceSink,
    stats: &mut DecodeStats,
) {
    match config.kernel {
        DecodeKernel::Legacy => {
            expand_frame_legacy(config, am, lm, session, work, costs, t, sink, stats);
        }
        DecodeKernel::Soa => {
            crate::kernel::expand_frame_soa(config, am, lm, session, work, costs, t, sink, stats);
        }
    }
}

/// The scalar reference frame loop (see [`DecodeKernel::Legacy`]):
/// per-token beam test inside the expansion walk, `get`-then-`insert`
/// relaxation. Kept byte-for-byte as the differential baseline the SoA
/// kernel is pinned against.
#[allow(clippy::too_many_arguments)]
fn expand_frame_legacy<A: AmSource + ?Sized, L: LmSource + ?Sized>(
    config: &DecodeConfig,
    am: &A,
    lm: &L,
    session: &mut SessionScratch,
    work: &mut WorkScratch,
    costs: &[f32],
    t: usize,
    sink: &mut dyn TraceSink,
    stats: &mut DecodeStats,
) {
    work.ensure_validated(am, lm, costs.len());
    session.lattice.advance_pop();
    sink.frame_start(t, session.cur.len());
    stats.frames += 1;
    stats.max_active = stats.max_active.max(session.cur.len());
    stats.total_active += session.cur.len() as u64;

    sink.stage_enter(DecodeStage::Pruning);
    let thr = prune_threshold_store(
        &session.cur,
        config.beam,
        config.max_active,
        &mut work.prune_costs,
    );
    sink.stage_switch(DecodeStage::Pruning, DecodeStage::ArcExpansion);
    session.next.clear();
    let mut next_best = f32::INFINITY;

    {
        let cur = &session.cur;
        let next = &mut session.next;
        let olt = &mut work.olt;
        let bias = &mut session.bias_cache;
        let probes = &mut work.probes;
        let lattice = &mut session.lattice;
        for (k, tok) in cur.iter() {
            if tok.cost > thr {
                stats.tokens_pruned += 1;
                continue;
            }
            let (am_s, lm_s) = split(k);
            sink.state_fetch(am.state_addr(am_s));
            am.for_each_arc(am_s, &mut |v| {
                sink.am_arc_fetch(v.addr, v.bytes);
                let arc = v.arc;
                if arc.ilabel == EPSILON {
                    return; // non-emitting: closure phase
                }
                sink.acoustic_fetch(t, arc.ilabel);
                // Validated once per model in `ensure_validated`.
                debug_assert!(
                    (arc.ilabel as usize) <= costs.len(),
                    "pdf {} beyond the {}-wide score row",
                    arc.ilabel,
                    costs.len()
                );
                // Tropical ⊗-chain — compiles to the same left-to-right
                // f32 additions as `tok.cost + arc.weight + costs[..]`,
                // so scores stay bit-identical to the pre-semiring code.
                let base = TropicalWeight::from_cost(tok.cost)
                    .times(TropicalWeight::from_cost(arc.weight))
                    .times(TropicalWeight::from_cost(costs[arc.ilabel as usize - 1]))
                    .value();
                stats.tokens_created += 1;
                if base > next_best + config.beam {
                    stats.tokens_pruned += 1;
                    return;
                }
                let (lm_next, cost, word) = if arc.olabel != EPSILON {
                    let walk_thr = if config.preemptive_pruning {
                        next_best + config.beam
                    } else {
                        f32::INFINITY
                    };
                    match lm_walk(
                        lm, lm_s, arc.olabel, base, walk_thr, olt, bias, probes, sink, stats,
                    ) {
                        Some((dest, c)) => (dest, c, arc.olabel),
                        None => return,
                    }
                } else {
                    (lm_s, base, EPSILON)
                };
                next_best = TropicalWeight::from_cost(cost)
                    .plus(TropicalWeight::from_cost(next_best))
                    .value();
                lattice.record_emit(k, token_key(arc.nextstate, lm_next), word, cost);
                relax(
                    next,
                    token_key(arc.nextstate, lm_next),
                    cost,
                    tok.lat,
                    word,
                    t as u32,
                    lattice,
                    sink,
                );
            });
        }
    }

    epsilon_closure(
        config,
        am,
        lm,
        &mut session.next,
        &mut work.worklist,
        &mut work.eps_local,
        &mut work.probes,
        &mut work.olt,
        &mut session.bias_cache,
        &mut session.lattice,
        t as u32,
        next_best + config.beam,
        sink,
        stats,
    );
    sink.stage_exit(DecodeStage::ArcExpansion);

    let mut best = TropicalWeight::zero();
    let mut worst = f32::INFINITY;
    for tok in session.next.values() {
        best = TropicalWeight::from_cost(tok.cost).plus(best);
        worst = if worst.is_finite() {
            worst.max(tok.cost)
        } else {
            tok.cost
        };
    }
    let best = best.value();
    sink.frame_end(t, session.next.len(), best, worst);
    std::mem::swap(&mut session.cur, &mut session.next);
}

/// Relaxes non-emitting AM arcs (including cross-word transitions,
/// which trigger LM walks) to a fixed point. `worklist`, `eps_local`,
/// and `probes` are caller-owned buffers (cleared here) so the closure
/// allocates nothing in steady state.
#[allow(clippy::too_many_arguments)]
pub(crate) fn epsilon_closure<A: AmSource + ?Sized, L: LmSource + ?Sized>(
    config: &DecodeConfig,
    am: &A,
    lm: &L,
    tokens: &mut TokenStore,
    worklist: &mut Vec<u64>,
    eps_local: &mut Vec<(StateId, f32, Label)>,
    probes: &mut Vec<Fetch>,
    olt: &mut SoftOlt,
    bias: &mut SoftOlt,
    lattice: &mut Lattice,
    frame: u32,
    thr: f32,
    sink: &mut dyn TraceSink,
    stats: &mut DecodeStats,
) {
    worklist.clear();
    worklist.extend(tokens.keys());
    let mut guard = 0u64;
    while let Some(k) = worklist.pop() {
        guard += 1;
        assert!(
            guard < 100_000_000,
            "epsilon closure diverged: negative cycle?"
        );
        let tok = match tokens.get(k) {
            Some(t) => t,
            None => continue,
        };
        if tok.cost > thr {
            continue;
        }
        let (am_s, lm_s) = split(k);
        eps_local.clear();
        am.for_each_arc(am_s, &mut |v| {
            if v.arc.ilabel != EPSILON {
                return;
            }
            sink.am_arc_fetch(v.addr, v.bytes);
            stats.epsilon_expansions += 1;
            eps_local.push((
                v.arc.nextstate,
                TropicalWeight::from_cost(tok.cost)
                    .times(TropicalWeight::from_cost(v.arc.weight))
                    .value(),
                v.arc.olabel,
            ));
        });
        for &(am_next, base, word) in eps_local.iter() {
            stats.tokens_created += 1;
            let (lm_next, cost, out_word) = if word != EPSILON {
                let walk_thr = if config.preemptive_pruning {
                    thr
                } else {
                    f32::INFINITY
                };
                match lm_walk(
                    lm, lm_s, word, base, walk_thr, olt, bias, probes, sink, stats,
                ) {
                    Some((dest, c)) => (dest, c, word),
                    None => continue,
                }
            } else {
                (lm_s, base, EPSILON)
            };
            lattice.record_eps(k, token_key(am_next, lm_next), out_word, cost);
            if relax(
                tokens,
                token_key(am_next, lm_next),
                cost,
                tok.lat,
                out_word,
                frame,
                lattice,
                sink,
            ) {
                worklist.push(token_key(am_next, lm_next));
            }
        }
    }
}

/// Resolves `word` from `lm_state`, carrying the hypothesis cost `base`
/// through the back-off chain. Returns `None` if preemptive pruning
/// abandoned the hypothesis (cost crossed `thr` mid-walk).
///
/// At every step the software OLT is consulted first (when enabled): a
/// hit returns the memoized word arc and skips the binary search — the
/// cached `(dest, weight)` is exactly what the search would have found,
/// so the returned cost is bit-identical either way. A resolution that
/// came from the search is installed, mirroring the hardware table's
/// probe/install protocol (only *resolving* states install; back-off
/// intermediates never do).
///
/// When the LM is a composing adapter (`lm.has_memo_ctx()`), the walk
/// runs the paper's two-layer scheme: `lm_state` is split once into
/// `(base state, context)` and the chain walks *base* states, so the
/// worker-shared OLT keeps memoizing pure base-LM resolutions, valid
/// across every session on that LM. The per-session `bias` table is
/// the dynamic layer: it caches the *joined* `(composite dest, biased
/// weight)` under the composite key, and is probed before the shared
/// layer at each hop. Cached join weights are hop-independent (the
/// accumulated back-off cost stays in `cost`), so a hit at any hop
/// returns bit-identically to finishing the walk. For plain LMs both
/// hooks are identities, `bias` is never touched, and this compiles to
/// exactly the un-composed walk.
///
/// # Panics
/// Panics if the LM has no back-off arc on a state that misses `word`
/// (a malformed model).
#[allow(clippy::too_many_arguments)]
pub(crate) fn lm_walk<L: LmSource + ?Sized>(
    lm: &L,
    lm_state: StateId,
    word: Label,
    base: f32,
    thr: f32,
    olt: &mut SoftOlt,
    bias: &mut SoftOlt,
    probes: &mut Vec<Fetch>,
    sink: &mut dyn TraceSink,
    stats: &mut DecodeStats,
) -> Option<(StateId, f32)> {
    let (mut state, ctx) = lm.memo_split(lm_state);
    let session_memo = lm.has_memo_ctx() && bias.is_enabled();
    let mut cost = base;
    let mut hops = 0u32;
    stats.lm_lookups += 1;
    sink.stage_enter(DecodeStage::LmLookup);
    loop {
        sink.lm_lookup(state, word);
        sink.state_fetch(lm.state_addr(state));
        if session_memo {
            stats.bias_probes += 1;
            if let Some((dest, weight)) = bias.probe(lm.memo_pack(ctx, state), word) {
                stats.bias_hits += 1;
                sink.lm_resolved(state, word, hops);
                sink.stage_exit(DecodeStage::LmLookup);
                return Some((dest, cost + weight));
            }
        }
        if olt.is_enabled() {
            stats.olt_probes += 1;
            if let Some((dest, weight)) = olt.probe(state, word) {
                stats.olt_hits += 1;
                sink.olt_probe(state, word, true);
                sink.lm_resolved(state, word, hops);
                let (dest, weight) = lm.memo_join(ctx, word, dest, weight);
                if session_memo {
                    let evicted = bias.insert(lm.memo_pack(ctx, state), word, dest, weight);
                    stats.bias_installs += 1;
                    if evicted {
                        stats.bias_evictions += 1;
                    }
                }
                sink.stage_exit(DecodeStage::LmLookup);
                return Some((dest, cost + weight));
            }
            sink.olt_probe(state, word, false);
        }
        probes.clear();
        let found = lm.lookup_word_into(state, word, probes);
        stats.lm_fetches += probes.len() as u64;
        for &(a, b) in probes.iter() {
            sink.lm_arc_fetch(a, b);
        }
        if let Some(arc) = found {
            sink.lm_resolved(state, word, hops);
            if olt.is_enabled() {
                let evicted = olt.insert(state, word, arc.nextstate, arc.weight);
                stats.olt_installs += 1;
                if evicted {
                    stats.olt_evictions += 1;
                }
                sink.olt_install(evicted);
            }
            let (dest, weight) = lm.memo_join(ctx, word, arc.nextstate, arc.weight);
            if session_memo {
                let evicted = bias.insert(lm.memo_pack(ctx, state), word, dest, weight);
                stats.bias_installs += 1;
                if evicted {
                    stats.bias_evictions += 1;
                }
            }
            sink.stage_exit(DecodeStage::LmLookup);
            return Some((dest, cost + weight));
        }
        let (back, fetch) = lm
            .backoff(state)
            .unwrap_or_else(|| panic!("LM state {state} misses word {word} and has no back-off"));
        sink.lm_arc_fetch(fetch.0, fetch.1);
        stats.lm_fetches += 1;
        stats.backoff_hops += 1;
        cost += back.weight;
        hops += 1;
        // Chain termination validated once per model in
        // `ensure_validated`.
        debug_assert!(hops <= MAX_BACKOFF_HOPS, "back-off chain too long");
        // §3.3: "the Arc Issuer updates and checks the likelihood of a
        // hypothesis after traversing a back-off arc".
        if cost > thr {
            stats.preemptive_prunes += 1;
            sink.preemptive_prune();
            sink.stage_exit(DecodeStage::LmLookup);
            return None;
        }
        state = back.nextstate;
    }
}

/// Inserts/improves a token; returns whether the store changed.
#[allow(clippy::too_many_arguments)]
pub(crate) fn relax(
    map: &mut TokenStore,
    k: u64,
    cost: f32,
    parent_lat: u32,
    word: Label,
    frame: u32,
    lattice: &mut Lattice,
    sink: &mut dyn TraceSink,
) -> bool {
    let improved = match map.get(k) {
        Some(existing) => cost < existing.cost,
        None => true,
    };
    if !improved {
        return false;
    }
    let lat = if word != EPSILON {
        let idx = lattice.push(parent_lat, word, frame);
        sink.token_store(
            addr::TOKEN_BASE + u64::from(idx) * u64::from(COMPACT_ENTRY_BYTES),
            COMPACT_ENTRY_BYTES,
        );
        idx
    } else {
        parent_lat
    };
    sink.hash_insert(k);
    map.insert(k, Token { cost, lat });
    true
}

/// Selects the best token whose AM state is final and backtraces it.
pub(crate) fn finish<A: AmSource + ?Sized>(
    am: &A,
    tokens: &TokenStore,
    lattice: &Lattice,
    stats: DecodeStats,
    sink: &mut dyn TraceSink,
) -> DecodeResult {
    sink.stage_enter(DecodeStage::Lattice);
    let mut best_cost = f32::INFINITY;
    let mut best_lat = LATTICE_ROOT;
    for (k, tok) in tokens.iter() {
        let (am_s, _) = split(k);
        if let Some(fw) = am.final_weight(am_s) {
            let total = tok.cost + fw;
            if total < best_cost {
                best_cost = total;
                best_lat = tok.lat;
            }
        }
    }
    let (words, word_frames) = if best_cost.is_finite() {
        let spanned = lattice.backtrace_spanned(best_lat);
        (
            spanned.iter().map(|&(w, _)| w).collect(),
            spanned.iter().map(|&(_, f)| f).collect(),
        )
    } else {
        (Vec::new(), Vec::new())
    };
    sink.stage_exit(DecodeStage::Lattice);
    DecodeResult {
        words,
        word_frames,
        cost: best_cost,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{CountingSink, NullSink};
    use unfold_am::{build_am, synthesize_utterance, HmmTopology, Lexicon, NoiseModel};
    use unfold_compress::{CompressedAm, CompressedLm};
    use unfold_lm::{lm_to_wfst, CorpusSpec, DiscountConfig, NGramModel};
    use unfold_wfst::Wfst;

    fn setup() -> (Lexicon, Wfst, Wfst) {
        let lex = Lexicon::generate(60, 25, 4);
        let am = build_am(&lex, HmmTopology::Kaldi3State);
        let spec = CorpusSpec {
            vocab_size: 60,
            num_sentences: 400,
            ..Default::default()
        };
        let model = NGramModel::train(&spec.generate(5), 60, DiscountConfig::default());
        let lm = lm_to_wfst(&model);
        (lex, am.fst, lm)
    }

    #[test]
    fn decodes_clean_utterance_exactly() {
        let (lex, am, lm) = setup();
        let truth = vec![7u32, 3, 15, 2];
        let utt = synthesize_utterance(
            &truth,
            &lex,
            HmmTopology::Kaldi3State,
            &NoiseModel::clean(),
            11,
        );
        let dec = OtfDecoder::new(DecodeConfig::default());
        let res = dec.decode(&am, &lm, &utt.scores, &mut NullSink);
        assert!(res.is_complete());
        assert_eq!(res.words, truth);
    }

    #[test]
    fn lm_traffic_is_reported() {
        let (lex, am, lm) = setup();
        let utt = synthesize_utterance(
            &[1, 2, 3],
            &lex,
            HmmTopology::Kaldi3State,
            &NoiseModel::clean(),
            3,
        );
        let dec = OtfDecoder::new(DecodeConfig::default());
        let mut sink = CountingSink::default();
        let res = dec.decode(&am, &lm, &utt.scores, &mut sink);
        assert!(
            res.stats.lm_lookups > 0,
            "cross-word arcs must trigger LM lookups"
        );
        assert!(res.stats.lm_fetches >= res.stats.lm_lookups);
        assert!(sink.lm_arc_fetches > 0);
        assert!(sink.lm_lookups >= res.stats.lm_lookups);
    }

    #[test]
    fn compressed_models_decode_identically_modulo_quantization() {
        let (lex, am, lm) = setup();
        let cam = CompressedAm::compress(&am, 64, 0);
        let clm = CompressedLm::compress(&lm, 64, 0);
        let truth = vec![4u32, 8, 20];
        let utt = synthesize_utterance(
            &truth,
            &lex,
            HmmTopology::Kaldi3State,
            &NoiseModel::clean(),
            17,
        );
        let dec = OtfDecoder::new(DecodeConfig::default());
        let plain = dec.decode(&am, &lm, &utt.scores, &mut NullSink);
        let comp = dec.decode(&cam, &clm, &utt.scores, &mut NullSink);
        assert_eq!(plain.words, truth);
        assert_eq!(
            comp.words, truth,
            "quantization must not change a clean decode"
        );
        assert!((plain.cost - comp.cost).abs() < 2.0);
    }

    #[test]
    fn preemptive_pruning_only_discards_doomed_hypotheses() {
        // With and without preemptive pruning the decoded words and the
        // final cost must match — the pruned hypotheses were going to
        // lose anyway (§3.3's guarantee).
        let (lex, am, lm) = setup();
        // A long, rare-word utterance under a tight beam: back-off
        // walks start near the threshold, so the §3.3 check fires.
        let words = [55u32, 58, 33, 59, 41, 60, 47, 52];
        let noise = NoiseModel {
            noise_sigma: 1.3,
            ..NoiseModel::default()
        };
        let utt = synthesize_utterance(&words, &lex, HmmTopology::Kaldi3State, &noise, 23);
        let cfg = DecodeConfig::builder().beam(8.0).build().unwrap();
        let on = OtfDecoder::new(cfg.to_builder().preemptive_pruning(true).build().unwrap())
            .decode(&am, &lm, &utt.scores, &mut NullSink);
        let off = OtfDecoder::new(cfg.to_builder().preemptive_pruning(false).build().unwrap())
            .decode(&am, &lm, &utt.scores, &mut NullSink);
        assert_eq!(on.words, off.words);
        assert!((on.cost - off.cost).abs() < 1e-4);
        assert!(on.stats.preemptive_prunes > 0, "pruning never fired");
        assert_eq!(off.stats.preemptive_prunes, 0);
        assert!(on.stats.lm_fetches <= off.stats.lm_fetches);
    }

    #[test]
    fn deterministic_across_runs() {
        let (lex, am, lm) = setup();
        let utt = synthesize_utterance(
            &[2, 4, 6],
            &lex,
            HmmTopology::Kaldi3State,
            &NoiseModel::default(),
            13,
        );
        let dec = OtfDecoder::new(DecodeConfig::default());
        let a = dec.decode(&am, &lm, &utt.scores, &mut NullSink);
        let b = dec.decode(&am, &lm, &utt.scores, &mut NullSink);
        assert_eq!(a.words, b.words);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn backoff_hops_occur_on_real_workloads() {
        let (lex, am, lm) = setup();
        // Rare-word sequences are unlikely to have kept trigrams.
        let utt = synthesize_utterance(
            &[55, 58, 59, 60],
            &lex,
            HmmTopology::Kaldi3State,
            &NoiseModel::clean(),
            31,
        );
        let dec = OtfDecoder::new(DecodeConfig::default());
        let res = dec.decode(&am, &lm, &utt.scores, &mut NullSink);
        assert!(res.stats.backoff_hops > 0, "no back-off exercised");
    }

    #[test]
    fn scratch_reuse_is_bit_identical() {
        let (lex, am, lm) = setup();
        let utts: Vec<_> = [(vec![7u32, 3, 15, 2], 11u64), (vec![55, 58, 59, 60], 31)]
            .into_iter()
            .map(|(w, seed)| {
                synthesize_utterance(
                    &w,
                    &lex,
                    HmmTopology::Kaldi3State,
                    &NoiseModel::default(),
                    seed,
                )
            })
            .collect();
        let dec = OtfDecoder::new(DecodeConfig::default());
        let fresh: Vec<_> = utts
            .iter()
            .map(|u| dec.decode(&am, &lm, &u.scores, &mut NullSink))
            .collect();
        let mut scratch = DecodeScratch::new();
        for (u, want) in utts.iter().zip(&fresh) {
            let got = dec.decode_with(&am, &lm, &u.scores, &mut scratch, &mut NullSink);
            assert_eq!(got.words, want.words);
            assert_eq!(got.cost.to_bits(), want.cost.to_bits());
            assert_eq!(got.stats, want.stats, "warm scratch must not perturb stats");
        }
    }

    #[test]
    fn olt_on_matches_olt_off_bit_for_bit() {
        let (lex, am, lm) = setup();
        let utt = synthesize_utterance(
            &[55, 58, 33, 59, 41, 60],
            &lex,
            HmmTopology::Kaldi3State,
            &NoiseModel::default(),
            29,
        );
        let off =
            OtfDecoder::new(DecodeConfig::default()).decode(&am, &lm, &utt.scores, &mut NullSink);
        assert_eq!(off.stats.olt_probes, 0, "disabled table must not probe");
        for entries in [64usize, 1024] {
            let on = OtfDecoder::new(
                DecodeConfig::builder()
                    .olt_entries(entries)
                    .build()
                    .unwrap(),
            )
            .decode(&am, &lm, &utt.scores, &mut NullSink);
            assert_eq!(on.words, off.words);
            assert_eq!(on.cost.to_bits(), off.cost.to_bits());
            // Search behavior is untouched...
            assert_eq!(on.stats.frames, off.stats.frames);
            assert_eq!(on.stats.tokens_created, off.stats.tokens_created);
            assert_eq!(on.stats.lm_lookups, off.stats.lm_lookups);
            assert_eq!(on.stats.backoff_hops, off.stats.backoff_hops);
            // ...only the fetch statistics change.
            assert!(on.stats.olt_probes > 0);
            assert!(on.stats.olt_hits > 0, "a real workload must repeat lookups");
            assert!(on.stats.olt_installs > 0);
            assert!(
                on.stats.lm_fetches < off.stats.lm_fetches,
                "hits must skip binary-search probes"
            );
        }
    }

    #[test]
    fn olt_events_reach_the_sink() {
        let (lex, am, lm) = setup();
        let utt = synthesize_utterance(
            &[2, 4, 6, 8],
            &lex,
            HmmTopology::Kaldi3State,
            &NoiseModel::default(),
            7,
        );
        let dec = OtfDecoder::new(DecodeConfig::builder().olt_entries(256).build().unwrap());
        let mut sink = CountingSink::default();
        let res = dec.decode(&am, &lm, &utt.scores, &mut sink);
        assert_eq!(sink.olt_probes, res.stats.olt_probes);
        assert_eq!(sink.olt_hits, res.stats.olt_hits);
        assert_eq!(sink.olt_installs, res.stats.olt_installs);
        assert_eq!(sink.olt_evictions, res.stats.olt_evictions);
        // Every lookup step ends exactly one way: a table hit, a
        // resolution (which installs), or a back-off hop (no install).
        assert_eq!(
            res.stats.olt_probes,
            res.stats.olt_hits + res.stats.olt_installs + res.stats.backoff_hops
        );
        assert!(res.stats.olt_hit_ratio() > 0.0);
    }
}

#[cfg(test)]
mod nbest_tests {
    use super::*;
    use crate::trace::NullSink;
    use unfold_am::{build_am, synthesize_utterance, HmmTopology, Lexicon, NoiseModel};
    use unfold_lm::{lm_to_wfst, CorpusSpec, DiscountConfig, NGramModel};

    fn setup() -> (Lexicon, unfold_wfst::Wfst, unfold_wfst::Wfst) {
        let lex = Lexicon::generate(40, 18, 8);
        let am = build_am(&lex, HmmTopology::Kaldi3State);
        let spec = CorpusSpec {
            vocab_size: 40,
            num_sentences: 250,
            ..Default::default()
        };
        let model = NGramModel::train(&spec.generate(2), 40, DiscountConfig::default());
        (lex, am.fst, lm_to_wfst(&model))
    }

    #[test]
    fn one_best_matches_decode() {
        let (lex, am, lm) = setup();
        let utt = synthesize_utterance(
            &[3, 8],
            &lex,
            HmmTopology::Kaldi3State,
            &NoiseModel::default(),
            4,
        );
        let dec = OtfDecoder::new(DecodeConfig::default());
        let best = dec.decode(&am, &lm, &utt.scores, &mut NullSink);
        let nbest = dec.decode_nbest(&am, &lm, &utt.scores, 5, &mut NullSink);
        assert!(!nbest.is_empty());
        assert_eq!(nbest[0].0, best.words);
        assert!((nbest[0].1 - best.cost).abs() < 1e-5);
    }

    #[test]
    fn nbest_is_sorted_and_distinct() {
        let (lex, am, lm) = setup();
        let noise = NoiseModel {
            noise_sigma: 1.2,
            ..NoiseModel::default()
        };
        let utt = synthesize_utterance(&[5, 9, 12], &lex, HmmTopology::Kaldi3State, &noise, 6);
        let dec = OtfDecoder::new(DecodeConfig::default());
        let nbest = dec.decode_nbest(&am, &lm, &utt.scores, 8, &mut NullSink);
        for w in nbest.windows(2) {
            assert!(w[0].1 <= w[1].1, "costs must be sorted");
            assert_ne!(w[0].0, w[1].0, "sequences must be distinct");
        }
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let (lex, am, lm) = setup();
        let utt = synthesize_utterance(
            &[1],
            &lex,
            HmmTopology::Kaldi3State,
            &NoiseModel::clean(),
            1,
        );
        let _ = OtfDecoder::new(DecodeConfig::default()).decode_nbest(
            &am,
            &lm,
            &utt.scores,
            0,
            &mut NullSink,
        );
    }
}

#[cfg(test)]
mod pruning_tests {
    use super::*;
    use crate::trace::NullSink;
    use unfold_am::{build_am, synthesize_utterance, HmmTopology, Lexicon, NoiseModel};
    use unfold_lm::{lm_to_wfst, CorpusSpec, NGramModel};

    #[test]
    fn max_active_caps_the_population() {
        let lex = Lexicon::generate(60, 20, 14);
        let am = build_am(&lex, HmmTopology::Kaldi3State);
        let spec = CorpusSpec {
            vocab_size: 60,
            num_sentences: 300,
            ..Default::default()
        };
        let model = NGramModel::train(&spec.generate(15), 60, Default::default());
        let lm = lm_to_wfst(&model);
        let noise = NoiseModel {
            noise_sigma: 1.4,
            wrong_cost: 2.0,
            ..NoiseModel::default()
        };
        let utt = synthesize_utterance(&[3, 9], &lex, HmmTopology::Kaldi3State, &noise, 16);
        let loose = OtfDecoder::new(
            DecodeConfig::builder()
                .beam(20.0)
                .max_active(usize::MAX)
                .build()
                .unwrap(),
        )
        .decode(&am.fst, &lm, &utt.scores, &mut NullSink);
        let capped = OtfDecoder::new(
            DecodeConfig::builder()
                .beam(20.0)
                .max_active(50)
                .build()
                .unwrap(),
        )
        .decode(&am.fst, &lm, &utt.scores, &mut NullSink);
        assert!(
            loose.stats.max_active > 50,
            "workload too small to test the cap"
        );
        // Histogram pruning caps survivors *entering* expansion; the
        // population measured at the next frame start can exceed the cap
        // only via fresh expansion, so mean active must drop sharply.
        assert!(capped.stats.mean_active() < loose.stats.mean_active() / 2.0);
        assert!(
            capped.stats.tokens_created < loose.stats.tokens_created,
            "capping survivors must shrink the expansion work"
        );
    }
}
