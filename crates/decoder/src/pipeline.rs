//! Deterministic two-stage (scoring → search) pipelined decoding.
//!
//! The paper's §5.2 system overlaps acoustic scoring of batch *i+1*
//! with search over batch *i* through a shared bounded buffer. This
//! module is the single-session, single-threaded skeleton of that
//! pipeline: a scoring cursor runs ahead of the search cursor by at
//! most [`DecodeConfig::max_search_lag`] frames, staging score rows in
//! a bounded ring, scoring at most [`DecodeConfig::scorer_batch`]
//! frames per round.
//!
//! **Why pipelining cannot change decode output.** An
//! [`AcousticScorer`] is a pure per-frame function (see the trait
//! contract), and the ring delivers rows strictly in push order, so
//! the search stage consumes exactly the row sequence a lockstep
//! decode would compute — regardless of lag bound, batch size, or how
//! the two stages interleave in time. The `pipeline-identity` verify
//! check pins this end to end (words, cost bits, full stats, and the
//! ordered trace-event stream), and the planted `stale-lag` mutation
//! demonstrates the check catches a ring that re-reads a stale slot.
//!
//! The multi-session, multi-threaded version of this pipeline lives in
//! `unfold-serve`'s scheduler; it reuses the same scorer contract and
//! the same in-order SPSC queue discipline, so the identity argument
//! carries over session by session.

use crate::config::{DecodeConfig, DecodeResult};
use crate::ingest::{AcousticScorer, FrameInput, ScoreError};
use crate::scratch::WorkScratch;
use crate::sources::{AmSource, LmSource};
use crate::streaming::StreamSession;
use crate::trace::TraceSink;
use std::collections::VecDeque;

/// Decodes `frames` through the two-stage pipeline and returns a
/// result bit-identical to scoring every frame up front and running
/// [`crate::OtfDecoder::decode`] (or an [`crate::OtfStream`]) over the
/// rows. Trace events emitted to `sink` are identical too.
///
/// A `max_search_lag` of 0 degenerates to strictly synchronous
/// hand-off: each frame is scored and immediately searched.
///
/// # Errors
/// The first [`ScoreError`] the scorer returns; frames already
/// searched are not rolled back (mirroring a live stream, where a
/// refused frame poisons the session, not the decode so far).
///
/// # Panics
/// Panics if an AM arc's PDF id exceeds the scorer's row width.
pub fn decode_pipelined<A: AmSource + ?Sized, L: LmSource + ?Sized>(
    config: DecodeConfig,
    am: &A,
    lm: &L,
    scorer: &dyn AcousticScorer,
    frames: &[FrameInput],
    sink: &mut dyn TraceSink,
) -> Result<DecodeResult, ScoreError> {
    // Lag 0 still needs one slot to hand a row from stage to stage.
    let lag_cap = config.max_search_lag.max(1);
    let mut ring: VecDeque<Vec<f32>> = VecDeque::with_capacity(lag_cap);
    let mut pool: Vec<Vec<f32>> = Vec::with_capacity(lag_cap);

    let mut work = WorkScratch::new();
    work.begin(&config);
    let mut session = StreamSession::new(config);
    session.seed(am, lm, &mut work, sink);

    let mut next_score = 0usize;
    while session.frames_pushed() < frames.len() {
        // Scoring stage: refill the ring up to the lag bound, at most
        // one scorer batch per round.
        let mut batched = 0usize;
        while next_score < frames.len() && ring.len() < lag_cap && batched < config.scorer_batch {
            let mut row = pool.pop().unwrap_or_default();
            match scorer.score_into(&frames[next_score], &mut row) {
                Ok(()) => {
                    ring.push_back(row);
                    next_score += 1;
                    batched += 1;
                }
                Err(e) => return Err(e),
            }
        }
        // Search stage: consume one frame per round, so scoring runs
        // ahead and the ring's bounded depth is actually exercised.
        if let Some(row) = ring.pop_front() {
            session.push_frame(am, lm, &mut work, &row, sink);
            pool.push(row);
        }
    }
    Ok(session.finalize(am, sink))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingest::PrecomputedScorer;
    use crate::record::TraceRecorder;
    use crate::trace::NullSink;
    use crate::OtfDecoder;
    use unfold_am::{build_am, synthesize_utterance, HmmTopology, Lexicon, NoiseModel};
    use unfold_lm::{lm_to_wfst, CorpusSpec, DiscountConfig, NGramModel};
    use unfold_wfst::Wfst;

    fn setup() -> (Lexicon, Wfst, Wfst) {
        let lex = Lexicon::generate(50, 20, 6);
        let am = build_am(&lex, HmmTopology::Kaldi3State);
        let spec = CorpusSpec {
            vocab_size: 50,
            num_sentences: 300,
            ..Default::default()
        };
        let model = NGramModel::train(&spec.generate(3), 50, DiscountConfig::default());
        (lex, am.fst, lm_to_wfst(&model))
    }

    #[test]
    fn pipelined_matches_lockstep_across_lag_and_batch() {
        let (lex, am, lm) = setup();
        let utt = synthesize_utterance(
            &[3, 9, 17],
            &lex,
            HmmTopology::Kaldi3State,
            &NoiseModel::default(),
            5,
        );
        let width = utt.scores.frame(0).len();
        let frames: Vec<FrameInput> = (0..utt.scores.num_frames())
            .map(|t| FrameInput::Scores(utt.scores.frame(t).to_vec()))
            .collect();
        let scorer = PrecomputedScorer::new(width);

        for (lag, batch) in [(0, 1), (0, 8), (2, 1), (2, 3), (8, 8), (16, 4)] {
            let cfg = DecodeConfig::builder()
                .max_search_lag(lag)
                .scorer_batch(batch)
                .build()
                .unwrap();
            let mut base_rec = TraceRecorder::new();
            let baseline = OtfDecoder::new(cfg).decode(&am, &lm, &utt.scores, &mut base_rec);
            let mut pipe_rec = TraceRecorder::new();
            let piped = decode_pipelined(cfg, &am, &lm, &scorer, &frames, &mut pipe_rec).unwrap();
            assert_eq!(piped.words, baseline.words, "lag {lag} batch {batch}");
            assert_eq!(
                piped.cost.to_bits(),
                baseline.cost.to_bits(),
                "lag {lag} batch {batch}"
            );
            assert_eq!(piped.stats, baseline.stats, "lag {lag} batch {batch}");
            assert_eq!(
                pipe_rec.events(),
                base_rec.events(),
                "trace stream must be identical (lag {lag} batch {batch})"
            );
        }
    }

    #[test]
    fn empty_utterance_finalizes_cleanly() {
        let (_lex, am, lm) = setup();
        let cfg = DecodeConfig::default();
        let scorer = PrecomputedScorer::new(4);
        let base = crate::OtfStream::new(cfg, &am, &lm, &mut NullSink).finish();
        let r = decode_pipelined(cfg, &am, &lm, &scorer, &[], &mut NullSink).unwrap();
        assert_eq!(r.words, base.words);
        assert_eq!(r.cost.to_bits(), base.cost.to_bits());
    }

    #[test]
    fn scorer_error_surfaces_as_typed_error() {
        let (_lex, am, lm) = setup();
        let cfg = DecodeConfig::default();
        let scorer = PrecomputedScorer::new(4);
        let frames = vec![FrameInput::Features(vec![0.0; 4])];
        assert_eq!(
            decode_pipelined(cfg, &am, &lm, &scorer, &frames, &mut NullSink).unwrap_err(),
            ScoreError::FeaturesUnsupported
        );
    }
}
