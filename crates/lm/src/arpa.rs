//! ARPA text format: the lingua franca for back-off n-gram models.
//!
//! The paper's LMs are trained externally and shipped as ARPA files
//! before conversion to WFSTs; supporting the format makes this
//! reproduction interoperable with standard toolchains (SRILM, KenLM,
//! Kaldi's `arpa2fst`). Probabilities and back-off weights are written
//! as log10 values per the format; internally everything is natural-log
//! *cost*, so conversion happens at the boundary.
//!
//! Words are written as `w<id>` — synthetic vocabularies have no
//! natural orthography — and parsed back by stripping the prefix.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::ngram::{NGramModel, WordId};

const LN_10: f64 = core::f64::consts::LN_10;

/// Converts a natural-log cost to the ARPA log10 probability.
fn cost_to_log10(cost: f32) -> f64 {
    -f64::from(cost) / LN_10
}

/// Converts an ARPA log10 probability to a natural-log cost.
fn log10_to_cost(lp: f64) -> f32 {
    (-lp * LN_10) as f32
}

/// Serializes a model to ARPA text.
///
/// ```
/// use unfold_lm::{CorpusSpec, NGramModel};
/// use unfold_lm::arpa::{to_arpa, parse_arpa};
///
/// let spec = CorpusSpec { vocab_size: 30, num_sentences: 150, ..Default::default() };
/// let model = NGramModel::train(&spec.generate(1), 30, Default::default());
/// let text = to_arpa(&model);
/// let parsed = parse_arpa(&text).unwrap();
/// assert_eq!(parsed.unigrams.len(), 30);
/// ```
pub fn to_arpa(model: &NGramModel) -> String {
    let mut out = String::new();
    let v = model.vocab_size();
    let mut bi_hists: Vec<WordId> = model.bigram_histories().collect();
    bi_hists.sort_unstable();
    let mut tri_hists: Vec<(WordId, WordId)> = model.trigram_histories().collect();
    tri_hists.sort_unstable();
    let n_bigrams: usize = model.num_bigrams();
    let n_trigrams: usize = model.num_trigrams();

    out.push_str("\\data\\\n");
    let _ = writeln!(out, "ngram 1={v}");
    let _ = writeln!(out, "ngram 2={n_bigrams}");
    let _ = writeln!(out, "ngram 3={n_trigrams}");

    out.push_str("\n\\1-grams:\n");
    for w in 1..=v as WordId {
        let lp = cost_to_log10(model.unigram_cost(w));
        // Back-off weight is attached to the unigram entry of the
        // history word; only histories with kept bigrams carry one.
        let has_bow = !model.bigram_arcs(w).is_empty();
        if has_bow {
            let bow = cost_to_log10(model.bigram_backoff_cost(w));
            let _ = writeln!(out, "{lp:.6}\tw{w}\t{bow:.6}");
        } else {
            let _ = writeln!(out, "{lp:.6}\tw{w}");
        }
    }

    out.push_str("\n\\2-grams:\n");
    for &u in &bi_hists {
        for &(w, cost) in model.bigram_arcs(u) {
            let lp = cost_to_log10(cost);
            if !model.trigram_arcs(u, w).is_empty() {
                let bow = cost_to_log10(model.trigram_backoff_cost(u, w));
                let _ = writeln!(out, "{lp:.6}\tw{u} w{w}\t{bow:.6}");
            } else {
                let _ = writeln!(out, "{lp:.6}\tw{u} w{w}");
            }
        }
    }

    out.push_str("\n\\3-grams:\n");
    for &(u, vv) in &tri_hists {
        for &(w, cost) in model.trigram_arcs(u, vv) {
            let lp = cost_to_log10(cost);
            let _ = writeln!(out, "{lp:.6}\tw{u} w{vv} w{w}");
        }
    }
    out.push_str("\n\\end\\\n");
    out
}

/// A parsed ARPA model: costs in natural-log space, ready to compare
/// against an [`NGramModel`] or convert to a WFST.
#[derive(Debug, Clone, Default)]
pub struct ArpaModel {
    /// `word -> (cost, back-off cost)`.
    pub unigrams: HashMap<WordId, (f32, f32)>,
    /// `(u, w) -> (cost, back-off cost)`.
    pub bigrams: HashMap<(WordId, WordId), (f32, f32)>,
    /// `(u, v, w) -> cost`.
    pub trigrams: HashMap<(WordId, WordId, WordId), f32>,
}

impl ArpaModel {
    /// Evaluates a word cost with standard back-off semantics.
    ///
    /// # Panics
    /// Panics if `w` has no unigram entry.
    pub fn word_cost(&self, hist: &[WordId], w: WordId) -> f32 {
        if hist.len() >= 2 {
            let (u, v) = (hist[hist.len() - 2], hist[hist.len() - 1]);
            if let Some(&c) = self.trigrams.get(&(u, v, w)) {
                return c;
            }
            let bow = self.bigrams.get(&(u, v)).map_or(0.0, |&(_, b)| b);
            return bow + self.word_cost(&[v], w);
        }
        if hist.len() == 1 {
            let u = hist[0];
            if let Some(&(c, _)) = self.bigrams.get(&(u, w)) {
                return c;
            }
            let bow = self.unigrams.get(&u).map_or(0.0, |&(_, b)| b);
            return bow + self.word_cost(&[], w);
        }
        self.unigrams.get(&w).expect("word has a unigram").0
    }
}

/// Errors produced by [`parse_arpa`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseArpaError {
    /// The `\data\` header is missing.
    MissingHeader,
    /// A line could not be parsed (1-based line number and content).
    BadLine(usize, String),
    /// A declared count does not match the entries found.
    CountMismatch {
        /// N-gram order.
        order: usize,
        /// Count declared in the header.
        declared: usize,
        /// Entries actually present.
        found: usize,
    },
}

impl std::fmt::Display for ParseArpaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseArpaError::MissingHeader => write!(f, "missing \\data\\ header"),
            ParseArpaError::BadLine(n, l) => write!(f, "unparseable line {n}: {l:?}"),
            ParseArpaError::CountMismatch {
                order,
                declared,
                found,
            } => write!(
                f,
                "{order}-gram count mismatch: header says {declared}, found {found}"
            ),
        }
    }
}

impl std::error::Error for ParseArpaError {}

fn parse_word(tok: &str) -> Option<WordId> {
    tok.strip_prefix('w')?.parse().ok()
}

/// Parses ARPA text (the subset this crate emits: orders 1-3, `w<id>`
/// words).
///
/// # Errors
/// Returns [`ParseArpaError`] on malformed input or count mismatches.
pub fn parse_arpa(text: &str) -> Result<ArpaModel, ParseArpaError> {
    let mut model = ArpaModel::default();
    let mut declared: HashMap<usize, usize> = HashMap::new();
    let mut section = 0usize;
    let mut seen_header = false;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if line == "\\data\\" {
            seen_header = true;
            continue;
        }
        if line == "\\end\\" {
            break;
        }
        if let Some(rest) = line.strip_prefix("ngram ") {
            let (order, count) = rest
                .split_once('=')
                .ok_or_else(|| ParseArpaError::BadLine(i + 1, line.to_string()))?;
            let order: usize = order
                .trim()
                .parse()
                .map_err(|_| ParseArpaError::BadLine(i + 1, line.to_string()))?;
            let count: usize = count
                .trim()
                .parse()
                .map_err(|_| ParseArpaError::BadLine(i + 1, line.to_string()))?;
            declared.insert(order, count);
            continue;
        }
        if let Some(rest) = line.strip_prefix('\\') {
            if let Some(o) = rest.strip_suffix("-grams:") {
                section = o
                    .parse()
                    .map_err(|_| ParseArpaError::BadLine(i + 1, line.to_string()))?;
                continue;
            }
            return Err(ParseArpaError::BadLine(i + 1, line.to_string()));
        }
        if !seen_header {
            return Err(ParseArpaError::MissingHeader);
        }
        let bad = || ParseArpaError::BadLine(i + 1, line.to_string());
        let mut fields = line.split_whitespace();
        let lp: f64 = fields.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let words: Vec<&str> = fields.collect();
        match section {
            1 => {
                let (w, bow) = match words.as_slice() {
                    [w] => (parse_word(w).ok_or_else(bad)?, 0.0),
                    [w, bow] => (
                        parse_word(w).ok_or_else(bad)?,
                        log10_to_cost(bow.parse().map_err(|_| bad())?),
                    ),
                    _ => return Err(bad()),
                };
                model.unigrams.insert(w, (log10_to_cost(lp), bow));
            }
            2 => {
                let (u, w, bow) = match words.as_slice() {
                    [u, w] => (
                        parse_word(u).ok_or_else(bad)?,
                        parse_word(w).ok_or_else(bad)?,
                        0.0,
                    ),
                    [u, w, bow] => (
                        parse_word(u).ok_or_else(bad)?,
                        parse_word(w).ok_or_else(bad)?,
                        log10_to_cost(bow.parse().map_err(|_| bad())?),
                    ),
                    _ => return Err(bad()),
                };
                model.bigrams.insert((u, w), (log10_to_cost(lp), bow));
            }
            3 => match words.as_slice() {
                [u, v, w] => {
                    model.trigrams.insert(
                        (
                            parse_word(u).ok_or_else(bad)?,
                            parse_word(v).ok_or_else(bad)?,
                            parse_word(w).ok_or_else(bad)?,
                        ),
                        log10_to_cost(lp),
                    );
                }
                _ => return Err(bad()),
            },
            _ => return Err(bad()),
        }
    }
    if !seen_header {
        return Err(ParseArpaError::MissingHeader);
    }
    for (order, found) in [
        (1usize, model.unigrams.len()),
        (2, model.bigrams.len()),
        (3, model.trigrams.len()),
    ] {
        if let Some(&d) = declared.get(&order) {
            if d != found {
                return Err(ParseArpaError::CountMismatch {
                    order,
                    declared: d,
                    found,
                });
            }
        }
    }
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusSpec;
    use crate::ngram::DiscountConfig;

    fn model() -> NGramModel {
        let spec = CorpusSpec {
            vocab_size: 60,
            num_sentences: 400,
            ..Default::default()
        };
        NGramModel::train(&spec.generate(4), 60, DiscountConfig::default())
    }

    #[test]
    fn roundtrip_preserves_all_costs() {
        let m = model();
        let parsed = parse_arpa(&to_arpa(&m)).expect("roundtrip parses");
        assert_eq!(parsed.unigrams.len(), 60);
        assert_eq!(parsed.bigrams.len(), m.num_bigrams());
        assert_eq!(parsed.trigrams.len(), m.num_trigrams());
        // Spot-check full back-off evaluation agreement.
        let mut checked = 0;
        for hist in [vec![], vec![5], vec![2, 7], vec![17, 3]] {
            for w in (1..=60).step_by(7) {
                let a = m.word_cost(&hist, w);
                let b = parsed.word_cost(&hist, w);
                assert!((a - b).abs() < 1e-3, "hist {hist:?} w {w}: {a} vs {b}");
                checked += 1;
            }
        }
        assert!(checked > 20);
    }

    #[test]
    fn header_counts_match_body() {
        let text = to_arpa(&model());
        assert!(text.starts_with("\\data\\"));
        assert!(text.contains("\\1-grams:"));
        assert!(text.trim_end().ends_with("\\end\\"));
    }

    #[test]
    fn missing_header_is_an_error() {
        assert_eq!(
            parse_arpa("-1.0\tw1\n").unwrap_err(),
            ParseArpaError::MissingHeader
        );
    }

    #[test]
    fn count_mismatch_detected() {
        let text = "\\data\\\nngram 1=2\n\n\\1-grams:\n-1.0\tw1\n\n\\end\\\n";
        match parse_arpa(text) {
            Err(ParseArpaError::CountMismatch {
                order: 1,
                declared: 2,
                found: 1,
            }) => {}
            other => panic!("expected count mismatch, got {other:?}"),
        }
    }

    #[test]
    fn bad_line_reports_position() {
        let text = "\\data\\\n\n\\1-grams:\nnot-a-number w1\n\\end\\\n";
        match parse_arpa(text) {
            Err(ParseArpaError::BadLine(4, _)) => {}
            other => panic!("expected bad line 4, got {other:?}"),
        }
    }

    mod fuzz {
        use super::super::parse_arpa;
        use proptest::prelude::*;

        proptest! {
            /// Arbitrary text errors gracefully, never panics.
            #[test]
            fn random_text_never_panics(s in "[ -~\n\t]{0,600}") {
                let _ = parse_arpa(&s);
            }

            /// Structured-ish garbage after a valid header too.
            #[test]
            fn headered_garbage_never_panics(s in "[ -~\n]{0,300}") {
                let text = format!("\\data\\\nngram 1=0\n\n\\1-grams:\n{s}\n\\end\\\n");
                let _ = parse_arpa(&text);
            }
        }
    }

    #[test]
    fn display_formats_are_readable() {
        let e = ParseArpaError::CountMismatch {
            order: 2,
            declared: 10,
            found: 9,
        };
        assert!(e.to_string().contains("2-gram"));
        assert!(ParseArpaError::MissingHeader.to_string().contains("data"));
    }
}
