//! N-gram model → back-off LM WFST (the paper's Figure 3b).
//!
//! State numbering follows the invariant the paper's LM compression
//! scheme exploits (§3.4): state 0 is the empty-history root whose *i*-th
//! outgoing arc carries word *i* and points at state *i*; states
//! `1..=V` are the unigram-history states; bigram-history states (one
//! per history with kept trigrams) follow. Back-off arcs are epsilon
//! arcs and, after sorting, sit last in each state's arc list.

use std::collections::HashMap;

use unfold_wfst::{Arc, StateId, Wfst, WfstBuilder};

use crate::ngram::{NGramModel, WordId};

/// Maps n-gram histories to LM WFST state ids.
#[derive(Debug, Clone)]
pub struct LmWfstLayout {
    /// Vocabulary size `V`; unigram history of word `w` is state `w`.
    pub vocab_size: usize,
    /// Bigram history `(u, v)` → state id (only histories with kept
    /// trigrams have dedicated states).
    pub bigram_states: HashMap<(WordId, WordId), StateId>,
}

impl LmWfstLayout {
    /// State encoding the given history (last up-to-2 words).
    pub fn state_for(&self, hist: &[WordId]) -> StateId {
        if hist.len() >= 2 {
            let key = (hist[hist.len() - 2], hist[hist.len() - 1]);
            if let Some(&s) = self.bigram_states.get(&key) {
                return s;
            }
            return hist[hist.len() - 1];
        }
        if hist.len() == 1 {
            return hist[0];
        }
        0
    }
}

/// Converts a trained model into its back-off WFST.
///
/// See [`lm_to_wfst_with_layout`] for the state map.
pub fn lm_to_wfst(model: &NGramModel) -> Wfst {
    lm_to_wfst_with_layout(model).0
}

/// Converts a trained model into its back-off WFST, returning the
/// history → state layout as well.
///
/// The resulting machine is ilabel-sorted with back-off (epsilon) arcs
/// stored last per state, all states final with weight 0 (we do not
/// model a sentence-end symbol; every word boundary is a legal stopping
/// point in the synthetic tasks).
pub fn lm_to_wfst_with_layout(model: &NGramModel) -> (Wfst, LmWfstLayout) {
    let v = model.vocab_size();
    // Deterministic ordering of bigram-history states.
    let mut tri_hists: Vec<(WordId, WordId)> = model.trigram_histories().collect();
    tri_hists.sort_unstable();
    let mut bigram_states: HashMap<(WordId, WordId), StateId> = HashMap::new();
    let first_bigram_state = (v + 1) as StateId;
    for (i, &h) in tri_hists.iter().enumerate() {
        bigram_states.insert(h, first_bigram_state + i as StateId);
    }
    let layout = LmWfstLayout {
        vocab_size: v,
        bigram_states,
    };

    let num_states = v + 1 + tri_hists.len();
    let mut b = WfstBuilder::with_states(num_states);
    b.set_start(0);
    for s in 0..num_states {
        b.set_final(s as StateId, 0.0);
    }

    // Root: one unigram arc per word, in word order, dest = word id.
    for w in 1..=v as WordId {
        b.add_arc(0, Arc::new(w, w, model.unigram_cost(w), w));
    }

    // Unigram-history states: kept bigram arcs + back-off to root.
    for u in 1..=v as WordId {
        for &(w, cost) in model.bigram_arcs(u) {
            let dest = layout
                .bigram_states
                .get(&(u, w))
                .copied()
                .unwrap_or(w as StateId);
            b.add_arc(u, Arc::new(w, w, cost, dest));
        }
        b.add_arc(u, Arc::epsilon(model.bigram_backoff_cost(u), 0));
    }

    // Bigram-history states: kept trigram arcs + back-off to the
    // unigram history of the most recent word.
    for &(u, vv) in &tri_hists {
        let s = layout.bigram_states[&(u, vv)];
        for &(w, cost) in model.trigram_arcs(u, vv) {
            let dest = layout
                .bigram_states
                .get(&(vv, w))
                .copied()
                .unwrap_or(w as StateId);
            b.add_arc(s, Arc::new(w, w, cost, dest));
        }
        b.add_arc(s, Arc::epsilon(model.trigram_backoff_cost(u, vv), vv));
    }

    let mut fst = b.build();
    fst.sort_arcs_by_ilabel();
    (fst, layout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusSpec;
    use crate::ngram::DiscountConfig;
    use unfold_wfst::compose::resolve_lm_word;
    use unfold_wfst::EPSILON;

    fn build() -> (NGramModel, Wfst, LmWfstLayout) {
        let spec = CorpusSpec {
            vocab_size: 150,
            num_sentences: 600,
            ..Default::default()
        };
        let corpus = spec.generate(33);
        let model = NGramModel::train(&corpus, 150, DiscountConfig::default());
        let (fst, layout) = lm_to_wfst_with_layout(&model);
        (model, fst, layout)
    }

    #[test]
    fn root_arc_invariant_for_compression() {
        // §3.4: "the i-th outgoing arc of state 0 is associated with word
        // ID i and has destination state i".
        let (_, fst, _) = build();
        for (i, arc) in fst.arcs(0).iter().enumerate() {
            assert_eq!(arc.ilabel, i as u32 + 1);
            assert_eq!(arc.olabel, i as u32 + 1);
            assert_eq!(arc.nextstate, i as u32 + 1);
        }
        assert!(fst.backoff_arc(0).is_none(), "root has no back-off arc");
    }

    #[test]
    fn every_non_root_state_has_backoff_last() {
        let (_, fst, _) = build();
        for s in 1..fst.num_states() as StateId {
            let arcs = fst.arcs(s);
            let back = arcs.last().expect("state {s} must have a back-off arc");
            assert_eq!(back.ilabel, EPSILON, "state {s}: back-off must be last");
            // Exactly one epsilon arc.
            assert_eq!(arcs.iter().filter(|a| a.ilabel == EPSILON).count(), 1);
        }
    }

    #[test]
    fn sorted_and_all_final() {
        let (_, fst, _) = build();
        assert!(fst.is_ilabel_sorted());
        for s in fst.states() {
            assert_eq!(fst.final_weight(s), Some(0.0));
        }
    }

    #[test]
    fn backoff_destinations_descend_order() {
        // Trigram-history states back off to unigram-history states;
        // unigram-history states back off to the root.
        let (_, fst, layout) = build();
        for (&(_, v), &s) in &layout.bigram_states {
            assert_eq!(fst.backoff_arc(s).unwrap().nextstate, v);
        }
        for u in 1..=layout.vocab_size as StateId {
            assert_eq!(fst.backoff_arc(u).unwrap().nextstate, 0);
        }
    }

    #[test]
    fn wfst_resolution_matches_model_cost() {
        // Walking the WFST back-off chain must reproduce the model's
        // word_cost for unigram, bigram and trigram histories.
        let (model, fst, layout) = build();
        let histories: Vec<Vec<WordId>> = vec![vec![], vec![3], vec![7, 1]];
        let mut tri = model.trigram_histories().collect::<Vec<_>>();
        tri.sort_unstable();
        let mut checked = 0;
        for hist in histories
            .into_iter()
            .chain(tri.iter().take(5).map(|&(u, v)| vec![u, v]))
        {
            let state = layout.state_for(&hist);
            for w in (1..=150u32).step_by(17) {
                let (_, cost, _) = resolve_lm_word(&fst, state, w).expect("resolvable");
                let want = model.word_cost(&hist, w);
                assert!(
                    (cost - want).abs() < 1e-4,
                    "hist {hist:?} w {w}: wfst {cost} vs model {want}"
                );
                checked += 1;
            }
        }
        assert!(checked > 30);
    }

    #[test]
    fn resolution_destination_matches_layout() {
        let (model, fst, layout) = build();
        let (u, v) = model.trigram_histories().next().unwrap();
        // Resolve v from history [u]: destination must encode history
        // [u, v] (a bigram state if it exists, else unigram of v).
        if model
            .bigram_arcs(u)
            .binary_search_by_key(&v, |&(x, _)| x)
            .is_ok()
        {
            let (dest, _, _) = resolve_lm_word(&fst, layout.state_for(&[u]), v).unwrap();
            assert_eq!(dest, layout.state_for(&[u, v]));
        }
    }

    #[test]
    fn state_count_is_root_plus_vocab_plus_trigram_histories() {
        let (model, fst, layout) = build();
        assert_eq!(
            fst.num_states(),
            1 + layout.vocab_size + model.trigram_histories().count()
        );
    }

    #[test]
    fn layout_state_for_unknown_bigram_history_falls_back() {
        let (_, _, layout) = build();
        // A history that kept no trigrams maps to the unigram state of
        // its most recent word.
        let s = layout.state_for(&[149, 150]);
        if !layout.bigram_states.contains_key(&(149, 150)) {
            assert_eq!(s, 150);
        }
    }
}
