#![warn(missing_docs)]

//! Language-model substrate for the UNFOLD reproduction.
//!
//! The paper decodes against back-off n-gram language models (unigram /
//! bigram / trigram, §2) trained on the TEDLIUM, Librispeech and Voxforge
//! corpora. Those corpora are not available here, so this crate supplies
//! the closest synthetic equivalent:
//!
//! * [`corpus`] — a seeded generator of Zipf-distributed, Markov-
//!   structured text whose n-gram sparsity mimics natural language
//!   closely enough to exercise the same LM-WFST topology (dense
//!   unigrams, pruned bigrams/trigrams, back-off arcs),
//! * [`ngram`] — n-gram counting and absolute-discounting back-off
//!   estimation,
//! * [`graph`] — conversion of an [`ngram::NGramModel`] into the back-off
//!   WFST of Figure 3b, with the state-numbering invariant the paper's
//!   LM compression relies on (the *i*-th arc of the root state is word
//!   *i* and points at state *i*, §3.4).
//!
//! # Example
//!
//! ```
//! use unfold_lm::{CorpusSpec, NGramModel, lm_to_wfst};
//!
//! let spec = CorpusSpec { vocab_size: 50, num_sentences: 200, ..CorpusSpec::default() };
//! let corpus = spec.generate(42);
//! let model = NGramModel::train(&corpus, spec.vocab_size, Default::default());
//! let fst = lm_to_wfst(&model);
//! assert!(fst.is_ilabel_sorted());
//! // Root state has exactly one arc per vocabulary word.
//! assert_eq!(fst.arcs(0).len(), 50);
//! ```

pub mod arpa;
pub mod corpus;
pub mod graph;
pub mod ngram;

pub use arpa::{parse_arpa, to_arpa, ArpaModel, ParseArpaError};
pub use corpus::{Corpus, CorpusSpec, ZipfSampler};
pub use graph::{lm_to_wfst, LmWfstLayout};
pub use ngram::{DiscountConfig, NGramModel, WordId};
