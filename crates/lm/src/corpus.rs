//! Synthetic text generation.
//!
//! Substitutes for the paper's training corpora (TEDLIUM / Librispeech /
//! Voxforge transcripts). Two properties of natural language matter for
//! the LM-WFST workload and are reproduced here:
//!
//! 1. **Zipfian unigram distribution** — a few words dominate, giving LM
//!    states wildly different out-degrees (the paper: "states in the LM
//!    have thousands of arcs").
//! 2. **Markov structure** — word choice depends on recent history, so
//!    bigram/trigram counts concentrate on a sparse subset and the
//!    back-off mechanism is exercised on real misses.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::ngram::WordId;

/// A draw-by-inverse-CDF sampler over ranks `1..=n` with Zipf-Mandelbrot
/// weights `1 / (rank + q)^s`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `n` ranks with exponent `s` and shift `q`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s <= 0`.
    pub fn new(n: usize, s: f64, q: f64) -> Self {
        assert!(n > 0, "ZipfSampler: need at least one rank");
        assert!(s > 0.0, "ZipfSampler: exponent must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64 + q).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfSampler { cdf }
    }

    /// Samples a rank in `1..=n`.
    pub fn sample(&self, rng: &mut SmallRng) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).unwrap()) {
            Ok(i) | Err(i) => i.min(self.cdf.len() - 1) + 1,
        }
    }

    /// Probability mass of a given rank.
    pub fn pmf(&self, rank: usize) -> f64 {
        assert!(rank >= 1 && rank <= self.cdf.len());
        if rank == 1 {
            self.cdf[0]
        } else {
            self.cdf[rank - 1] - self.cdf[rank - 2]
        }
    }
}

/// Parameters of the synthetic corpus generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorpusSpec {
    /// Vocabulary size (word ids `1..=vocab_size`).
    pub vocab_size: usize,
    /// Number of sentences to generate.
    pub num_sentences: usize,
    /// Zipf exponent of the unigram distribution (English ≈ 1.0).
    pub zipf_exponent: f64,
    /// Mean sentence length in words.
    pub mean_sentence_len: usize,
    /// Probability that the next word comes from the current word's
    /// preferred-successor set rather than the global distribution.
    pub coherence: f64,
    /// Number of preferred successors per word.
    pub successors_per_word: usize,
}

impl Default for CorpusSpec {
    fn default() -> Self {
        CorpusSpec {
            vocab_size: 1_000,
            num_sentences: 2_000,
            zipf_exponent: 1.05,
            mean_sentence_len: 12,
            coherence: 0.7,
            successors_per_word: 12,
        }
    }
}

/// A generated corpus: sentences of word ids in `1..=vocab_size`.
#[derive(Debug, Clone, Default)]
pub struct Corpus {
    /// The sentences.
    pub sentences: Vec<Vec<WordId>>,
}

impl Corpus {
    /// Total number of word tokens.
    pub fn num_tokens(&self) -> usize {
        self.sentences.iter().map(Vec::len).sum()
    }

    /// Splits off the last `fraction` of sentences as a held-out set.
    ///
    /// # Panics
    /// Panics if `fraction` is not within `(0, 1)`.
    pub fn split_heldout(mut self, fraction: f64) -> (Corpus, Corpus) {
        assert!(
            fraction > 0.0 && fraction < 1.0,
            "fraction must be in (0,1)"
        );
        let n = self.sentences.len();
        let keep = n - ((n as f64 * fraction) as usize).max(1);
        let held = self.sentences.split_off(keep);
        (self, Corpus { sentences: held })
    }
}

impl CorpusSpec {
    /// Generates a corpus deterministically from `seed`.
    ///
    /// # Panics
    /// Panics if `vocab_size == 0` or `coherence` is outside `[0, 1]`.
    pub fn generate(&self, seed: u64) -> Corpus {
        assert!(self.vocab_size > 0, "generate: empty vocabulary");
        assert!(
            (0.0..=1.0).contains(&self.coherence),
            "generate: coherence must be in [0,1]"
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        let zipf = ZipfSampler::new(self.vocab_size, self.zipf_exponent, 2.7);
        // Each word's preferred successors, drawn once from the global
        // Zipf so popular words are popular successors too.
        let succ: Vec<Vec<WordId>> = (0..=self.vocab_size)
            .map(|_| {
                (0..self.successors_per_word)
                    .map(|_| zipf.sample(&mut rng) as WordId)
                    .collect()
            })
            .collect();
        let succ_zipf = ZipfSampler::new(self.successors_per_word.max(1), 1.0, 1.0);

        let mut sentences = Vec::with_capacity(self.num_sentences);
        for _ in 0..self.num_sentences {
            // Geometric-ish length, clamped to [3, 4 * mean].
            let mut len = 3;
            let p_stop = 1.0 / self.mean_entence_len_f64();
            while rng.gen::<f64>() > p_stop && len < self.mean_sentence_len * 4 {
                len += 1;
            }
            let mut sent = Vec::with_capacity(len);
            let mut prev: WordId = zipf.sample(&mut rng) as WordId;
            sent.push(prev);
            for _ in 1..len {
                let next = if rng.gen::<f64>() < self.coherence && self.successors_per_word > 0 {
                    let k = succ_zipf.sample(&mut rng) - 1;
                    succ[prev as usize][k]
                } else {
                    zipf.sample(&mut rng) as WordId
                };
                sent.push(next);
                prev = next;
            }
            sentences.push(sent);
        }
        Corpus { sentences }
    }

    fn mean_entence_len_f64(&self) -> f64 {
        (self.mean_sentence_len.max(3)) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn deterministic_for_same_seed() {
        let spec = CorpusSpec {
            vocab_size: 100,
            num_sentences: 50,
            ..Default::default()
        };
        let a = spec.generate(7);
        let b = spec.generate(7);
        assert_eq!(a.sentences, b.sentences);
        let c = spec.generate(8);
        assert_ne!(a.sentences, c.sentences);
    }

    #[test]
    fn words_stay_in_vocabulary() {
        let spec = CorpusSpec {
            vocab_size: 64,
            num_sentences: 200,
            ..Default::default()
        };
        let c = spec.generate(1);
        for s in &c.sentences {
            assert!(s.len() >= 3);
            for &w in s {
                assert!(w >= 1 && w as usize <= 64);
            }
        }
    }

    #[test]
    fn zipf_head_dominates() {
        let spec = CorpusSpec {
            vocab_size: 500,
            num_sentences: 2_000,
            coherence: 0.0,
            ..Default::default()
        };
        let c = spec.generate(3);
        let mut counts = vec![0u64; 501];
        for s in &c.sentences {
            for &w in s {
                counts[w as usize] += 1;
            }
        }
        let total: u64 = counts.iter().sum();
        let top10: u64 = {
            let mut sorted = counts.clone();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            sorted[..10].iter().sum()
        };
        // With s≈1.05 the 10 most frequent of 500 words carry a large
        // share of the mass — that skew is what makes LM state degrees
        // non-uniform.
        assert!(
            top10 as f64 / total as f64 > 0.15,
            "head mass too small: {}",
            top10 as f64 / total as f64
        );
    }

    #[test]
    fn coherence_concentrates_bigrams() {
        let base = CorpusSpec {
            vocab_size: 300,
            num_sentences: 1_000,
            ..Default::default()
        };
        let incoherent = CorpusSpec {
            coherence: 0.0,
            ..base
        };
        let coherent = CorpusSpec {
            coherence: 0.9,
            ..base
        };
        let distinct = |c: &Corpus| {
            let mut set = std::collections::HashSet::new();
            for s in &c.sentences {
                for w in s.windows(2) {
                    set.insert((w[0], w[1]));
                }
            }
            set.len()
        };
        let di = distinct(&incoherent.generate(5));
        let dc = distinct(&coherent.generate(5));
        assert!(
            dc < di,
            "coherent corpus should repeat bigrams more: {dc} vs {di}"
        );
    }

    #[test]
    fn heldout_split() {
        let spec = CorpusSpec {
            vocab_size: 50,
            num_sentences: 100,
            ..Default::default()
        };
        let (train, held) = spec.generate(2).split_heldout(0.1);
        assert_eq!(train.sentences.len(), 90);
        assert_eq!(held.sentences.len(), 10);
    }

    #[test]
    #[should_panic(expected = "empty vocabulary")]
    fn zero_vocab_panics() {
        let spec = CorpusSpec {
            vocab_size: 0,
            ..Default::default()
        };
        let _ = spec.generate(0);
    }

    proptest! {
        #[test]
        fn zipf_pmf_sums_to_one(n in 1usize..200, s in 0.5f64..2.0) {
            let z = ZipfSampler::new(n, s, 1.0);
            let total: f64 = (1..=n).map(|r| z.pmf(r)).sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
        }

        #[test]
        fn zipf_pmf_monotone_decreasing(n in 2usize..200) {
            let z = ZipfSampler::new(n, 1.1, 1.0);
            for r in 1..n {
                prop_assert!(z.pmf(r) >= z.pmf(r + 1));
            }
        }

        #[test]
        fn zipf_samples_in_range(n in 1usize..100, seed in 0u64..1000) {
            let z = ZipfSampler::new(n, 1.0, 1.0);
            let mut rng = SmallRng::seed_from_u64(seed);
            for _ in 0..50 {
                let r = z.sample(&mut rng);
                prop_assert!(r >= 1 && r <= n);
            }
        }
    }
}
