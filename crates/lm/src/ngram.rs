//! N-gram counting and back-off estimation.
//!
//! Produces the trigram back-off model of the paper's Figure 3b:
//! all unigrams are kept (so any word can always be resolved at the LM
//! root, §3.3), while bigrams and trigrams below a count threshold are
//! pruned — "combinations whose likelihood is smaller than a threshold
//! are pruned to keep the size of the LM manageable" (§2). Probabilities
//! use absolute discounting, with the discounted mass redistributed via
//! back-off weights.

use std::collections::HashMap;

use crate::corpus::Corpus;

/// Word identifier (`1..=vocab_size`; `0` is reserved for epsilon).
pub type WordId = u32;

/// Packs a bigram history into a map key.
#[inline]
fn pack2(u: WordId, v: WordId) -> u64 {
    (u64::from(u) << 21) | u64::from(v)
}

/// Discounting / pruning configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiscountConfig {
    /// Absolute discount subtracted from every kept n-gram count.
    pub discount: f64,
    /// Bigrams observed fewer times than this are pruned.
    pub min_bigram_count: u64,
    /// Trigrams observed fewer times than this are pruned.
    pub min_trigram_count: u64,
}

impl Default for DiscountConfig {
    fn default() -> Self {
        DiscountConfig {
            discount: 0.5,
            min_bigram_count: 2,
            min_trigram_count: 2,
        }
    }
}

/// A trained trigram back-off model.
///
/// Probabilities are stored as *costs* (negative natural logs), the
/// currency of the tropical semiring the decoder works in. Back-off
/// weights may legitimately be negative costs (back-off factors > 1).
#[derive(Debug, Clone)]
pub struct NGramModel {
    vocab_size: usize,
    /// `uni_cost[w]` = -ln P(w); index 0 unused.
    uni_cost: Vec<f32>,
    /// Kept bigram successors per history word, sorted by word id.
    bi: HashMap<WordId, Vec<(WordId, f32)>>,
    /// Back-off cost per unigram history.
    bi_backoff: HashMap<WordId, f32>,
    /// Kept trigram successors per (u, v) history, sorted by word id.
    tri: HashMap<u64, Vec<(WordId, f32)>>,
    /// Back-off cost per bigram history.
    tri_backoff: HashMap<u64, f32>,
}

impl NGramModel {
    /// Trains a trigram model on `corpus`.
    ///
    /// Every word in `1..=vocab_size` receives a unigram probability
    /// (add-one smoothing), which guarantees the back-off chain always
    /// terminates at the root — the invariant the paper's §3.3 relies on.
    ///
    /// # Panics
    /// Panics if `vocab_size == 0` or exceeds 2^21 - 1 (the LM arc
    /// destination field is 21 bits in the compressed layout).
    pub fn train(corpus: &Corpus, vocab_size: usize, cfg: DiscountConfig) -> Self {
        assert!(vocab_size > 0, "train: empty vocabulary");
        assert!(
            vocab_size < (1 << 21),
            "train: vocabulary exceeds 21-bit word ids"
        );

        let mut c_uni = vec![0u64; vocab_size + 1];
        let mut c_bi: HashMap<u64, u64> = HashMap::new();
        let mut c_tri: HashMap<(u64, WordId), u64> = HashMap::new();
        for sent in &corpus.sentences {
            for (i, &w) in sent.iter().enumerate() {
                assert!(
                    w >= 1 && (w as usize) <= vocab_size,
                    "train: word id {w} out of range"
                );
                c_uni[w as usize] += 1;
                if i >= 1 {
                    *c_bi.entry(pack2(sent[i - 1], w)).or_insert(0) += 1;
                }
                if i >= 2 {
                    *c_tri
                        .entry((pack2(sent[i - 2], sent[i - 1]), w))
                        .or_insert(0) += 1;
                }
            }
        }
        let total: u64 = c_uni.iter().sum();

        // --- Unigrams: add-one smoothing, full coverage. ---
        let denom = (total + vocab_size as u64) as f64;
        let p_uni: Vec<f64> = (0..=vocab_size)
            .map(|w| {
                if w == 0 {
                    0.0
                } else {
                    (c_uni[w] + 1) as f64 / denom
                }
            })
            .collect();
        let uni_cost: Vec<f32> = p_uni
            .iter()
            .map(|&p| {
                if p > 0.0 {
                    -(p.ln()) as f32
                } else {
                    f32::INFINITY
                }
            })
            .collect();

        // --- Bigrams: absolute discounting over kept successors. ---
        let mut kept_bi: HashMap<WordId, Vec<(WordId, f64)>> = HashMap::new();
        let mut hist_count: HashMap<WordId, u64> = HashMap::new();
        for (&key, &cnt) in &c_bi {
            let u = (key >> 21) as WordId;
            *hist_count.entry(u).or_insert(0) += cnt;
            if cnt >= cfg.min_bigram_count {
                let v = (key & ((1 << 21) - 1)) as WordId;
                let disc = (cnt as f64 - cfg.discount).max(1e-9);
                kept_bi.entry(u).or_default().push((v, disc));
            }
        }
        let mut bi: HashMap<WordId, Vec<(WordId, f32)>> = HashMap::new();
        let mut bi_backoff: HashMap<WordId, f32> = HashMap::new();
        for (u, mut succ) in kept_bi {
            let h = hist_count[&u] as f64;
            succ.sort_unstable_by_key(|&(w, _)| w);
            let mut kept_mass = 0.0;
            let mut uni_mass = 0.0;
            let arcs: Vec<(WordId, f32)> = succ
                .iter()
                .map(|&(w, disc)| {
                    let p = disc / h;
                    kept_mass += p;
                    uni_mass += p_uni[w as usize];
                    (w, -(p.ln()) as f32)
                })
                .collect();
            let bow = backoff_weight(kept_mass, uni_mass);
            bi.insert(u, arcs);
            bi_backoff.insert(u, -(bow.ln()) as f32);
        }

        // --- Trigrams: same scheme over (u, v) histories; the back-off
        // denominator uses the *bigram-level* probability of each kept
        // word so mass is conserved against the next model down. ---
        let p_bi = |u: WordId, w: WordId| -> f64 {
            if let Some(arcs) = bi.get(&u) {
                if let Ok(i) = arcs.binary_search_by_key(&w, |&(x, _)| x) {
                    return f64::from(-arcs[i].1).exp();
                }
                let bow = f64::from(-bi_backoff[&u]).exp();
                return bow * p_uni[w as usize];
            }
            p_uni[w as usize]
        };
        let mut kept_tri: HashMap<u64, Vec<(WordId, f64)>> = HashMap::new();
        let mut tri_hist_count: HashMap<u64, u64> = HashMap::new();
        for (&(key, w), &cnt) in &c_tri {
            *tri_hist_count.entry(key).or_insert(0) += cnt;
            if cnt >= cfg.min_trigram_count {
                let disc = (cnt as f64 - cfg.discount).max(1e-9);
                kept_tri.entry(key).or_default().push((w, disc));
            }
        }
        let mut tri: HashMap<u64, Vec<(WordId, f32)>> = HashMap::new();
        let mut tri_backoff: HashMap<u64, f32> = HashMap::new();
        for (key, mut succ) in kept_tri {
            let h = tri_hist_count[&key] as f64;
            let v = (key & ((1 << 21) - 1)) as WordId;
            succ.sort_unstable_by_key(|&(w, _)| w);
            let mut kept_mass = 0.0;
            let mut lower_mass = 0.0;
            let arcs: Vec<(WordId, f32)> = succ
                .iter()
                .map(|&(w, disc)| {
                    let p = disc / h;
                    kept_mass += p;
                    lower_mass += p_bi(v, w);
                    (w, -(p.ln()) as f32)
                })
                .collect();
            let bow = backoff_weight(kept_mass, lower_mass);
            tri.insert(key, arcs);
            tri_backoff.insert(key, -(bow.ln()) as f32);
        }

        NGramModel {
            vocab_size,
            uni_cost,
            bi,
            bi_backoff,
            tri,
            tri_backoff,
        }
    }

    /// Reconstructs a model from a parsed ARPA file (the import half of
    /// the interop story: LMs trained by external toolchains — SRILM,
    /// KenLM — can drive this decoder).
    ///
    /// # Panics
    /// Panics if the ARPA model is missing a unigram in `1..=vocab_size`
    /// (the decoder's back-off chain requires full unigram coverage) or
    /// if `vocab_size` is out of range.
    pub fn from_arpa(arpa: &crate::arpa::ArpaModel, vocab_size: usize) -> Self {
        assert!(vocab_size > 0, "from_arpa: empty vocabulary");
        assert!(
            vocab_size < (1 << 21),
            "from_arpa: vocabulary exceeds 21-bit word ids"
        );
        let mut uni_cost = vec![f32::INFINITY; vocab_size + 1];
        let mut bi_backoff: HashMap<WordId, f32> = HashMap::new();
        for w in 1..=vocab_size as WordId {
            let &(cost, bow) = arpa
                .unigrams
                .get(&w)
                .unwrap_or_else(|| panic!("from_arpa: missing unigram for word {w}"));
            uni_cost[w as usize] = cost;
            bi_backoff.insert(w, bow);
        }
        let mut bi: HashMap<WordId, Vec<(WordId, f32)>> = HashMap::new();
        let mut tri_backoff: HashMap<u64, f32> = HashMap::new();
        for (&(u, w), &(cost, bow)) in &arpa.bigrams {
            bi.entry(u).or_default().push((w, cost));
            tri_backoff.insert(pack2(u, w), bow);
        }
        let mut tri: HashMap<u64, Vec<(WordId, f32)>> = HashMap::new();
        for (&(u, v, w), &cost) in &arpa.trigrams {
            tri.entry(pack2(u, v)).or_default().push((w, cost));
        }
        for arcs in bi.values_mut() {
            arcs.sort_unstable_by_key(|&(w, _)| w);
        }
        for arcs in tri.values_mut() {
            arcs.sort_unstable_by_key(|&(w, _)| w);
        }
        // Drop back-off weights for histories without kept successors
        // (they would be unreachable states in the WFST).
        tri_backoff.retain(|k, _| tri.contains_key(k));
        NGramModel {
            vocab_size,
            uni_cost,
            bi,
            bi_backoff,
            tri,
            tri_backoff,
        }
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// Unigram cost of `w` (= -ln P(w)).
    ///
    /// # Panics
    /// Panics if `w` is 0 or out of range.
    pub fn unigram_cost(&self, w: WordId) -> f32 {
        assert!(
            w >= 1 && (w as usize) <= self.vocab_size,
            "unigram_cost: bad word {w}"
        );
        self.uni_cost[w as usize]
    }

    /// Kept bigram successors of history `u`, sorted by word id.
    pub fn bigram_arcs(&self, u: WordId) -> &[(WordId, f32)] {
        self.bi.get(&u).map_or(&[], Vec::as_slice)
    }

    /// Back-off cost of unigram history `u` (0.0 if `u` has no kept
    /// bigrams and therefore no explicit back-off).
    pub fn bigram_backoff_cost(&self, u: WordId) -> f32 {
        self.bi_backoff.get(&u).copied().unwrap_or(0.0)
    }

    /// Kept trigram successors of history `(u, v)`, sorted by word id.
    pub fn trigram_arcs(&self, u: WordId, v: WordId) -> &[(WordId, f32)] {
        self.tri.get(&pack2(u, v)).map_or(&[], Vec::as_slice)
    }

    /// Back-off cost of bigram history `(u, v)`.
    pub fn trigram_backoff_cost(&self, u: WordId, v: WordId) -> f32 {
        self.tri_backoff.get(&pack2(u, v)).copied().unwrap_or(0.0)
    }

    /// All bigram histories that kept at least one successor.
    pub fn bigram_histories(&self) -> impl Iterator<Item = WordId> + '_ {
        self.bi.keys().copied()
    }

    /// All trigram histories `(u, v)` that kept at least one successor.
    pub fn trigram_histories(&self) -> impl Iterator<Item = (WordId, WordId)> + '_ {
        self.tri
            .keys()
            .map(|&k| ((k >> 21) as WordId, (k & ((1 << 21) - 1)) as WordId))
    }

    /// Number of kept bigrams.
    pub fn num_bigrams(&self) -> usize {
        self.bi.values().map(Vec::len).sum()
    }

    /// Number of kept trigrams.
    pub fn num_trigrams(&self) -> usize {
        self.tri.values().map(Vec::len).sum()
    }

    /// Cost of `w` after history `hist` (last up-to-2 words), evaluated
    /// with full back-off semantics. This is the reference the WFST
    /// conversion is validated against.
    pub fn word_cost(&self, hist: &[WordId], w: WordId) -> f32 {
        if hist.len() >= 2 {
            let (u, v) = (hist[hist.len() - 2], hist[hist.len() - 1]);
            let key = pack2(u, v);
            if let Some(arcs) = self.tri.get(&key) {
                if let Ok(i) = arcs.binary_search_by_key(&w, |&(x, _)| x) {
                    return arcs[i].1;
                }
                return self.tri_backoff[&key] + self.word_cost(&[v], w);
            }
            return self.word_cost(&[v], w);
        }
        if hist.len() == 1 {
            let u = hist[0];
            if let Some(arcs) = self.bi.get(&u) {
                if let Ok(i) = arcs.binary_search_by_key(&w, |&(x, _)| x) {
                    return arcs[i].1;
                }
                return self.bi_backoff[&u] + self.unigram_cost(w);
            }
            return self.unigram_cost(w);
        }
        self.unigram_cost(w)
    }

    /// Perplexity of a corpus under this model.
    ///
    /// # Panics
    /// Panics if the corpus is empty.
    pub fn perplexity(&self, corpus: &Corpus) -> f64 {
        let mut total_cost = 0.0f64;
        let mut tokens = 0usize;
        for sent in &corpus.sentences {
            for (i, &w) in sent.iter().enumerate() {
                let lo = i.saturating_sub(2);
                total_cost += f64::from(self.word_cost(&sent[lo..i], w));
                tokens += 1;
            }
        }
        assert!(tokens > 0, "perplexity: empty corpus");
        (total_cost / tokens as f64).exp()
    }
}

/// Back-off factor: leftover probability mass divided by the mass the
/// lower-order model assigns outside the kept set. Clamped to keep the
/// model well-behaved when pruning leaves pathological distributions.
fn backoff_weight(kept_mass: f64, lower_order_kept_mass: f64) -> f64 {
    let leftover = (1.0 - kept_mass).max(1e-6);
    let denom = (1.0 - lower_order_kept_mass).max(1e-6);
    (leftover / denom).clamp(1e-4, 1e4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusSpec;

    fn small_model() -> (NGramModel, Corpus) {
        let spec = CorpusSpec {
            vocab_size: 200,
            num_sentences: 800,
            ..Default::default()
        };
        let corpus = spec.generate(11);
        let model = NGramModel::train(&corpus, 200, DiscountConfig::default());
        (model, corpus)
    }

    #[test]
    fn unigrams_cover_vocabulary() {
        let (m, _) = small_model();
        for w in 1..=200 {
            let c = m.unigram_cost(w);
            assert!(c.is_finite() && c > 0.0, "word {w} cost {c}");
        }
    }

    #[test]
    fn unigram_probabilities_sum_to_one() {
        let (m, _) = small_model();
        let total: f64 = (1..=200).map(|w| f64::from(-m.unigram_cost(w)).exp()).sum();
        assert!((total - 1.0).abs() < 1e-6, "sum {total}");
    }

    #[test]
    fn kept_ngrams_are_sorted() {
        let (m, _) = small_model();
        for u in m.bigram_histories().collect::<Vec<_>>() {
            let arcs = m.bigram_arcs(u);
            assert!(arcs.windows(2).all(|w| w[0].0 < w[1].0));
        }
        for (u, v) in m.trigram_histories().collect::<Vec<_>>() {
            let arcs = m.trigram_arcs(u, v);
            assert!(arcs.windows(2).all(|w| w[0].0 < w[1].0));
        }
    }

    #[test]
    fn pruning_leaves_sparse_higher_orders() {
        let (m, _) = small_model();
        assert!(m.num_bigrams() > 0, "no bigrams survived");
        assert!(m.num_trigrams() > 0, "no trigrams survived");
        // Far fewer than the dense V^2 / V^3 combinations — the whole
        // reason back-off arcs exist.
        assert!(m.num_bigrams() < 200 * 200 / 4);
        assert!(m.num_trigrams() < m.num_bigrams() * 50);
    }

    #[test]
    fn bigram_distribution_nearly_normalized() {
        let (m, _) = small_model();
        // For each history: kept mass + bow * (unigram mass outside kept)
        // should be ~1. Clamping can distort degenerate histories, so we
        // check the median-behaved ones.
        let mut oks = 0;
        let mut all = 0;
        for u in m.bigram_histories().collect::<Vec<_>>() {
            let arcs = m.bigram_arcs(u);
            let kept: f64 = arcs.iter().map(|&(_, c)| f64::from(-c).exp()).sum();
            let kept_uni: f64 = arcs
                .iter()
                .map(|&(w, _)| f64::from(-m.unigram_cost(w)).exp())
                .sum();
            let bow = f64::from(-m.bigram_backoff_cost(u)).exp();
            let total = kept + bow * (1.0 - kept_uni);
            all += 1;
            if (total - 1.0).abs() < 0.05 {
                oks += 1;
            }
        }
        assert!(oks as f64 / all as f64 > 0.9, "only {oks}/{all} normalized");
    }

    #[test]
    fn word_cost_backoff_chain_consistent() {
        let (m, _) = small_model();
        // A word with no trigram and no bigram must cost
        // tri_bow + bi_bow + unigram when both histories exist.
        let (u, v) = m.trigram_histories().next().unwrap();
        // Find a word absent from both the trigram and bigram arcs.
        let absent = (1..=200u32)
            .find(|&w| {
                m.trigram_arcs(u, v)
                    .binary_search_by_key(&w, |&(x, _)| x)
                    .is_err()
                    && m.bigram_arcs(v)
                        .binary_search_by_key(&w, |&(x, _)| x)
                        .is_err()
            })
            .expect("some word must be absent");
        let got = m.word_cost(&[u, v], absent);
        let want = m.trigram_backoff_cost(u, v) + m.bigram_backoff_cost(v) + m.unigram_cost(absent);
        // bigram_backoff_cost returns 0 when v has no kept bigrams, which
        // matches word_cost's fall-through; both sides agree either way.
        assert!((got - want).abs() < 1e-5, "{got} vs {want}");
    }

    #[test]
    fn model_beats_uniform_on_heldout() {
        let spec = CorpusSpec {
            vocab_size: 300,
            num_sentences: 3_000,
            ..Default::default()
        };
        let (train, held) = spec.generate(21).split_heldout(0.1);
        let m = NGramModel::train(&train, 300, DiscountConfig::default());
        let ppl = m.perplexity(&held);
        assert!(ppl.is_finite());
        assert!(
            ppl < 300.0,
            "perplexity {ppl} not better than uniform (300)"
        );
    }

    #[test]
    fn trigram_context_helps() {
        // Perplexity with full model must not exceed unigram-only cost.
        let (m, corpus) = small_model();
        let ppl_full = m.perplexity(&corpus);
        let mut uni_cost = 0.0f64;
        let mut n = 0usize;
        for s in &corpus.sentences {
            for &w in s {
                uni_cost += f64::from(m.unigram_cost(w));
                n += 1;
            }
        }
        let ppl_uni = (uni_cost / n as f64).exp();
        assert!(
            ppl_full < ppl_uni,
            "context should reduce perplexity: {ppl_full} vs {ppl_uni}"
        );
    }

    #[test]
    fn from_arpa_roundtrips_the_model() {
        let (m, _) = small_model();
        let text = crate::arpa::to_arpa(&m);
        let parsed = crate::arpa::parse_arpa(&text).unwrap();
        let back = NGramModel::from_arpa(&parsed, 200);
        assert_eq!(back.num_bigrams(), m.num_bigrams());
        assert_eq!(back.num_trigrams(), m.num_trigrams());
        for hist in [vec![], vec![3], vec![7, 1]] {
            for w in (1..=200u32).step_by(13) {
                let a = m.word_cost(&hist, w);
                let b = back.word_cost(&hist, w);
                assert!((a - b).abs() < 1e-3, "hist {hist:?} w {w}: {a} vs {b}");
            }
        }
        // The reconstructed model converts to a layout-valid WFST.
        let fst = crate::graph::lm_to_wfst(&back);
        assert!(fst.is_ilabel_sorted());
        assert_eq!(fst.arcs(0).len(), 200);
    }

    #[test]
    #[should_panic(expected = "missing unigram")]
    fn from_arpa_requires_full_unigram_coverage() {
        let arpa = crate::arpa::ArpaModel::default();
        let _ = NGramModel::from_arpa(&arpa, 5);
    }

    #[test]
    #[should_panic(expected = "bad word")]
    fn unigram_cost_rejects_epsilon() {
        let (m, _) = small_model();
        let _ = m.unigram_cost(0);
    }
}
