//! One-call experiment runners: decode a batch of utterances on a
//! system configuration, simulate the hardware, and score the output.
//!
//! Three configurations mirror the paper's §5 comparisons:
//!
//! * [`run_unfold`] — on-the-fly decoder over the *compressed* AM/LM,
//!   simulated on the UNFOLD accelerator (Table 3 left),
//! * [`run_baseline`] — fully-composed decoder over the offline graph,
//!   simulated on the Reza et al. accelerator (Table 3 right),
//! * [`run_gpu`] — the Tegra X1 analytic model fed with the software
//!   decoder's statistics.

use unfold_am::Utterance;
use unfold_decoder::{
    wer, DecodeConfig, DecodeResult, DecodeScratch, DecodeStats, FullyComposedDecoder, MetricsSink,
    OtfDecoder, TeeSink, TraceSink, WerReport,
};
use unfold_obs::{CacheRates, PoolTelemetry};
use unfold_sim::{Accelerator, AcceleratorConfig, FrameCacheSnapshot, GpuModel, SimReport};

use crate::batch::{decode_batch, decode_batch_recorded};
use crate::system::System;

/// Outcome of running a batch on an accelerated configuration.
#[derive(Debug, Clone)]
pub struct SystemRun {
    /// Accuracy over the batch.
    pub wer: WerReport,
    /// Hardware simulation report.
    pub sim: SimReport,
    /// Aggregated decoder statistics.
    pub stats: DecodeStats,
    /// Audio seconds decoded.
    pub audio_seconds: f64,
    /// Per-utterance decode time on the accelerator, seconds.
    pub per_utterance_seconds: Vec<f64>,
    /// Per-frame cache/OLT hit rates across the whole batch, in decode
    /// order (one entry per frame).
    pub frame_cache: Vec<FrameCacheSnapshot>,
    /// How the decode work spread across the worker pool (one worker
    /// for serial runs).
    pub pool: PoolTelemetry,
}

impl SystemRun {
    /// Mean per-utterance latency in milliseconds (Table 5).
    pub fn avg_latency_ms(&self) -> f64 {
        let n = self.per_utterance_seconds.len().max(1) as f64;
        self.per_utterance_seconds.iter().sum::<f64>() / n * 1e3
    }

    /// Worst per-utterance latency in milliseconds (Table 5).
    pub fn max_latency_ms(&self) -> f64 {
        self.per_utterance_seconds
            .iter()
            .copied()
            .fold(0.0, f64::max)
            * 1e3
    }
}

/// Aggregates per-utterance decode stats into one batch total.
fn merge_stats(total: &mut DecodeStats, one: &DecodeStats) {
    total.frames += one.frames;
    total.tokens_created += one.tokens_created;
    total.tokens_pruned += one.tokens_pruned;
    total.max_active = total.max_active.max(one.max_active);
    total.total_active += one.total_active;
    total.lm_lookups += one.lm_lookups;
    total.lm_fetches += one.lm_fetches;
    total.backoff_hops += one.backoff_hops;
    total.preemptive_prunes += one.preemptive_prunes;
    total.epsilon_expansions += one.epsilon_expansions;
    total.olt_probes += one.olt_probes;
    total.olt_hits += one.olt_hits;
    total.olt_installs += one.olt_installs;
    total.olt_evictions += one.olt_evictions;
}

/// Copies the accelerator's per-frame cache rates onto the telemetry
/// `metrics` recorded during the same run. Frames are matched by the
/// sink's global sequence number, so `metrics` must have been fresh
/// when the run started.
fn attach_cache_rates(metrics: &mut MetricsSink, snaps: &[FrameCacheSnapshot]) {
    for ft in metrics.frames_mut().iter_mut() {
        if let Some(s) = snaps.get(ft.seq as usize) {
            ft.cache = Some(CacheRates {
                state: s.state,
                am_arc: s.am_arc,
                lm_arc: s.lm_arc,
                token: s.token,
                olt: s.olt,
            });
        }
    }
}

/// Shared batch loop: decodes every utterance into the accelerator
/// (optionally teeing the trace into `metrics`), then builds the run
/// report. Observability must not steer the search, so the decode
/// closure receives whichever sink composition is active.
///
/// With `jobs > 1` the decode itself runs on the utterance-parallel
/// pool ([`crate::batch`]): each worker records its utterances' traces
/// privately, and the traces replay into the accelerator serially in
/// utterance order afterwards. The simulator's cache and DRAM state is
/// cumulative across the batch, so only that replay order feeds it the
/// byte-for-byte event stream the serial path produces — which is what
/// keeps every report field bit-identical for any `jobs`.
fn run_accelerated<F>(
    utterances: &[Utterance],
    accel_config: AcceleratorConfig,
    mut metrics: Option<&mut MetricsSink>,
    jobs: usize,
    decode_one: F,
) -> SystemRun
where
    F: Fn(&Utterance, &mut DecodeScratch, &mut dyn TraceSink) -> DecodeResult + Sync,
{
    assert!(!utterances.is_empty(), "run_accelerated: no utterances");
    let mut accel = Accelerator::new(accel_config);
    let mut total_wer = WerReport::default();
    let mut stats = DecodeStats::default();
    let mut audio = 0.0;
    let mut per_utt = Vec::with_capacity(utterances.len());
    let freq_hz = accel.config().frequency_mhz as f64 * 1e6;
    let pool;
    if jobs <= 1 {
        let started = std::time::Instant::now();
        let mut scratch = DecodeScratch::new();
        for utt in utterances {
            let c0 = accel.cycles();
            let res = match metrics {
                Some(ref mut m) => {
                    let mut tee = TeeSink::new(vec![&mut accel, &mut **m]);
                    decode_one(utt, &mut scratch, &mut tee)
                }
                None => decode_one(utt, &mut scratch, &mut accel),
            };
            per_utt.push((accel.cycles() - c0) as f64 / freq_hz);
            total_wer.accumulate(wer(&utt.words, &res.words));
            merge_stats(&mut stats, &res.stats);
            audio += utt.audio_seconds();
        }
        let wall = started.elapsed().as_nanos() as u64;
        pool = PoolTelemetry {
            workers: 1,
            items: utterances.len(),
            per_worker_items: vec![utterances.len()],
            per_worker_busy_ns: vec![wall],
            wall_ns: wall,
        };
    } else {
        let (decoded, pool_t) = decode_batch_recorded(utterances, jobs, |_i, utt, scratch, rec| {
            decode_one(utt, scratch, rec)
        });
        pool = pool_t;
        for (utt, (res, trace)) in utterances.iter().zip(&decoded) {
            let c0 = accel.cycles();
            match metrics {
                Some(ref mut m) => {
                    let mut tee = TeeSink::new(vec![&mut accel, &mut **m]);
                    trace.replay(&mut tee);
                }
                None => trace.replay(&mut accel),
            }
            per_utt.push((accel.cycles() - c0) as f64 / freq_hz);
            total_wer.accumulate(wer(&utt.words, &res.words));
            merge_stats(&mut stats, &res.stats);
            audio += utt.audio_seconds();
        }
    }
    let sim = accel.finish(audio);
    let frame_cache = accel.frame_snapshots().to_vec();
    if let Some(m) = metrics {
        attach_cache_rates(m, &frame_cache);
    }
    SystemRun {
        wer: total_wer,
        sim,
        stats,
        audio_seconds: audio,
        per_utterance_seconds: per_utt,
        frame_cache,
        pool,
    }
}

/// Runs UNFOLD: on-the-fly decode of the compressed models, simulated
/// on the UNFOLD accelerator configuration.
pub fn run_unfold(system: &System, utterances: &[Utterance]) -> SystemRun {
    run_unfold_jobs(system, utterances, 1)
}

/// [`run_unfold`] on the utterance-parallel pool: decode with up to
/// `jobs` workers, then replay the recorded traces into the simulator
/// serially. Bit-identical to `jobs = 1` — only wall time and
/// [`SystemRun::pool`] change.
pub fn run_unfold_jobs(system: &System, utterances: &[Utterance], jobs: usize) -> SystemRun {
    run_unfold_configured_jobs(
        system,
        utterances,
        AcceleratorConfig::unfold(),
        DecodeConfig::default(),
        jobs,
    )
}

/// [`run_unfold`] with explicit accelerator/decoder configurations
/// (used by the cache/OLT sweeps and ablations).
pub fn run_unfold_configured(
    system: &System,
    utterances: &[Utterance],
    accel_config: AcceleratorConfig,
    decode_config: DecodeConfig,
) -> SystemRun {
    run_unfold_configured_jobs(system, utterances, accel_config, decode_config, 1)
}

/// [`run_unfold_configured`] with an explicit worker count.
pub fn run_unfold_configured_jobs(
    system: &System,
    utterances: &[Utterance],
    accel_config: AcceleratorConfig,
    decode_config: DecodeConfig,
    jobs: usize,
) -> SystemRun {
    let decoder = OtfDecoder::new(decode_config);
    run_accelerated(
        utterances,
        accel_config,
        None,
        jobs,
        |utt, scratch, sink| {
            decoder.decode_with(&system.am_comp, &system.lm_comp, &utt.scores, scratch, sink)
        },
    )
}

/// [`run_unfold`] with decode-time telemetry: every trace event is
/// teed into `metrics` alongside the accelerator, and after the batch
/// each recorded frame is annotated with the accelerator's cache/OLT
/// hit rates for that frame. Pass a freshly-created sink.
pub fn run_unfold_traced(
    system: &System,
    utterances: &[Utterance],
    metrics: &mut MetricsSink,
) -> SystemRun {
    run_unfold_traced_jobs(system, utterances, metrics, 1)
}

/// [`run_unfold_traced`] with an explicit worker count; telemetry is
/// fed during the serial replay, so it too is identical for any `jobs`
/// (except host wall-clock fields).
pub fn run_unfold_traced_jobs(
    system: &System,
    utterances: &[Utterance],
    metrics: &mut MetricsSink,
    jobs: usize,
) -> SystemRun {
    let decoder = OtfDecoder::new(DecodeConfig::default());
    run_accelerated(
        utterances,
        AcceleratorConfig::unfold(),
        Some(metrics),
        jobs,
        |utt, scratch, sink| {
            decoder.decode_with(&system.am_comp, &system.lm_comp, &utt.scores, scratch, sink)
        },
    )
}

/// Runs the Reza et al. baseline: fully-composed decode on the offline
/// graph, simulated on the baseline accelerator.
///
/// The composed graph is built once per call — pass it in when running
/// several experiments on one system.
pub fn run_baseline(system: &System, utterances: &[Utterance]) -> SystemRun {
    let composed = system.composed();
    run_baseline_on(system, &composed, utterances)
}

/// [`run_baseline`] against a pre-built composed graph.
pub fn run_baseline_on(
    system: &System,
    composed: &unfold_wfst::Wfst,
    utterances: &[Utterance],
) -> SystemRun {
    run_baseline_configured(
        system,
        composed,
        utterances,
        AcceleratorConfig::reza(),
        DecodeConfig::default(),
    )
}

/// [`run_baseline_on`] with explicit accelerator/decoder configurations.
pub fn run_baseline_configured(
    system: &System,
    composed: &unfold_wfst::Wfst,
    utterances: &[Utterance],
    accel_config: AcceleratorConfig,
    decode_config: DecodeConfig,
) -> SystemRun {
    run_baseline_configured_jobs(system, composed, utterances, accel_config, decode_config, 1)
}

/// [`run_baseline_configured`] with an explicit worker count (the
/// fully-composed decoder keeps its own working memory, so workers
/// ignore the pool scratch).
pub fn run_baseline_configured_jobs(
    _system: &System,
    composed: &unfold_wfst::Wfst,
    utterances: &[Utterance],
    accel_config: AcceleratorConfig,
    decode_config: DecodeConfig,
    jobs: usize,
) -> SystemRun {
    let decoder = FullyComposedDecoder::new(decode_config);
    run_accelerated(
        utterances,
        accel_config,
        None,
        jobs,
        |utt, _scratch, sink| decoder.decode(composed, &utt.scores, sink),
    )
}

/// [`run_baseline_on`] with decode-time telemetry (see
/// [`run_unfold_traced`]).
pub fn run_baseline_traced(
    system: &System,
    composed: &unfold_wfst::Wfst,
    utterances: &[Utterance],
    metrics: &mut MetricsSink,
) -> SystemRun {
    run_baseline_traced_jobs(system, composed, utterances, metrics, 1)
}

/// [`run_baseline_traced`] with an explicit worker count.
pub fn run_baseline_traced_jobs(
    _system: &System,
    composed: &unfold_wfst::Wfst,
    utterances: &[Utterance],
    metrics: &mut MetricsSink,
    jobs: usize,
) -> SystemRun {
    let decoder = FullyComposedDecoder::new(DecodeConfig::default());
    run_accelerated(
        utterances,
        AcceleratorConfig::reza(),
        Some(metrics),
        jobs,
        |utt, _scratch, sink| decoder.decode(composed, &utt.scores, sink),
    )
}

/// Outcome of the GPU (Tegra X1) software run.
#[derive(Debug, Clone)]
pub struct GpuRun {
    /// Viterbi-search time, seconds.
    pub search_seconds: f64,
    /// Viterbi-search energy, mJ.
    pub search_energy_mj: f64,
    /// Acoustic-scoring time, seconds.
    pub scoring_seconds: f64,
    /// Acoustic-scoring energy, mJ.
    pub scoring_energy_mj: f64,
    /// Audio seconds decoded.
    pub audio_seconds: f64,
    /// Per-utterance search latency, seconds.
    pub per_utterance_seconds: Vec<f64>,
}

impl GpuRun {
    /// GPU-only end-to-end decode time (scoring + search), seconds.
    pub fn total_seconds(&self) -> f64 {
        self.search_seconds + self.scoring_seconds
    }

    /// Fraction of GPU time spent in the Viterbi search (Figure 1).
    pub fn viterbi_fraction(&self) -> f64 {
        self.search_seconds / self.total_seconds()
    }
}

/// Runs the software decoder and prices it with the Tegra X1 model.
pub fn run_gpu(system: &System, utterances: &[Utterance]) -> GpuRun {
    run_gpu_jobs(system, utterances, 1)
}

/// [`run_gpu`] with the decode fanned out over `jobs` workers. The GPU
/// model is analytic (priced from per-utterance stats), so no replay
/// step is needed — results aggregate in utterance order.
pub fn run_gpu_jobs(system: &System, utterances: &[Utterance], jobs: usize) -> GpuRun {
    assert!(!utterances.is_empty(), "run_gpu: no utterances");
    let gpu = GpuModel::default();
    let decoder = OtfDecoder::new(DecodeConfig::default());
    let (results, _pool) = decode_batch(utterances, jobs, |_i, utt, scratch| {
        decoder.decode_with(
            &system.am.fst,
            &system.lm_fst,
            &utt.scores,
            scratch,
            &mut unfold_decoder::NullSink,
        )
    });
    let mut search_s = 0.0;
    let mut search_mj = 0.0;
    let mut frames = 0usize;
    let mut audio = 0.0;
    let mut per_utt = Vec::with_capacity(utterances.len());
    for (utt, res) in utterances.iter().zip(&results) {
        let t = gpu.viterbi_seconds(&res.stats);
        per_utt.push(t);
        search_s += t;
        search_mj += gpu.viterbi_energy_mj(&res.stats);
        frames += utt.scores.num_frames();
        audio += utt.audio_seconds();
    }
    GpuRun {
        search_seconds: search_s,
        search_energy_mj: search_mj,
        scoring_seconds: gpu.scoring_seconds(&system.spec.backend, frames),
        scoring_energy_mj: gpu.scoring_energy_mj(&system.spec.backend, frames),
        audio_seconds: audio,
        per_utterance_seconds: per_utt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskSpec;

    fn setup() -> (System, Vec<Utterance>) {
        let s = System::build(&TaskSpec::tiny());
        let utts = s.test_utterances(3);
        (s, utts)
    }

    #[test]
    fn unfold_run_produces_sane_report() {
        let (s, utts) = setup();
        let run = run_unfold(&s, &utts);
        assert!(run.wer.ref_words > 0);
        assert!(run.sim.cycles > 0);
        assert!(
            run.sim.times_real_time() > 1.0,
            "accelerator must beat real time"
        );
        assert!(run.stats.lm_lookups > 0);
        assert_eq!(run.per_utterance_seconds.len(), 3);
        assert!(run.max_latency_ms() >= run.avg_latency_ms());
    }

    #[test]
    fn traced_run_matches_untraced_and_carries_cache_rates() {
        let (s, utts) = setup();
        let plain = run_unfold(&s, &utts);
        let mut metrics = MetricsSink::new();
        let traced = run_unfold_traced(&s, &utts, &mut metrics);

        // Observability listens, it never steers: identical outcomes.
        assert_eq!(plain.wer, traced.wer);
        assert_eq!(plain.stats, traced.stats);
        assert_eq!(plain.sim.cycles, traced.sim.cycles);

        // One cache snapshot per decoded frame, attached to telemetry.
        assert_eq!(traced.frame_cache.len(), traced.stats.frames);
        assert_eq!(metrics.frames().total_seen() as usize, traced.stats.frames);
        for ft in metrics.frames().iter() {
            let c = ft.cache.expect("every frame gets cache rates");
            assert!((0.0..=1.0).contains(&c.state));
            assert!((0.0..=1.0).contains(&c.olt));
        }
        // Stage spans covered the run.
        assert!(metrics.collector().stages.total() > std::time::Duration::ZERO);
    }

    #[test]
    fn parallel_run_is_bit_identical_to_serial() {
        let (s, utts) = setup();
        let serial = run_unfold(&s, &utts);
        for jobs in [2, 4] {
            let par = run_unfold_jobs(&s, &utts, jobs);
            assert_eq!(serial.wer, par.wer, "jobs={jobs}");
            assert_eq!(serial.stats, par.stats, "jobs={jobs}");
            assert_eq!(serial.sim.cycles, par.sim.cycles, "jobs={jobs}");
            assert_eq!(
                serial.per_utterance_seconds, par.per_utterance_seconds,
                "jobs={jobs}"
            );
            assert_eq!(serial.frame_cache, par.frame_cache, "jobs={jobs}");
            assert_eq!(par.pool.workers, jobs.min(utts.len()));
            assert_eq!(par.pool.items, utts.len());
        }
    }

    #[test]
    fn baseline_and_unfold_agree_on_words_mostly() {
        // The two systems search equivalent graphs; on a quiet task
        // their word outputs should be nearly identical.
        let (s, utts) = setup();
        let a = run_unfold(&s, &utts);
        let b = run_baseline(&s, &utts);
        let delta = (a.wer.percent() - b.wer.percent()).abs();
        assert!(delta < 10.0, "WER divergence {delta} too large");
    }

    #[test]
    fn unfold_moves_less_memory_than_baseline() {
        // The paper's core claim: smaller datasets → fewer cache misses
        // → less DRAM traffic (68% fewer accesses, Figure 11).
        let (s, utts) = setup();
        let a = run_unfold(&s, &utts);
        let b = run_baseline(&s, &utts);
        assert!(
            a.sim.dram.total_bytes() < b.sim.dram.total_bytes(),
            "UNFOLD {} vs baseline {}",
            a.sim.dram.total_bytes(),
            b.sim.dram.total_bytes()
        );
    }

    #[test]
    fn gpu_run_is_much_slower_than_accelerators() {
        let (s, utts) = setup();
        let accel = run_unfold(&s, &utts);
        let gpu = run_gpu(&s, &utts);
        assert!(gpu.search_seconds > accel.sim.seconds * 3.0);
        assert!(
            gpu.viterbi_fraction() > 0.5,
            "Viterbi must dominate (Figure 1)"
        );
    }
}
