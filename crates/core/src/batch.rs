//! Utterance-parallel batch decoding.
//!
//! Utterances are independent searches, so a batch parallelizes
//! trivially: a fixed pool of scoped threads ([`std::thread::scope`])
//! pulls utterance indices from one atomic counter, each worker
//! decoding into its own [`DecodeScratch`]. Results land in
//! utterance-order slots, so the output is a plain `Vec` in input
//! order regardless of which worker ran what when.
//!
//! **Determinism.** Decoding is bit-identical for every worker count:
//! each utterance's search depends only on its own scratch, and scratch
//! reuse is itself bit-identical (see [`DecodeScratch`]). The only
//! thing the pool changes is wall time — which is exactly what
//! [`PoolTelemetry`] reports.
//!
//! The accelerator simulator is *not* parallel-safe (its cache and
//! DRAM state is cumulative across the batch), so simulated runs
//! record per-utterance traces in parallel and replay them serially in
//! utterance order — see [`decode_batch_recorded`] and
//! `experiments::run_unfold_jobs`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use unfold_am::Utterance;
use unfold_decoder::{DecodeResult, DecodeScratch, TraceRecorder};
use unfold_obs::PoolTelemetry;

/// Decodes `utterances` with up to `jobs` workers (0 and 1 both mean
/// serial), returning the per-utterance results in input order plus
/// the pool's occupancy telemetry.
///
/// The pool is clamped to the batch size: `jobs` beyond
/// `utterances.len()` never spawn idle workers, so
/// [`PoolTelemetry::occupancy`] is not diluted by threads that pull
/// zero items (a single utterance under any `jobs` reports one worker
/// at occupancy 1.0).
///
/// `decode_one` receives the utterance index, the utterance, and the
/// calling worker's private scratch; it must not touch shared mutable
/// state (the `Sync` bound enforces the usual cases).
pub fn decode_batch<R, F>(
    utterances: &[Utterance],
    jobs: usize,
    decode_one: F,
) -> (Vec<R>, PoolTelemetry)
where
    R: Send,
    F: Fn(usize, &Utterance, &mut DecodeScratch) -> R + Sync,
{
    let started = Instant::now();
    let workers = jobs.max(1).min(utterances.len().max(1));
    if workers <= 1 {
        let mut scratch = DecodeScratch::new();
        let mut results = Vec::with_capacity(utterances.len());
        for (i, utt) in utterances.iter().enumerate() {
            results.push(decode_one(i, utt, &mut scratch));
        }
        let wall = started.elapsed().as_nanos() as u64;
        return (
            results,
            PoolTelemetry {
                workers: 1,
                items: utterances.len(),
                per_worker_items: vec![utterances.len()],
                per_worker_busy_ns: vec![wall],
                wall_ns: wall,
            },
        );
    }

    let next = AtomicUsize::new(0);
    let per_worker: Vec<(Vec<(usize, R)>, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let t0 = Instant::now();
                    let mut scratch = DecodeScratch::new();
                    let mut out: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= utterances.len() {
                            break;
                        }
                        out.push((i, decode_one(i, &utterances[i], &mut scratch)));
                    }
                    (out, t0.elapsed().as_nanos() as u64)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("batch worker panicked"))
            .collect()
    });

    let mut slots: Vec<Option<R>> = (0..utterances.len()).map(|_| None).collect();
    let mut per_worker_items = Vec::with_capacity(workers);
    let mut per_worker_busy_ns = Vec::with_capacity(workers);
    for (items, busy) in per_worker {
        per_worker_items.push(items.len());
        per_worker_busy_ns.push(busy);
        for (i, r) in items {
            slots[i] = Some(r);
        }
    }
    let results = slots
        .into_iter()
        .map(|r| r.expect("every utterance decoded exactly once"))
        .collect();
    (
        results,
        PoolTelemetry {
            workers,
            items: utterances.len(),
            per_worker_items,
            per_worker_busy_ns,
            wall_ns: started.elapsed().as_nanos() as u64,
        },
    )
}

/// [`decode_batch`] variant that also captures each utterance's memory
/// trace in a private [`TraceRecorder`], for serial replay into a
/// stateful simulator afterwards.
pub fn decode_batch_recorded<F>(
    utterances: &[Utterance],
    jobs: usize,
    decode_one: F,
) -> (Vec<(DecodeResult, TraceRecorder)>, PoolTelemetry)
where
    F: Fn(usize, &Utterance, &mut DecodeScratch, &mut TraceRecorder) -> DecodeResult + Sync,
{
    decode_batch(utterances, jobs, |i, utt, scratch| {
        let mut rec = TraceRecorder::new();
        let res = decode_one(i, utt, scratch, &mut rec);
        (res, rec)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::System;
    use crate::task::TaskSpec;
    use unfold_decoder::{DecodeConfig, NullSink, OtfDecoder};

    fn setup() -> (System, Vec<Utterance>) {
        let s = System::build(&TaskSpec::tiny());
        let utts = s.test_utterances(5);
        (s, utts)
    }

    #[test]
    fn every_jobs_count_is_bit_identical_to_serial() {
        let (s, utts) = setup();
        let decoder = OtfDecoder::new(DecodeConfig::default());
        let decode = |_i: usize, utt: &Utterance, scratch: &mut DecodeScratch| {
            decoder.decode_with(&s.am_comp, &s.lm_comp, &utt.scores, scratch, &mut NullSink)
        };
        let (serial, pool1) = decode_batch(&utts, 1, decode);
        assert_eq!(pool1.workers, 1);
        for jobs in [2, 3, 8] {
            let (par, pool) = decode_batch(&utts, jobs, decode);
            assert_eq!(pool.items, utts.len());
            assert_eq!(pool.per_worker_items.iter().sum::<usize>(), utts.len());
            for (a, b) in serial.iter().zip(&par) {
                assert_eq!(a.words, b.words, "jobs={jobs}");
                assert_eq!(a.cost.to_bits(), b.cost.to_bits(), "jobs={jobs}");
                assert_eq!(a.stats, b.stats, "jobs={jobs}");
            }
        }
    }

    #[test]
    fn pool_never_spawns_more_workers_than_items() {
        let (s, utts) = setup();
        let decoder = OtfDecoder::new(DecodeConfig::default());
        let two = &utts[..2];
        let (results, pool) = decode_batch(two, 16, |_i, utt, scratch| {
            decoder.decode_with(&s.am_comp, &s.lm_comp, &utt.scores, scratch, &mut NullSink)
        });
        assert_eq!(results.len(), 2);
        assert_eq!(pool.workers, 2);
        assert!(pool.occupancy() > 0.0);
    }

    #[test]
    fn excess_jobs_on_one_utterance_keep_full_occupancy() {
        // jobs ≫ utterances must not dilute occupancy with idle
        // workers: one utterance collapses to the serial path, whose
        // single worker is busy for the whole wall time — occupancy is
        // exactly 1.0, not just positive.
        let (s, utts) = setup();
        let decoder = OtfDecoder::new(DecodeConfig::default());
        let one = &utts[..1];
        let (results, pool) = decode_batch(one, 8, |_i, utt, scratch| {
            decoder.decode_with(&s.am_comp, &s.lm_comp, &utt.scores, scratch, &mut NullSink)
        });
        assert_eq!(results.len(), 1);
        assert_eq!(pool.workers, 1, "pool must clamp 8 jobs to 1 utterance");
        assert_eq!(pool.per_worker_items, vec![1]);
        assert_eq!(pool.occupancy(), 1.0, "no idle workers to dilute occupancy");
    }

    #[test]
    fn recorded_batch_replays_to_identical_traces() {
        let (s, utts) = setup();
        let decoder = OtfDecoder::new(DecodeConfig::default());
        let record =
            |_i: usize, utt: &Utterance, scratch: &mut DecodeScratch, rec: &mut TraceRecorder| {
                decoder.decode_with(&s.am_comp, &s.lm_comp, &utt.scores, scratch, rec)
            };
        let (serial, _) = decode_batch_recorded(&utts, 1, record);
        let (par, _) = decode_batch_recorded(&utts, 4, record);
        for ((ra, ta), (rb, tb)) in serial.iter().zip(&par) {
            assert_eq!(ra.words, rb.words);
            assert_eq!(ta.events(), tb.events(), "traces must be bit-identical");
        }
    }
}
