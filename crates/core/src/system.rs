//! End-to-end system assembly: one call builds everything a task needs.

use unfold_am::{
    build_am, synthesize_utterance, synthesize_utterance_gmm, AmGraph, GmmModel, Lexicon, Utterance,
};
use unfold_compress::{CompressedAm, CompressedComposed, CompressedLm};
use unfold_lm::{lm_to_wfst, Corpus, NGramModel};
use unfold_wfst::{SizeModel, Wfst};

use crate::composed::build_composed_lg;
use crate::task::{ScoringSynth, TaskSpec};

/// K-means clusters for weight quantization (paper §3.4: 64 → 6 bits).
pub const QUANT_CLUSTERS: usize = 64;

/// Dataset sizes in mebibytes — the currency of Tables 1–2 and Figure 8.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeTable {
    /// Uncompressed AM WFST.
    pub am_mib: f64,
    /// Uncompressed LM WFST.
    pub lm_mib: f64,
    /// Offline-composed WFST (uncompressed).
    pub composed_mib: f64,
    /// Compressed AM (UNFOLD format).
    pub am_comp_mib: f64,
    /// Compressed LM (UNFOLD format).
    pub lm_comp_mib: f64,
    /// Compressed composed WFST (Price-et-al-style baseline).
    pub composed_comp_mib: f64,
    /// Acoustic backend (GMM/DNN/LSTM parameters).
    pub backend_mib: f64,
}

impl SizeTable {
    /// "On-the-fly" row: AM + LM, uncompressed.
    pub fn on_the_fly_mib(&self) -> f64 {
        self.am_mib + self.lm_mib
    }

    /// "On-the-fly + Comp" row: UNFOLD's dataset.
    pub fn unfold_mib(&self) -> f64 {
        self.am_comp_mib + self.lm_comp_mib
    }

    /// Footprint reduction of UNFOLD vs the uncompressed composed WFST
    /// (the paper's headline 31x).
    pub fn reduction_vs_composed(&self) -> f64 {
        self.composed_mib / self.unfold_mib()
    }

    /// Reduction vs the compressed composed WFST (the paper's 8.8x).
    pub fn reduction_vs_composed_comp(&self) -> f64 {
        self.composed_comp_mib / self.unfold_mib()
    }
}

/// A fully-built task: models, compressed models, and generators.
pub struct System {
    /// The task this system instantiates.
    pub spec: TaskSpec,
    /// Pronunciation lexicon.
    pub lexicon: Lexicon,
    /// Acoustic-model WFST and metadata.
    pub am: AmGraph,
    /// Trained n-gram model.
    pub lm_model: NGramModel,
    /// LM WFST (ilabel-sorted, back-off arcs last).
    pub lm_fst: Wfst,
    /// Bit-packed AM (UNFOLD's format).
    pub am_comp: CompressedAm,
    /// Bit-packed LM (UNFOLD's format).
    pub lm_comp: CompressedLm,
    /// The GMM front-end (present under [`ScoringSynth::RealGmm`]).
    pub gmm: Option<GmmModel>,
    /// Held-out sentences for test utterances.
    heldout: Corpus,
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("task", &self.spec.name)
            .finish_non_exhaustive()
    }
}

impl System {
    /// Builds every model for `spec`: corpus → LM → LM WFST, lexicon →
    /// AM WFST, plus the compressed forms. Deterministic in
    /// `spec.seed`.
    pub fn build(spec: &TaskSpec) -> System {
        let corpus = spec.corpus_spec().generate(spec.seed);
        let (train, heldout) = corpus.split_heldout(0.05);
        let lm_model = NGramModel::train(&train, spec.vocab_size, spec.discount);
        let lm_fst = lm_to_wfst(&lm_model);
        let lexicon = Lexicon::generate(spec.vocab_size, spec.phonemes, spec.seed ^ 0xA11CE);
        let am = build_am(&lexicon, spec.topology);
        let am_comp = CompressedAm::compress(&am.fst, QUANT_CLUSTERS, spec.seed);
        let lm_comp = CompressedLm::compress(&lm_fst, QUANT_CLUSTERS, spec.seed);
        let gmm = match spec.scoring {
            ScoringSynth::Table => None,
            ScoringSynth::RealGmm {
                dim,
                mixtures,
                separation,
            } => Some(GmmModel::synthesize(
                am.num_pdfs,
                dim,
                mixtures,
                separation,
                spec.seed ^ 0x6A11,
            )),
        };
        System {
            spec: *spec,
            lexicon,
            am,
            lm_model,
            lm_fst,
            am_comp,
            lm_comp,
            gmm,
            heldout,
        }
    }

    /// Builds the offline-composed decoding graph (large; built on
    /// demand rather than held by the system).
    pub fn composed(&self) -> Wfst {
        build_composed_lg(&self.lexicon, self.spec.topology, &self.lm_model)
    }

    /// Synthesizes `n` test utterances from held-out sentences.
    ///
    /// # Panics
    /// Panics if the held-out set is empty.
    pub fn test_utterances(&self, n: usize) -> Vec<Utterance> {
        assert!(!self.heldout.sentences.is_empty(), "no held-out sentences");
        (0..n)
            .map(|i| {
                let sent = &self.heldout.sentences[i % self.heldout.sentences.len()];
                // Cap utterance length to keep decode time bounded.
                let words = &sent[..sent.len().min(12)];
                let seed = self.spec.seed.wrapping_add(i as u64 * 7919);
                match &self.gmm {
                    Some(gmm) => synthesize_utterance_gmm(
                        words,
                        &self.lexicon,
                        self.spec.topology,
                        gmm,
                        seed,
                    ),
                    None => synthesize_utterance(
                        words,
                        &self.lexicon,
                        self.spec.topology,
                        &self.spec.noise,
                        seed,
                    ),
                }
            })
            .collect()
    }

    /// Measures every dataset size (builds the composed graph, so this
    /// is the most expensive call on a full-size task).
    pub fn sizes(&self) -> SizeTable {
        let composed = self.composed();
        let composed_comp = CompressedComposed::compress(&composed, QUANT_CLUSTERS, self.spec.seed);
        const MIB: f64 = 1024.0 * 1024.0;
        SizeTable {
            am_mib: SizeModel::UNCOMPRESSED.mib(&self.am.fst),
            lm_mib: SizeModel::UNCOMPRESSED.mib(&self.lm_fst),
            composed_mib: SizeModel::UNCOMPRESSED.mib(&composed),
            am_comp_mib: self.am_comp.size_bytes() as f64 / MIB,
            lm_comp_mib: self.lm_comp.size_bytes() as f64 / MIB,
            composed_comp_mib: composed_comp.size_bytes() as f64 / MIB,
            backend_mib: self.spec.backend.bytes() as f64 / MIB,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_system() -> System {
        System::build(&TaskSpec::tiny())
    }

    #[test]
    fn build_is_deterministic() {
        let a = tiny_system();
        let b = tiny_system();
        assert_eq!(a.am.fst.num_arcs(), b.am.fst.num_arcs());
        assert_eq!(a.lm_fst.num_arcs(), b.lm_fst.num_arcs());
        let ua = a.test_utterances(2);
        let ub = b.test_utterances(2);
        assert_eq!(ua[0].words, ub[0].words);
        assert_eq!(ua[1].alignment, ub[1].alignment);
    }

    #[test]
    fn sizes_reproduce_paper_shape() {
        let s = tiny_system();
        let t = s.sizes();
        // Composed dwarfs the individual models.
        assert!(t.composed_mib > 3.0 * t.on_the_fly_mib());
        // Compression shrinks both representations.
        assert!(t.unfold_mib() < t.on_the_fly_mib());
        assert!(t.composed_comp_mib < t.composed_mib);
        // UNFOLD's dataset is the smallest of all configurations.
        assert!(t.unfold_mib() < t.composed_comp_mib);
        // Headline reductions point the right way.
        assert!(t.reduction_vs_composed() > t.reduction_vs_composed_comp());
        assert!(
            t.reduction_vs_composed() > 8.0,
            "got {}",
            t.reduction_vs_composed()
        );
    }

    #[test]
    fn real_gmm_system_builds_and_decodes() {
        let spec = TaskSpec::tiny().with_real_gmm(10, 2, 5.0);
        let s = System::build(&spec);
        assert!(s.gmm.is_some());
        let utts = s.test_utterances(2);
        assert_eq!(utts[0].scores.num_pdfs(), s.am.num_pdfs);
        let run = crate::experiments::run_unfold(&s, &utts);
        assert!(
            run.wer.percent() < 25.0,
            "well-separated GMM: {}",
            run.wer.percent()
        );
    }

    #[test]
    fn utterances_use_heldout_words() {
        let s = tiny_system();
        let utts = s.test_utterances(3);
        assert_eq!(utts.len(), 3);
        for u in &utts {
            assert!(!u.words.is_empty() && u.words.len() <= 12);
            assert!(u.scores.num_frames() > 0);
        }
    }
}
