//! Offline-composed decoding graph, at realistic size.
//!
//! Real toolchains build the unified recognition network by composing
//! L (lexicon) with G (the n-gram LM), expanding HMM states, and
//! *determinizing*: the words leaving one LM state share a pronunciation
//! prefix tree instead of one chain per word. That keeps the result at
//! roughly `LM arcs × pronunciation states` — an order of magnitude
//! beyond the two inputs (Table 1) — and keeps the active search set
//! comparable to the on-the-fly decoder's (one tree position per live
//! LM history).
//!
//! [`build_composed_lg`] reproduces that construction: every LM state
//! becomes an anchor; a prefix tree over the state's outgoing words is
//! expanded into HMM chains; word identity (and the LM weight) is
//! applied on the leaf's cross-word arc to the destination anchor;
//! back-off arcs become epsilon arcs between anchors. The result is
//! search-equivalent to on-the-fly composition (same best path, same
//! words), which the integration tests verify.
//!
//! (`unfold_wfst::compose_am_lm` — the exact pair-space product — is
//! still used by the small-scale equivalence tests; it is exponentially
//! larger than what real toolchains ship, so it is not used for size
//! accounting.)

use std::collections::HashMap;

use unfold_am::{HmmTopology, Lexicon, PhonemeId};
use unfold_lm::graph::LmWfstLayout;
use unfold_lm::NGramModel;
use unfold_wfst::{Arc, StateId, Wfst, WfstBuilder, EPSILON};

/// Negative log of the HMM self-loop probability (matches the AM).
const SELF_LOOP_COST: f32 = core::f32::consts::LN_2;
/// Negative log of the HMM advance probability.
const ADVANCE_COST: f32 = core::f32::consts::LN_2;

/// One outgoing word of an LM state, destined for another anchor.
struct WordExit {
    word: u32,
    lm_cost: f32,
    dest_anchor: StateId,
}

/// Expands the prefix tree of `exits` from `anchor`, adding HMM chains
/// and leaf cross-word arcs.
fn expand_prefix_tree(
    b: &mut WfstBuilder,
    lexicon: &Lexicon,
    topology: HmmTopology,
    anchor: StateId,
    exits: &[WordExit],
) {
    struct Node {
        children: Vec<(PhonemeId, usize)>,
        words: Vec<usize>, // indices into exits
    }
    let mut trie = vec![Node {
        children: Vec::new(),
        words: Vec::new(),
    }];
    for (i, e) in exits.iter().enumerate() {
        let mut node = 0usize;
        for &ph in lexicon.pronunciation(e.word) {
            node = match trie[node].children.iter().find(|&&(p, _)| p == ph) {
                Some(&(_, n)) => n,
                None => {
                    let n = trie.len();
                    trie.push(Node {
                        children: Vec::new(),
                        words: Vec::new(),
                    });
                    trie[node].children.push((ph, n));
                    n
                }
            };
        }
        trie[node].words.push(i);
    }

    // DFS expansion (same state-allocation discipline as `build_am`,
    // so arcs stay local and the graph stays cache-friendly).
    let mut stack: Vec<(usize, StateId)> = vec![(0, anchor)];
    while let Some((node, entry)) = stack.pop() {
        for &wi in &trie[node].words {
            let e = &exits[wi];
            b.add_arc(entry, Arc::new(EPSILON, e.word, e.lm_cost, e.dest_anchor));
        }
        for i in (0..trie[node].children.len()).rev() {
            let (ph, child) = trie[node].children[i];
            let mut prev = entry;
            for pdf in topology.pdfs(ph) {
                let s = b.add_state();
                b.add_arc(prev, Arc::new(pdf, EPSILON, ADVANCE_COST, s));
                b.add_arc(s, Arc::new(pdf, EPSILON, SELF_LOOP_COST, s));
                prev = s;
            }
            stack.push((child, prev));
        }
    }
}

/// Builds the offline-composed decoding graph for `model` over
/// `lexicon` with the given HMM `topology`.
///
/// # Panics
/// Panics if the lexicon vocabulary is smaller than the LM's.
pub fn build_composed_lg(lexicon: &Lexicon, topology: HmmTopology, model: &NGramModel) -> Wfst {
    assert!(
        lexicon.vocab_size() >= model.vocab_size(),
        "build_composed_lg: lexicon smaller than LM vocabulary"
    );
    let v = model.vocab_size();
    // Anchors mirror LM states 1:1 (same layout as `lm_to_wfst`).
    let mut tri_hists: Vec<(u32, u32)> = model.trigram_histories().collect();
    tri_hists.sort_unstable();
    let mut bigram_states = HashMap::new();
    let first_bigram_state = (v + 1) as StateId;
    for (i, &h) in tri_hists.iter().enumerate() {
        bigram_states.insert(h, first_bigram_state + i as StateId);
    }
    let layout = LmWfstLayout {
        vocab_size: v,
        bigram_states,
    };
    let num_anchors = v + 1 + tri_hists.len();

    let mut b = WfstBuilder::with_states(num_anchors);
    b.set_start(0);
    for a in 0..num_anchors {
        b.set_final(a as StateId, 0.0);
    }

    // Root anchor: the full vocabulary (unigrams).
    let root_exits: Vec<WordExit> = (1..=v as u32)
        .map(|w| WordExit {
            word: w,
            lm_cost: model.unigram_cost(w),
            dest_anchor: w,
        })
        .collect();
    expand_prefix_tree(&mut b, lexicon, topology, 0, &root_exits);

    // Unigram-history anchors: kept bigrams + back-off epsilon.
    for u in 1..=v as u32 {
        let exits: Vec<WordExit> = model
            .bigram_arcs(u)
            .iter()
            .map(|&(w, cost)| WordExit {
                word: w,
                lm_cost: cost,
                dest_anchor: layout.state_for(&[u, w]),
            })
            .collect();
        expand_prefix_tree(&mut b, lexicon, topology, u, &exits);
        b.add_arc(u, Arc::epsilon(model.bigram_backoff_cost(u), 0));
    }

    // Bigram-history anchors: kept trigrams + back-off epsilon.
    for &(u, vv) in &tri_hists {
        let s = layout.state_for(&[u, vv]);
        let exits: Vec<WordExit> = model
            .trigram_arcs(u, vv)
            .iter()
            .map(|&(w, cost)| WordExit {
                word: w,
                lm_cost: cost,
                dest_anchor: layout.state_for(&[vv, w]),
            })
            .collect();
        expand_prefix_tree(&mut b, lexicon, topology, s, &exits);
        b.add_arc(s, Arc::epsilon(model.trigram_backoff_cost(u, vv), vv));
    }

    // CTC blank self-loop on the root anchor, matching the AM.
    if let Some(blank) = topology.blank_pdf(lexicon.num_phonemes()) {
        b.add_arc(0, Arc::new(blank, EPSILON, SELF_LOOP_COST, 0));
    }

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use unfold_lm::{CorpusSpec, DiscountConfig};
    use unfold_wfst::SizeModel;

    fn build() -> (Lexicon, NGramModel, Wfst) {
        let lex = Lexicon::generate(100, 25, 8);
        let spec = CorpusSpec {
            vocab_size: 100,
            num_sentences: 800,
            ..Default::default()
        };
        let model = NGramModel::train(&spec.generate(9), 100, DiscountConfig::default());
        let lg = build_composed_lg(&lex, HmmTopology::Kaldi3State, &model);
        (lex, model, lg)
    }

    #[test]
    fn size_explodes_past_inputs() {
        let (lex, model, lg) = build();
        let am = unfold_am::build_am(&lex, HmmTopology::Kaldi3State);
        let lm = unfold_lm::lm_to_wfst(&model);
        let composed = SizeModel::UNCOMPRESSED.bytes(&lg);
        let parts = SizeModel::UNCOMPRESSED.bytes(&am.fst) + SizeModel::UNCOMPRESSED.bytes(&lm);
        assert!(
            composed > 3 * parts,
            "composed {composed} should dwarf AM+LM {parts}"
        );
    }

    #[test]
    fn anchors_are_all_final_with_backoff_epsilons() {
        let (_, model, lg) = build();
        let v = model.vocab_size() as StateId;
        for a in 0..=v {
            assert_eq!(lg.final_weight(a), Some(0.0));
        }
        for u in 1..=v {
            assert!(lg
                .arcs(u)
                .iter()
                .any(|arc| arc.ilabel == EPSILON && arc.olabel == EPSILON && arc.nextstate == 0));
        }
    }

    #[test]
    fn root_shares_pronunciation_prefixes() {
        // Determinization: the root anchor has at most one outgoing
        // chain per distinct first phoneme, far fewer than V.
        let (lex, model, lg) = build();
        let first_phonemes: std::collections::HashSet<_> = (1..=model.vocab_size() as u32)
            .map(|w| lex.pronunciation(w)[0])
            .collect();
        // Root arcs: one advance arc per distinct first phoneme (plus
        // any single-phoneme word-end arcs; our lexicon min length is 2).
        assert_eq!(lg.arcs(0).len(), first_phonemes.len());
    }

    #[test]
    fn every_word_has_a_cross_word_arc() {
        let (_, model, lg) = build();
        let mut words = std::collections::HashSet::new();
        for s in lg.states() {
            for a in lg.arcs(s) {
                if a.is_cross_word() {
                    words.insert(a.olabel);
                }
            }
        }
        // Every vocabulary word leaves the root trie at least once.
        assert_eq!(words.len(), model.vocab_size());
    }

    #[test]
    fn ctc_variant_is_smaller() {
        let lex = Lexicon::generate(100, 25, 8);
        let spec = CorpusSpec {
            vocab_size: 100,
            num_sentences: 800,
            ..Default::default()
        };
        let model = NGramModel::train(&spec.generate(9), 100, DiscountConfig::default());
        let kaldi = build_composed_lg(&lex, HmmTopology::Kaldi3State, &model);
        let ctc = build_composed_lg(&lex, HmmTopology::Ctc, &model);
        assert!(ctc.num_states() < kaldi.num_states());
    }
}
