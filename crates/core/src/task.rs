//! Task presets: scaled synthetic stand-ins for the paper's four ASR
//! setups.
//!
//! The real tasks decode 60K–200K-word vocabularies with WFSTs beyond a
//! gigabyte; a reproduction must fit in CI memory, so every preset is
//! scaled down by roughly 75x in vocabulary while keeping the paper's
//! *relative* proportions (Table 1): Voxforge ≪ TEDLIUM ≈ Librispeech,
//! EESEN's LM bigger than Kaldi-TEDLIUM's, AM smaller than LM, composed
//! an order of magnitude beyond both. The acoustic back-ends are scaled
//! by the same factor so Figure 2's "the WFST dominates" shape is
//! preserved.

use unfold_am::{AcousticBackend, HmmTopology, NoiseModel};
use unfold_lm::{CorpusSpec, DiscountConfig};

/// How test-utterance acoustic scores are synthesized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScoringSynth {
    /// Score tables with the calibrated error model
    /// ([`unfold_am::NoiseModel`]) — the default; WER is a controlled
    /// parameter.
    Table,
    /// A real diagonal-covariance GMM ([`unfold_am::GmmModel`]):
    /// feature vectors are sampled and scored with actual likelihood
    /// arithmetic; WER emerges from Gaussian overlap.
    RealGmm {
        /// Feature dimensionality.
        dim: usize,
        /// Mixtures per PDF.
        mixtures: usize,
        /// Mean separation (smaller ⇒ more overlap ⇒ more errors).
        separation: f32,
    },
}

/// Everything needed to instantiate one evaluation task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskSpec {
    /// Task name as it appears in the paper's figures.
    pub name: &'static str,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Training-corpus sentences.
    pub num_sentences: usize,
    /// Phoneme inventory size.
    pub phonemes: usize,
    /// HMM topology (Kaldi 3-state vs EESEN CTC).
    pub topology: HmmTopology,
    /// N-gram pruning/discounting.
    pub discount: DiscountConfig,
    /// Acoustic scoring backend descriptor (scaled).
    pub backend: AcousticBackend,
    /// Acoustic score noise (the WER knob for [`ScoringSynth::Table`]).
    pub noise: NoiseModel,
    /// Score synthesis substrate.
    pub scoring: ScoringSynth,
    /// Master seed for all generators.
    pub seed: u64,
}

impl TaskSpec {
    /// Scaled Kaldi-TEDLIUM: GMM scoring, trigram LM, noisy spontaneous
    /// speech (the paper's highest-WER task).
    pub fn tedlium_kaldi() -> Self {
        TaskSpec {
            name: "Kaldi-TEDLIUM",
            vocab_size: 2_000,
            num_sentences: 20_000,
            phonemes: 40,
            topology: HmmTopology::Kaldi3State,
            discount: DiscountConfig::default(),
            backend: AcousticBackend::Gmm {
                num_pdfs: 120,
                mixtures: 32,
                feat_dim: 60,
            },
            noise: NoiseModel {
                word_confusion_prob: 0.28,
                noise_sigma: 1.0,
                ..NoiseModel::default()
            },
            scoring: ScoringSynth::Table,
            seed: 0x7ED,
        }
    }

    /// Scaled Kaldi-Librispeech: DNN scoring, read speech (cleaner).
    pub fn librispeech() -> Self {
        TaskSpec {
            name: "Kaldi-Librispeech",
            vocab_size: 2_500,
            num_sentences: 22_000,
            phonemes: 42,
            topology: HmmTopology::Kaldi3State,
            discount: DiscountConfig::default(),
            backend: AcousticBackend::Dnn {
                layer_widths: [120, 512, 512, 512, 512, 2000],
            },
            noise: NoiseModel {
                word_confusion_prob: 0.085,
                noise_sigma: 0.9,
                ..NoiseModel::default()
            },
            scoring: ScoringSynth::Table,
            seed: 0x11B5,
        }
    }

    /// Scaled Kaldi-Voxforge: the small-vocabulary task.
    pub fn voxforge() -> Self {
        TaskSpec {
            name: "Kaldi-Voxforge",
            vocab_size: 250,
            num_sentences: 3_000,
            phonemes: 35,
            topology: HmmTopology::Kaldi3State,
            discount: DiscountConfig::default(),
            backend: AcousticBackend::Gmm {
                num_pdfs: 105,
                mixtures: 8,
                feat_dim: 39,
            },
            noise: NoiseModel {
                word_confusion_prob: 0.14,
                noise_sigma: 0.9,
                ..NoiseModel::default()
            },
            scoring: ScoringSynth::Table,
            seed: 0x40F,
        }
    }

    /// Scaled EESEN-TEDLIUM: CTC topology, LSTM scoring, and the
    /// biggest LM of the four (paper Table 1: 102 MB vs 66 MB).
    pub fn tedlium_eesen() -> Self {
        TaskSpec {
            name: "EESEN-TEDLIUM",
            vocab_size: 2_000,
            num_sentences: 34_000,
            phonemes: 40,
            topology: HmmTopology::Ctc,
            discount: DiscountConfig {
                min_bigram_count: 2,
                min_trigram_count: 2,
                ..Default::default()
            },
            backend: AcousticBackend::Lstm {
                input: 120,
                hidden: 100,
                layers: 4,
            },
            noise: NoiseModel {
                word_confusion_prob: 0.26,
                noise_sigma: 1.0,
                ..NoiseModel::default()
            },
            scoring: ScoringSynth::Table,
            seed: 0xEE5E,
        }
    }

    /// All four paper tasks, in the figures' order.
    pub fn all_paper_tasks() -> Vec<TaskSpec> {
        vec![
            Self::tedlium_kaldi(),
            Self::librispeech(),
            Self::voxforge(),
            Self::tedlium_eesen(),
        ]
    }

    /// A miniature task for unit/integration tests: builds in well under
    /// a second, still exercises every code path (back-off, cross-word,
    /// compression, simulation).
    pub fn tiny() -> Self {
        TaskSpec {
            name: "tiny",
            vocab_size: 80,
            num_sentences: 600,
            phonemes: 25,
            topology: HmmTopology::Kaldi3State,
            discount: DiscountConfig::default(),
            backend: AcousticBackend::Gmm {
                num_pdfs: 75,
                mixtures: 4,
                feat_dim: 20,
            },
            noise: NoiseModel {
                word_confusion_prob: 0.10,
                noise_sigma: 0.8,
                ..NoiseModel::default()
            },
            scoring: ScoringSynth::Table,
            seed: 42,
        }
    }

    /// Switches the task to real-GMM scoring (see
    /// [`ScoringSynth::RealGmm`]).
    pub fn with_real_gmm(mut self, dim: usize, mixtures: usize, separation: f32) -> Self {
        self.scoring = ScoringSynth::RealGmm {
            dim,
            mixtures,
            separation,
        };
        self
    }

    /// The corpus generator settings for this task.
    pub fn corpus_spec(&self) -> CorpusSpec {
        CorpusSpec {
            vocab_size: self.vocab_size,
            num_sentences: self.num_sentences,
            ..CorpusSpec::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_proportions_match_table1() {
        let ted = TaskSpec::tedlium_kaldi();
        let libri = TaskSpec::librispeech();
        let vox = TaskSpec::voxforge();
        let eesen = TaskSpec::tedlium_eesen();
        // Voxforge is an order of magnitude smaller.
        assert!(vox.vocab_size * 5 < ted.vocab_size);
        // EESEN's LM training set exceeds Kaldi-TEDLIUM's (102 vs 66 MB).
        assert!(eesen.num_sentences > ted.num_sentences);
        // Librispeech has the biggest vocabulary (200K words full-scale).
        assert!(libri.vocab_size >= ted.vocab_size);
    }

    #[test]
    fn eesen_uses_ctc() {
        assert_eq!(TaskSpec::tedlium_eesen().topology, HmmTopology::Ctc);
        assert_eq!(TaskSpec::tedlium_kaldi().topology, HmmTopology::Kaldi3State);
    }

    #[test]
    fn real_gmm_switch() {
        let spec = TaskSpec::tiny().with_real_gmm(12, 2, 4.0);
        assert!(matches!(
            spec.scoring,
            ScoringSynth::RealGmm { dim: 12, .. }
        ));
        assert_eq!(TaskSpec::tiny().scoring, ScoringSynth::Table);
    }

    #[test]
    fn all_tasks_enumerates_four() {
        let names: Vec<_> = TaskSpec::all_paper_tasks().iter().map(|t| t.name).collect();
        assert_eq!(
            names,
            vec![
                "Kaldi-TEDLIUM",
                "Kaldi-Librispeech",
                "Kaldi-Voxforge",
                "EESEN-TEDLIUM"
            ]
        );
    }
}
