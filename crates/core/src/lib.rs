#![warn(missing_docs)]

//! UNFOLD: a memory-efficient speech recognizer using on-the-fly WFST
//! composition — full-system reproduction.
//!
//! This facade crate wires the substrates together into the paper's two
//! end-to-end systems and its four evaluation tasks:
//!
//! * [`task`] — scaled synthetic equivalents of the paper's
//!   Kaldi-TEDLIUM, Kaldi-Librispeech, Kaldi-Voxforge, and
//!   EESEN-TEDLIUM setups,
//! * [`system`] — builds everything a task needs (lexicon, AM, LM,
//!   compressed models, test utterances) and reports dataset sizes,
//! * [`composed`] — the realistic offline-composed decoding graph
//!   (LM-arc expansion) whose size explosion motivates the paper,
//! * [`experiments`] — one-call runners pairing a decoder with an
//!   accelerator model: UNFOLD, the Reza et al. baseline, and the
//!   Tegra X1 GPU,
//! * [`batch`] — the utterance-parallel worker pool behind the
//!   runners' `_jobs` variants (bit-identical for any worker count),
//! * [`models`] — the unified model facade: one API over generated,
//!   owned-loaded, and zero-copy mmap-backed `.unfb` bundle models.
//!
//! # Quickstart
//!
//! ```
//! use unfold::{System, TaskSpec};
//! use unfold::experiments::run_unfold;
//!
//! let system = System::build(&TaskSpec::tiny());
//! let utts = system.test_utterances(2);
//! let run = run_unfold(&system, &utts);
//! assert!(run.wer.percent() < 50.0);
//! assert!(run.sim.times_real_time() > 1.0);
//! ```

pub mod batch;
pub mod composed;
pub mod experiments;
pub mod models;
pub mod system;
pub mod task;

pub use batch::{decode_batch, decode_batch_recorded};
pub use composed::build_composed_lg;
pub use experiments::{
    run_baseline, run_gpu, run_gpu_jobs, run_unfold, run_unfold_jobs, GpuRun, SystemRun,
};
pub use models::{pack_system, AmModel, LmModel, Models, DEFAULT_LM};
pub use system::{SizeTable, System};
pub use task::{ScoringSynth, TaskSpec};
