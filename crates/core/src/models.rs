//! The unified model API: one way to obtain decodable models.
//!
//! Decodable AM/LM pairs historically came from three unrelated places
//! — built in memory by [`System::build`], loaded from loose
//! `.unfa`/`.unfl` files, or (for serving) wrapped in `Arc`s by hand.
//! [`Models`] is the single facade over all of them:
//!
//! * [`Models::from_task`] / [`Models::from_system`] — generators and
//!   presets (owned, in memory),
//! * [`Models::from_parts`] — owned compressed models from anywhere,
//! * [`Models::open`] — a packed `.unfb` bundle, fully loaded and
//!   checksum-verified,
//! * [`Models::open_mmap`] — the same bundle, zero-copy: arcs decode
//!   straight out of the mapped file, nothing is deserialized (section
//!   checksums are still verified — one streaming pass over the mapped
//!   bytes per model section, no copy).
//!
//! Whatever the origin, the facade hands out [`AmModel`]/[`LmModel`]
//! handles that implement the decoder's [`AmSource`]/[`LmSource`]
//! traits, are cheaply cloneable, and are `Send + Sync` — the same
//! handle type drives a one-shot CLI decode and a multi-worker server.

use std::path::Path;
use std::sync::Arc;

use unfold_compress::{
    Bundle, BundleError, BundleWriter, CompressedAm, CompressedLm, SharedAm, SharedLm,
};
use unfold_decoder::sources::Fetch;
use unfold_decoder::{AmSource, ArcVisit, LmSource};
use unfold_lm::NGramModel;
use unfold_wfst::{Arc as WfstArc, Label, StateId};

use crate::system::{System, QUANT_CLUSTERS};
use crate::task::TaskSpec;

/// Name given to the primary LM when packing a bundle.
pub const DEFAULT_LM: &str = "default";

/// A decodable acoustic model: owned in memory, or a zero-copy view
/// into a bundle (whose bytes may be a read-only file mapping).
#[derive(Debug, Clone)]
pub enum AmModel {
    /// Owned, deserialized compressed AM.
    Owned(Arc<CompressedAm>),
    /// Zero-copy view over a bundle section.
    Shared(SharedAm),
}

/// A decodable language model; see [`AmModel`].
#[derive(Debug, Clone)]
pub enum LmModel {
    /// Owned, deserialized compressed LM.
    Owned(Arc<CompressedLm>),
    /// Zero-copy view over a bundle section.
    Shared(SharedLm),
}

impl AmSource for AmModel {
    fn start(&self) -> StateId {
        match self {
            AmModel::Owned(am) => AmSource::start(&**am),
            AmModel::Shared(am) => AmSource::start(am),
        }
    }

    fn num_states(&self) -> usize {
        match self {
            AmModel::Owned(am) => AmSource::num_states(&**am),
            AmModel::Shared(am) => AmSource::num_states(am),
        }
    }

    fn final_weight(&self, s: StateId) -> Option<f32> {
        match self {
            AmModel::Owned(am) => AmSource::final_weight(&**am, s),
            AmModel::Shared(am) => AmSource::final_weight(am, s),
        }
    }

    fn state_addr(&self, s: StateId) -> u64 {
        match self {
            AmModel::Owned(am) => AmSource::state_addr(&**am, s),
            AmModel::Shared(am) => AmSource::state_addr(am, s),
        }
    }

    fn for_each_arc(&self, s: StateId, f: &mut dyn FnMut(ArcVisit)) {
        match self {
            AmModel::Owned(am) => AmSource::for_each_arc(&**am, s, f),
            AmModel::Shared(am) => AmSource::for_each_arc(am, s, f),
        }
    }
}

impl LmSource for LmModel {
    fn start(&self) -> StateId {
        match self {
            LmModel::Owned(lm) => LmSource::start(&**lm),
            LmModel::Shared(lm) => LmSource::start(lm),
        }
    }

    fn num_states(&self) -> usize {
        match self {
            LmModel::Owned(lm) => LmSource::num_states(&**lm),
            LmModel::Shared(lm) => LmSource::num_states(lm),
        }
    }

    fn state_addr(&self, s: StateId) -> u64 {
        match self {
            LmModel::Owned(lm) => LmSource::state_addr(&**lm, s),
            LmModel::Shared(lm) => LmSource::state_addr(lm, s),
        }
    }

    fn lookup_word_into(
        &self,
        s: StateId,
        word: Label,
        probes: &mut Vec<Fetch>,
    ) -> Option<WfstArc> {
        match self {
            LmModel::Owned(lm) => LmSource::lookup_word_into(&**lm, s, word, probes),
            LmModel::Shared(lm) => LmSource::lookup_word_into(lm, s, word, probes),
        }
    }

    fn backoff(&self, s: StateId) -> Option<(WfstArc, Fetch)> {
        match self {
            LmModel::Owned(lm) => LmSource::backoff(&**lm, s),
            LmModel::Shared(lm) => LmSource::backoff(lm, s),
        }
    }
}

/// One AM plus one or more named LMs, however they were obtained.
#[derive(Debug, Clone)]
pub struct Models {
    am: AmModel,
    lms: Vec<(String, LmModel)>,
    bundle: Option<Arc<Bundle>>,
}

impl Models {
    /// Wraps owned compressed models. The first LM is the default.
    ///
    /// # Panics
    /// Panics if `lms` is empty or contains duplicate names.
    pub fn from_parts(am: CompressedAm, lms: Vec<(String, CompressedLm)>) -> Models {
        assert!(!lms.is_empty(), "a model set needs at least one LM");
        let lms: Vec<(String, LmModel)> = lms
            .into_iter()
            .map(|(name, lm)| (name, LmModel::Owned(Arc::new(lm))))
            .collect();
        for (i, (name, _)) in lms.iter().enumerate() {
            assert!(
                lms[..i].iter().all(|(n, _)| n != name),
                "duplicate LM name '{name}'"
            );
        }
        Models {
            am: AmModel::Owned(Arc::new(am)),
            lms,
            bundle: None,
        }
    }

    /// Models of an already-built [`System`] (owned; the system keeps
    /// its own copies). The LM is named [`DEFAULT_LM`].
    pub fn from_system(system: &System) -> Models {
        Models::from_parts(
            system.am_comp.clone(),
            vec![(DEFAULT_LM.to_string(), system.lm_comp.clone())],
        )
    }

    /// Builds a task preset and wraps its models; see
    /// [`Models::from_system`].
    pub fn from_task(spec: &TaskSpec) -> Models {
        Models::from_system(&System::build(spec))
    }

    /// Opens a `.unfb` bundle fully into memory, verifying every
    /// section checksum eagerly.
    ///
    /// # Errors
    /// [`BundleError`] on I/O failure, malformed container, checksum
    /// mismatch, or malformed model sections.
    pub fn open(path: &Path) -> Result<Models, BundleError> {
        Models::from_bundle(Bundle::open(path)?)
    }

    /// Opens a `.unfb` bundle zero-copy: the file is mapped read-only
    /// and arcs decode directly from the mapped bytes — nothing is
    /// copied or deserialized. Each model section's checksum *is*
    /// verified (once, while binding the [`SharedAm`]/[`SharedLm`]
    /// handles), because every decode through the returned handles is
    /// infallible: corruption must be a typed error here, not a panic
    /// mid-decode. The verification is a streaming CRC pass over the
    /// mapped pages; the arc streams are never copied to the heap.
    ///
    /// # Errors
    /// [`BundleError`]; see [`Models::open`].
    pub fn open_mmap(path: &Path) -> Result<Models, BundleError> {
        Models::from_bundle(Bundle::open_mmap(path)?)
    }

    /// Wraps an already-opened bundle; every LM section becomes a
    /// zero-copy [`LmModel`]. Binding the sections verifies each model
    /// payload's checksum (memoized; a no-op after an eager open).
    ///
    /// # Errors
    /// [`BundleError`] if any model section fails its checksum or
    /// layout validation.
    pub fn from_bundle(bundle: Bundle) -> Result<Models, BundleError> {
        let bundle = Arc::new(bundle);
        let am = AmModel::Shared(SharedAm::new(Arc::clone(&bundle))?);
        let names: Vec<String> = bundle.lm_names().iter().map(|s| s.to_string()).collect();
        let mut lms = Vec::with_capacity(names.len());
        for name in names {
            let lm = LmModel::Shared(SharedLm::new(Arc::clone(&bundle), &name)?);
            lms.push((name, lm));
        }
        Ok(Models {
            am,
            lms,
            bundle: Some(bundle),
        })
    }

    /// The acoustic model.
    pub fn am(&self) -> &AmModel {
        &self.am
    }

    /// The default LM (first packed / first added).
    pub fn default_lm(&self) -> &LmModel {
        &self.lms[0].1
    }

    /// The LM named `name`, if present.
    pub fn lm(&self, name: &str) -> Option<&LmModel> {
        self.lms.iter().find(|(n, _)| n == name).map(|(_, lm)| lm)
    }

    /// LM names in pack/insertion order (first is the default).
    pub fn lm_names(&self) -> Vec<&str> {
        self.lms.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Whether the models decode out of a read-only file mapping.
    pub fn is_mapped(&self) -> bool {
        self.bundle.as_ref().is_some_and(|b| b.is_mapped())
    }

    /// The backing bundle, when the models came from one.
    pub fn bundle(&self) -> Option<&Arc<Bundle>> {
        self.bundle.as_ref()
    }
}

/// Packs a built system into `.unfb` bundle bytes: the AM, the primary
/// LM (named [`DEFAULT_LM`]), one `variant-<seed>` LM per entry of
/// `variant_seeds` (trained on a reseeded corpus over the *same*
/// vocabulary, so each is decodable against the packed AM), a
/// `contacts` biasing model minted from the task seed, a word symbol
/// table, and a `task` metadata section.
///
/// # Errors
/// [`BundleError`] if the composition is rejected (cannot happen for a
/// well-formed system).
pub fn pack_system(system: &System, variant_seeds: &[u64]) -> Result<Vec<u8>, BundleError> {
    let mut w = BundleWriter::new();
    w.add_am(&system.am_comp);
    w.add_lm(DEFAULT_LM, &system.lm_comp);
    for &seed in variant_seeds {
        w.add_lm(&format!("variant-{seed}"), &system.lm_variant(seed));
    }
    let bias =
        unfold_bias::BiasingFst::mint(system.spec.seed ^ 0xB1A5, system.spec.vocab_size as u32, 8);
    w.add_bias("contacts", bias.to_bytes());
    let symtab: String = (0..system.spec.vocab_size).fold(String::new(), |mut s, w| {
        s.push('w');
        s.push_str(&w.to_string());
        s.push('\n');
        s
    });
    w.add_symtab("words", symtab.into_bytes());
    w.add_meta("task", system.spec.name.as_bytes().to_vec());
    w.finish()
}

impl System {
    /// Trains an alternative LM over this system's vocabulary from a
    /// reseeded corpus — a stand-in for the domain/persona LMs a
    /// multi-model server hosts side by side. Decodable against this
    /// system's AM; different n-gram statistics for any
    /// `variant_seed != spec.seed`.
    pub fn lm_variant(&self, variant_seed: u64) -> CompressedLm {
        let corpus = self.spec.corpus_spec().generate(variant_seed);
        let model = NGramModel::train(&corpus, self.spec.vocab_size, self.spec.discount);
        let fst = unfold_lm::lm_to_wfst(&model);
        CompressedLm::compress(&fst, QUANT_CLUSTERS, variant_seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unfold_decoder::{DecodeConfig, NullSink, OtfDecoder};

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("unfold-models-{}-{name}", std::process::id()))
    }

    #[test]
    fn facade_decodes_from_every_origin_identically() {
        let system = System::build(&TaskSpec::tiny());
        let utt = &system.test_utterances(1)[0];
        let dec = OtfDecoder::new(DecodeConfig::default());

        let owned = Models::from_system(&system);
        let base = dec.decode(owned.am(), owned.default_lm(), &utt.scores, &mut NullSink);
        assert!(base.is_complete());

        let path = tmp("roundtrip.unfb");
        std::fs::write(&path, pack_system(&system, &[]).unwrap()).unwrap();

        let loaded = Models::open(&path).unwrap();
        assert!(!loaded.is_mapped());
        let from_owned_bundle =
            dec.decode(loaded.am(), loaded.default_lm(), &utt.scores, &mut NullSink);
        assert_eq!(base, from_owned_bundle);

        let mapped = Models::open_mmap(&path).unwrap();
        let from_mapped = dec.decode(mapped.am(), mapped.default_lm(), &utt.scores, &mut NullSink);
        assert_eq!(base, from_mapped, "mmap decode must be bit-identical");

        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn variant_lms_share_the_vocabulary_and_decode() {
        let system = System::build(&TaskSpec::tiny());
        let utt = &system.test_utterances(1)[0];
        let path = tmp("variants.unfb");
        std::fs::write(&path, pack_system(&system, &[7, 8]).unwrap()).unwrap();

        let models = Models::open_mmap(&path).unwrap();
        assert_eq!(
            models.lm_names(),
            vec![DEFAULT_LM, "variant-7", "variant-8"]
        );
        assert!(models.lm("nope").is_none());

        let dec = OtfDecoder::new(DecodeConfig::default());
        for name in models.lm_names() {
            let lm = models.lm(name).unwrap();
            let r = dec.decode(models.am(), lm, &utt.scores, &mut NullSink);
            assert!(r.is_complete(), "LM '{name}' failed to decode");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mmap_open_rejects_corrupt_model_payloads() {
        let system = System::build(&TaskSpec::tiny());
        let mut bytes = pack_system(&system, &[]).unwrap();
        // Flip one byte in the middle of the AM payload — deep in the
        // arc bit stream, past everything layout parsing reads.
        let am = Bundle::from_bytes(bytes.clone())
            .unwrap()
            .sections()
            .iter()
            .find(|s| s.name == "am")
            .unwrap()
            .clone();
        bytes[am.offset + am.len / 2] ^= 0x04;
        let path = tmp("corrupt.unfb");
        std::fs::write(&path, &bytes).unwrap();
        match Models::open_mmap(&path) {
            Err(BundleError::ChecksumMismatch(name)) => assert_eq!(name, "am"),
            other => panic!("corrupt payload opened mapped: {other:?}"),
        }
        match Models::open(&path) {
            Err(BundleError::ChecksumMismatch(name)) => assert_eq!(name, "am"),
            other => panic!("corrupt payload opened owned: {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bundle_metadata_roundtrips() {
        let system = System::build(&TaskSpec::tiny());
        let path = tmp("meta.unfb");
        std::fs::write(&path, pack_system(&system, &[]).unwrap()).unwrap();
        let models = Models::open(&path).unwrap();
        let bundle = models.bundle().unwrap();
        assert_eq!(
            bundle.meta("task").unwrap().unwrap(),
            system.spec.name.as_bytes()
        );
        let words = bundle.symtab("words").unwrap().unwrap();
        assert_eq!(
            String::from_utf8_lossy(words).lines().count(),
            system.spec.vocab_size
        );
        std::fs::remove_file(&path).ok();
    }
}
