//! The on-the-fly union-composition adapter: a borrow-based
//! [`LmSource`] scoring `base LM x biasing FST` without materializing
//! the product.
//!
//! The adapter is deliberately cheap to construct — a serving worker
//! builds one per scheduling quantum from the session's pinned base LM
//! and biasing model. Determinism holds across quanta because the
//! composite packing is derived purely from the two model sizes
//! ([`crate::CompositePacking`]), so token keys minted in one quantum
//! stay valid in the next.

use crate::{BiasingFst, CompositePacking};
use unfold_decoder::{Fetch, LmSource};
use unfold_wfst::{Arc, Label, StateId};

/// A base LM biased by a per-session [`BiasingFst`], composed on the
/// fly through the decoder's memo-composition hooks.
///
/// Base-state queries (`lookup_word_into`, `backoff`, `state_addr`)
/// delegate verbatim — the decoder's back-off walk operates on base
/// states so the *shared* one-label-transition table keeps memoizing
/// base expansions for every session at once. Composite ids appear
/// only in token keys and in the per-session memo layer, via the
/// `memo_*` hooks.
#[derive(Debug, Clone, Copy)]
pub struct BiasedLm<'a, L: LmSource + ?Sized> {
    base: &'a L,
    bias: &'a BiasingFst,
    packing: CompositePacking,
}

impl<'a, L: LmSource + ?Sized> BiasedLm<'a, L> {
    /// Wraps `base` with `bias`.
    ///
    /// # Panics
    /// Panics if the two state indices cannot share 32 bits.
    #[must_use]
    pub fn new(base: &'a L, bias: &'a BiasingFst) -> Self {
        Self {
            base,
            bias,
            packing: CompositePacking::new(base.num_states(), bias.num_states()),
        }
    }

    /// The composite packing in effect.
    #[must_use]
    pub fn packing(&self) -> CompositePacking {
        self.packing
    }

    /// The biasing model.
    #[must_use]
    pub fn bias(&self) -> &'a BiasingFst {
        self.bias
    }
}

impl<L: LmSource + ?Sized> LmSource for BiasedLm<'_, L> {
    fn start(&self) -> StateId {
        // Bias root is node 0, so the composite start *is* the base
        // start — an empty-prefix session decodes bit-identically to
        // the unbiased LM until a phrase edge fires.
        self.base.start()
    }

    fn num_states(&self) -> usize {
        self.base.num_states()
    }

    fn state_addr(&self, s: StateId) -> u64 {
        self.base.state_addr(s)
    }

    fn lookup_word_into(&self, s: StateId, word: Label, probes: &mut Vec<Fetch>) -> Option<Arc> {
        self.base.lookup_word_into(s, word, probes)
    }

    fn backoff(&self, s: StateId) -> Option<(Arc, Fetch)> {
        self.base.backoff(s)
    }

    fn prefetch_state(&self, s: StateId) {
        let (base, _) = self.packing.split(s);
        self.base.prefetch_state(base);
    }

    fn memo_split(&self, s: StateId) -> (StateId, u32) {
        self.packing.split(s)
    }

    fn memo_pack(&self, ctx: u32, base: StateId) -> StateId {
        self.packing.pack(ctx, base)
    }

    fn memo_join(&self, ctx: u32, word: Label, dest: StateId, weight: f32) -> (StateId, f32) {
        let (q, delta) = self.bias.step(ctx, word);
        // The offline oracle precomputes the same `apply_delta`, so
        // the two paths agree bit-for-bit.
        (
            self.packing.pack(q, dest),
            crate::apply_delta(weight, delta),
        )
    }

    fn has_memo_ctx(&self) -> bool {
        true
    }

    fn validation_addr(&self) -> usize {
        // Forward the base model's identity: the adapter is rebuilt
        // per quantum, but the validated model is the base LM.
        self.base.validation_addr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_lm() -> unfold_wfst::Wfst {
        use unfold_lm::{lm_to_wfst, CorpusSpec, DiscountConfig, NGramModel};
        let spec = CorpusSpec {
            vocab_size: 30,
            num_sentences: 160,
            ..Default::default()
        };
        let model = NGramModel::train(&spec.generate(5), 30, DiscountConfig::default());
        lm_to_wfst(&model)
    }

    #[test]
    fn base_queries_delegate_verbatim() {
        let lm = base_lm();
        let bias = BiasingFst::build(&[(vec![3, 5], 2.0)]);
        let biased = BiasedLm::new(&lm, &bias);
        assert_eq!(LmSource::start(&biased), LmSource::start(&lm));
        assert_eq!(biased.num_states(), LmSource::num_states(&lm));
        for s in 0..LmSource::num_states(&lm) as StateId {
            assert_eq!(biased.state_addr(s), LmSource::state_addr(&lm, s));
            let (mut pa, mut pb) = (Vec::new(), Vec::new());
            assert_eq!(
                biased.lookup_word_into(s, 3, &mut pa),
                lm.lookup_word_into(s, 3, &mut pb)
            );
            assert_eq!(pa, pb);
        }
    }

    #[test]
    fn identity_join_off_phrase_changes_nothing() {
        let lm = base_lm();
        let bias = BiasingFst::build(&[(vec![29], 2.0)]);
        let biased = BiasedLm::new(&lm, &bias);
        // At the bias root, a non-phrase word keeps ctx 0 and weight.
        let (dest, w) = biased.memo_join(0, 7, 42, 1.25);
        assert_eq!(dest, 42);
        assert_eq!(w.to_bits(), 1.25f32.to_bits());
    }

    #[test]
    fn join_applies_exactly_one_bias_add() {
        let lm = base_lm();
        let bias = BiasingFst::build(&[(vec![7], 2.0)]);
        let biased = BiasedLm::new(&lm, &bias);
        let (q, delta) = bias.step(0, 7);
        let (dest, w) = biased.memo_join(0, 7, 42, 1.25);
        assert_eq!(dest, biased.packing().pack(q, 42));
        assert_eq!(w.to_bits(), (1.25f32 + delta).to_bits());
    }

    #[test]
    fn validation_addr_is_the_base_lm() {
        let lm = base_lm();
        let bias = BiasingFst::build(&[(vec![3], 1.0)]);
        let biased = BiasedLm::new(&lm, &bias);
        assert_eq!(biased.validation_addr(), LmSource::validation_addr(&lm));
    }
}
