//! The offline reference composition: an eagerly materialized
//! `base LM x biasing FST` product, used by the `bias-oracle` verify
//! check to pin the on-the-fly path bit-for-bit.
//!
//! The oracle is everything UNFOLD avoids — it walks the reachable
//! product up front and stores every composite state in a hash map —
//! which is exactly what makes it trustworthy as a differential
//! reference: its word arcs carry precomputed `base_weight + delta`
//! (the same single f32 add [`crate::BiasedLm::memo_join`] performs at
//! resolution), its back-off arcs mirror the base back-offs with the
//! bias component frozen, and its composite ids use the identical
//! [`crate::CompositePacking`]. A decode over the oracle therefore
//! accumulates the same f32 values in the same order, recombines under
//! the same token keys, and must produce the same bits.

use crate::{BiasingFst, CompositePacking};
use std::collections::HashMap;
use unfold_decoder::{addr, Fetch, LmSource};
use unfold_wfst::{Arc, Label, StateId, Wfst, EPSILON};

#[derive(Debug, Clone)]
struct OracleState {
    /// Word arcs sorted by label; weights pre-biased, destinations
    /// composite.
    arcs: Vec<Arc>,
    /// Mirror of the base back-off arc with the bias part unchanged.
    backoff: Option<Arc>,
}

/// The eagerly composed biased LM. Memory O(|reachable product|) — the
/// cost the on-the-fly path exists to avoid.
#[derive(Debug, Clone)]
pub struct OfflineBiasedLm {
    states: HashMap<StateId, OracleState>,
    start: StateId,
    num_states: usize,
}

impl OfflineBiasedLm {
    /// Composes `base x bias` by breadth-first reachability from the
    /// composite start state.
    ///
    /// # Panics
    /// Panics if the composite index would overflow 32 bits (same
    /// bound as [`crate::BiasedLm::new`]).
    #[must_use]
    pub fn compose(base: &Wfst, bias: &BiasingFst) -> Self {
        let packing = CompositePacking::new(Wfst::num_states(base), bias.num_states());
        let start = packing.pack(0, Wfst::start(base));
        let mut states: HashMap<StateId, OracleState> = HashMap::new();
        let mut queue = vec![start];
        while let Some(s) = queue.pop() {
            if states.contains_key(&s) {
                continue;
            }
            let (b, q) = packing.split(s);
            let mut arcs: Vec<Arc> = Vec::new();
            for a in base.arcs(b) {
                if a.ilabel == EPSILON {
                    continue;
                }
                let (q2, delta) = bias.step(q, a.ilabel);
                arcs.push(Arc {
                    ilabel: a.ilabel,
                    olabel: a.olabel,
                    weight: crate::apply_delta(a.weight, delta),
                    nextstate: packing.pack(q2, a.nextstate),
                });
            }
            let backoff = base.backoff_arc(b).map(|back| Arc {
                nextstate: packing.pack(q, back.nextstate),
                ..*back
            });
            for a in &arcs {
                queue.push(a.nextstate);
            }
            if let Some(back) = &backoff {
                queue.push(back.nextstate);
            }
            states.insert(s, OracleState { arcs, backoff });
        }
        let num_states = states.keys().max().map_or(0, |&m| m as usize + 1);
        Self {
            states,
            start,
            num_states,
        }
    }

    /// Number of materialized composite states.
    #[must_use]
    pub fn num_materialized(&self) -> usize {
        self.states.len()
    }
}

impl LmSource for OfflineBiasedLm {
    fn start(&self) -> StateId {
        self.start
    }

    fn num_states(&self) -> usize {
        self.num_states
    }

    fn state_addr(&self, s: StateId) -> u64 {
        addr::LM_STATE_BASE + u64::from(s) * addr::STATE_RECORD_BYTES
    }

    fn lookup_word_into(&self, s: StateId, word: Label, probes: &mut Vec<Fetch>) -> Option<Arc> {
        debug_assert_ne!(word, EPSILON);
        let st = self.states.get(&s)?;
        let arcs = &st.arcs;
        let mut lo = 0usize;
        let mut hi = arcs.len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            probes.push((addr::LM_ARC_BASE + u64::from(s) * 16 + mid as u64, 16));
            match arcs[mid].ilabel.cmp(&word) {
                std::cmp::Ordering::Equal => return Some(arcs[mid]),
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
            }
        }
        None
    }

    fn backoff(&self, s: StateId) -> Option<(Arc, Fetch)> {
        let st = self.states.get(&s)?;
        let back = st.backoff?;
        Some((back, (addr::LM_ARC_BASE + u64::from(s) * 16, 16)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BiasedLm;

    fn base_lm() -> Wfst {
        use unfold_lm::{lm_to_wfst, CorpusSpec, DiscountConfig, NGramModel};
        let spec = CorpusSpec {
            vocab_size: 25,
            num_sentences: 140,
            ..Default::default()
        };
        let model = NGramModel::train(&spec.generate(11), 25, DiscountConfig::default());
        lm_to_wfst(&model)
    }

    /// Reference resolve over the oracle must agree bit-for-bit with
    /// the on-the-fly adapter's split/walk/join protocol, from every
    /// reachable composite state and for every word.
    #[test]
    fn oracle_resolutions_match_the_otf_adapter_bitwise() {
        let lm = base_lm();
        let bias = BiasingFst::mint(0xFEED, 25, 6);
        let biased = BiasedLm::new(&lm, &bias);
        let oracle = OfflineBiasedLm::compose(&lm, &bias);
        let packing = biased.packing();
        let mut checked = 0usize;
        for &s in oracle.states.keys() {
            for word in 1..=25u32 {
                // OTF protocol: split once, walk base states, join at
                // resolution (mirrors the decoder's lm_walk).
                let (mut b, ctx) = packing.split(s);
                let mut cost = 0.0f32;
                let otf = loop {
                    let mut probes = Vec::new();
                    if let Some(arc) = LmSource::lookup_word_into(&lm, b, word, &mut probes) {
                        let (dest, w) = biased.memo_join(ctx, word, arc.nextstate, arc.weight);
                        break Some((dest, cost + w));
                    }
                    match LmSource::backoff(&lm, b) {
                        Some((back, _)) => {
                            cost += back.weight;
                            b = back.nextstate;
                        }
                        None => break None,
                    }
                };
                let orc = oracle.resolve(s, word).map(|r| (r.dest, r.cost));
                match (otf, orc) {
                    (None, None) => {}
                    (Some((ds, cs)), Some((do_, co))) => {
                        assert_eq!(ds, do_, "dest mismatch at state {s} word {word}");
                        assert_eq!(
                            cs.to_bits(),
                            co.to_bits(),
                            "cost bits mismatch at state {s} word {word}: {cs} vs {co}"
                        );
                        checked += 1;
                    }
                    other => panic!("resolution disagreement at {s}/{word}: {other:?}"),
                }
            }
        }
        assert!(checked > 100, "only {checked} resolutions compared");
    }

    #[test]
    fn empty_prefix_states_mirror_the_base_lm() {
        let lm = base_lm();
        let bias = BiasingFst::build(&[(vec![24, 24, 24], 1.0)]);
        let oracle = OfflineBiasedLm::compose(&lm, &bias);
        assert_eq!(LmSource::start(&oracle), LmSource::start(&lm));
        // At the bias root the oracle's arcs off-phrase carry the base
        // weights untouched.
        let s = LmSource::start(&oracle);
        for word in 1..=23u32 {
            let mut p = Vec::new();
            let base = lm.lookup_word_into(LmSource::start(&lm), word, &mut p);
            let orc = oracle.lookup_word_into(s, word, &mut p);
            match (base, orc) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(a.weight.to_bits(), b.weight.to_bits());
                }
                other => panic!("arc presence mismatch for word {word}: {other:?}"),
            }
        }
    }

    #[test]
    fn out_of_range_states_resolve_to_nothing() {
        let lm = base_lm();
        let bias = BiasingFst::build(&[(vec![3], 1.0)]);
        let oracle = OfflineBiasedLm::compose(&lm, &bias);
        let bogus = u32::MAX;
        let mut probes = Vec::new();
        assert!(oracle.lookup_word_into(bogus, 3, &mut probes).is_none());
        assert!(LmSource::backoff(&oracle, bogus).is_none());
    }
}
