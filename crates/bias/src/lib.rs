//! Per-session personalized LM biasing via on-the-fly union
//! composition.
//!
//! UNFOLD's thesis is that the search-space product is cheaper to walk
//! than to store. This crate extends the same argument to
//! *personalization*: a per-user contact list or hotword set is a tiny
//! weighted phrase acceptor ([`BiasingFst`]), and the biased search
//! space `base LM ∘ bias` is never materialized. Instead [`BiasedLm`]
//! packs `(bias state, base LM state)` into the one `u32` the decoder
//! already threads through its token keys, and scores each resolved
//! word arc as `base_cost + bias_bonus` on the fly.
//!
//! Memory per user is O(|biasing FST|) plus a small per-session memo
//! layer (the dynamic half of the decoder's two-layer cache — see
//! `unfold-decoder`'s `lm_walk`): the shared one-label-transition table
//! keeps memoizing *base* LM expansions, valid across every session
//! regardless of bias, while composite resolutions land in a
//! session-private [`unfold_decoder::SoftOlt`].
//!
//! Correctness is pinned by [`OfflineBiasedLm`]: an eager offline
//! composition of the same product, decoded bit-for-bit against the
//! on-the-fly path by the `bias-oracle` verify check.

mod fst;
mod lm;
mod oracle;

pub use fst::{BiasFormatError, BiasingFst};
pub use lm::BiasedLm;
pub use oracle::OfflineBiasedLm;

/// Bits needed to index `n` states (`0` when a single state suffices).
#[must_use]
pub fn bits_for(n: usize) -> u32 {
    usize::BITS - n.saturating_sub(1).leading_zeros()
}

/// Applies a bias delta to a base word-arc weight — the *single* f32
/// add of the whole composition. A zero delta performs no arithmetic
/// at all, so a biasing model that never fires (and the composite ids
/// staying at bias root 0) leaves the decode bit-identical to the
/// unbiased LM, `-0.0` weights included. Shared by [`BiasedLm`] and
/// [`OfflineBiasedLm`] so the on-the-fly and offline paths cannot
/// drift.
#[inline]
#[must_use]
pub fn apply_delta(weight: f32, delta: f32) -> f32 {
    if delta == 0.0 {
        weight
    } else {
        weight + delta
    }
}

/// The `(bias state, base state) <-> u32` packing shared by the
/// on-the-fly adapter and the offline oracle. Both sides deriving the
/// layout from the same model sizes is what makes their token keys —
/// and therefore their recombination decisions — line up exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompositePacking {
    base_bits: u32,
    base_mask: u32,
}

impl CompositePacking {
    /// Derives the packing for a base LM with `base_states` states and
    /// a biasing FST with `bias_states` nodes.
    ///
    /// # Panics
    /// Panics if the two indices cannot share 32 bits.
    #[must_use]
    pub fn new(base_states: usize, bias_states: usize) -> Self {
        let base_bits = bits_for(base_states);
        let bias_bits = bits_for(bias_states);
        assert!(
            base_bits + bias_bits <= 32,
            "composite state overflow: {base_states} base states ({base_bits} bits) x \
             {bias_states} bias states ({bias_bits} bits) exceeds 32 bits"
        );
        let base_mask = if base_bits == 32 {
            u32::MAX
        } else {
            (1u32 << base_bits) - 1
        };
        Self {
            base_bits,
            base_mask,
        }
    }

    /// Packs `(bias state, base state)` into one composite id. The
    /// bias root is node 0, so an unbiased composite equals its base
    /// state verbatim.
    #[inline]
    #[must_use]
    pub fn pack(self, bias: u32, base: u32) -> u32 {
        (bias << self.base_bits) | base
    }

    /// Splits a composite id back into `(base state, bias state)`.
    #[inline]
    #[must_use]
    pub fn split(self, composite: u32) -> (u32, u32) {
        (composite & self.base_mask, composite >> self.base_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_covers_the_range() {
        assert_eq!(bits_for(0), 0);
        assert_eq!(bits_for(1), 0);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 2);
        assert_eq!(bits_for(5), 3);
        assert_eq!(bits_for(1 << 20), 20);
    }

    #[test]
    fn pack_split_round_trips() {
        let p = CompositePacking::new(1000, 37);
        for bias in [0u32, 1, 17, 36] {
            for base in [0u32, 1, 512, 999] {
                assert_eq!(p.split(p.pack(bias, base)), (base, bias));
            }
        }
    }

    #[test]
    fn root_bias_is_the_identity_packing() {
        let p = CompositePacking::new(4096, 9);
        for base in [0u32, 7, 4095] {
            assert_eq!(p.pack(0, base), base);
        }
    }

    #[test]
    #[should_panic(expected = "composite state overflow")]
    fn overflowing_product_is_rejected() {
        let _ = CompositePacking::new(1 << 20, 1 << 13);
    }
}
