//! The per-user biasing model: a compact weighted phrase/prefix
//! acceptor.
//!
//! Phrases are word-id sequences with a positive bonus (a tropical
//! cost *reduction* granted when the phrase completes). The acceptor
//! is a trie whose edges pay the bonus out speculatively — an equal
//! per-edge share, so partial matches are encouraged into the beam —
//! and whose failure transitions claw the unearned credit back. The
//! net cost contribution of any path is therefore
//! `-(banked completed-phrase bonus)`: hypotheses that never finish a
//! phrase end up exactly where the unbiased search would have put
//! them.
//!
//! Failure transitions restart at the root (no Aho-Corasick suffix
//! links): a deliberate deviation from the classical contextual-
//! biasing construction that keeps the acceptor a pure trie —
//! serialization is just the phrase list, and the trie is rebuilt
//! deterministically on load. Overlapping-phrase recall costs one
//! missed prefix re-entry, which contact/hotword workloads do not
//! notice.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use unfold_wfst::{Label, EPSILON};

/// One trie node. Edges are sorted by word id for binary search.
#[derive(Debug, Clone)]
struct Node {
    edges: Vec<(Label, u32)>,
    /// Speculative bonus already granted on the path root -> node.
    accrued: f32,
    /// Largest completed-phrase bonus banked on the path root -> node.
    earned: f32,
}

impl Node {
    fn child(&self, word: Label) -> Option<u32> {
        self.edges
            .binary_search_by_key(&word, |&(w, _)| w)
            .ok()
            .map(|i| self.edges[i].1)
    }
}

/// Errors loading a serialized biasing model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BiasFormatError {
    /// The payload is shorter than its headers claim.
    Truncated,
    /// Unknown serialization version.
    BadVersion(u32),
    /// A phrase contains the epsilon label or is empty.
    BadPhrase,
    /// A bonus is non-finite or not positive.
    BadBonus,
}

impl std::fmt::Display for BiasFormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "biasing payload truncated"),
            Self::BadVersion(v) => write!(f, "unknown biasing format version {v}"),
            Self::BadPhrase => write!(f, "biasing phrase empty or contains epsilon"),
            Self::BadBonus => write!(f, "biasing bonus must be finite and positive"),
        }
    }
}

impl std::error::Error for BiasFormatError {}

const FORMAT_VERSION: u32 = 1;

/// A weighted phrase acceptor biasing a per-session decode. See the
/// module docs for the weight scheme.
#[derive(Debug, Clone)]
pub struct BiasingFst {
    nodes: Vec<Node>,
    /// Canonical (sorted, deduplicated) phrase list — the serialized
    /// form, kept so `to_bytes` round-trips bit-for-bit.
    phrases: Vec<(Vec<Label>, f32)>,
}

impl BiasingFst {
    /// Builds the acceptor from `(phrase, bonus)` pairs. Phrases are
    /// canonicalized (sorted, exact duplicates deduplicated keeping
    /// the largest bonus) so construction is order-independent.
    ///
    /// # Panics
    /// Panics on an empty phrase, an epsilon label, or a bonus that is
    /// not finite and positive — per-user models are small enough to
    /// validate eagerly.
    #[must_use]
    pub fn build(phrases: &[(Vec<Label>, f32)]) -> Self {
        for (words, bonus) in phrases {
            assert!(
                !words.is_empty() && !words.contains(&EPSILON),
                "biasing phrase empty or contains epsilon"
            );
            assert!(
                bonus.is_finite() && *bonus > 0.0,
                "biasing bonus must be finite and positive, got {bonus}"
            );
        }
        let mut canon: Vec<(Vec<Label>, f32)> = phrases.to_vec();
        canon.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
        canon.dedup_by(|next, prev| {
            if next.0 == prev.0 {
                prev.1 = prev.1.max(next.1);
                true
            } else {
                false
            }
        });

        let mut nodes = vec![Node {
            edges: Vec::new(),
            accrued: 0.0,
            earned: 0.0,
        }];
        for (words, bonus) in &canon {
            let len = words.len() as f32;
            let mut at = 0u32;
            for (depth, &w) in words.iter().enumerate() {
                let next = match nodes[at as usize].child(w) {
                    Some(c) => c,
                    None => {
                        let id = nodes.len() as u32;
                        nodes.push(Node {
                            edges: Vec::new(),
                            accrued: 0.0,
                            earned: 0.0,
                        });
                        let pos = nodes[at as usize]
                            .edges
                            .binary_search_by_key(&w, |&(x, _)| x)
                            .unwrap_err();
                        nodes[at as usize].edges.insert(pos, (w, id));
                        id
                    }
                };
                // Prorated speculative credit: an equal per-edge share,
                // with the final edge topping the path up to exactly
                // `bonus`. Shared prefixes keep the largest claim.
                let share = if depth + 1 == words.len() {
                    *bonus
                } else {
                    bonus * ((depth + 1) as f32 / len)
                };
                let n = &mut nodes[next as usize];
                n.accrued = n.accrued.max(share);
                at = next;
            }
            let term = &mut nodes[at as usize];
            term.earned = term.earned.max(*bonus);
        }
        // Make `accrued` monotone non-decreasing and propagate banked
        // bonuses to descendants, so every edge delta is a bonus
        // (<= 0) and failure claw-back never over-charges a path that
        // already completed a phrase.
        let mut stack = vec![0u32];
        while let Some(q) = stack.pop() {
            let (accrued, earned) = {
                let n = &nodes[q as usize];
                (n.accrued, n.earned)
            };
            for i in 0..nodes[q as usize].edges.len() {
                let c = nodes[q as usize].edges[i].1;
                let child = &mut nodes[c as usize];
                child.accrued = child.accrued.max(accrued);
                child.earned = child.earned.max(earned);
                stack.push(c);
            }
        }
        Self {
            nodes,
            phrases: canon,
        }
    }

    /// Number of trie nodes (node 0 is the root/start state).
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.nodes.len()
    }

    /// Number of canonical phrases.
    #[must_use]
    pub fn num_phrases(&self) -> usize {
        self.phrases.len()
    }

    /// The canonical phrase list.
    #[must_use]
    pub fn phrases(&self) -> &[(Vec<Label>, f32)] {
        &self.phrases
    }

    /// Serialized size in bytes.
    #[must_use]
    pub fn byte_len(&self) -> usize {
        8 + self
            .phrases
            .iter()
            .map(|(w, _)| 8 + 4 * w.len())
            .sum::<usize>()
    }

    /// Advances the acceptor on `word`: returns the successor node and
    /// the tropical cost delta (negative = bonus, positive = claw-back
    /// of unearned speculative credit).
    ///
    /// Matching edges pay out the accrued difference; a miss claws
    /// back `accrued - earned` and retries the word at the root, so a
    /// phrase can start on the very word that broke the previous one.
    #[inline]
    #[must_use]
    pub fn step(&self, q: u32, word: Label) -> (u32, f32) {
        let node = &self.nodes[q as usize];
        if let Some(c) = node.child(word) {
            return (c, -(self.nodes[c as usize].accrued - node.accrued));
        }
        let claw = node.accrued - node.earned;
        if q != 0 {
            if let Some(c0) = self.nodes[0].child(word) {
                return (c0, claw - self.nodes[c0 as usize].accrued);
            }
        }
        (0, claw)
    }

    /// Serializes the model: version, phrase count, then each phrase
    /// as `len, words.., bonus` (all little-endian 32-bit).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.byte_len());
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.phrases.len() as u32).to_le_bytes());
        for (words, bonus) in &self.phrases {
            out.extend_from_slice(&(words.len() as u32).to_le_bytes());
            for &w in words {
                out.extend_from_slice(&w.to_le_bytes());
            }
            out.extend_from_slice(&bonus.to_le_bytes());
        }
        out
    }

    /// Deserializes a model written by [`BiasingFst::to_bytes`],
    /// rebuilding the trie deterministically from the phrase list.
    ///
    /// # Errors
    /// Returns a [`BiasFormatError`] on a malformed payload.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, BiasFormatError> {
        let mut pos = 0usize;
        let mut take = |n: usize| -> Result<&[u8], BiasFormatError> {
            let end = pos.checked_add(n).ok_or(BiasFormatError::Truncated)?;
            let s = bytes.get(pos..end).ok_or(BiasFormatError::Truncated)?;
            pos = end;
            Ok(s)
        };
        let u32_at = |s: &[u8]| u32::from_le_bytes(s.try_into().unwrap());
        let version = u32_at(take(4)?);
        if version != FORMAT_VERSION {
            return Err(BiasFormatError::BadVersion(version));
        }
        let count = u32_at(take(4)?) as usize;
        let mut phrases = Vec::with_capacity(count.min(1 << 16));
        for _ in 0..count {
            let len = u32_at(take(4)?) as usize;
            let mut words = Vec::with_capacity(len.min(1 << 16));
            for _ in 0..len {
                words.push(u32_at(take(4)?));
            }
            let bonus = f32::from_le_bytes(take(4)?.try_into().unwrap());
            if words.is_empty() || words.contains(&EPSILON) {
                return Err(BiasFormatError::BadPhrase);
            }
            if !bonus.is_finite() || bonus <= 0.0 {
                return Err(BiasFormatError::BadBonus);
            }
            phrases.push((words, bonus));
        }
        Ok(Self::build(&phrases))
    }

    /// Mints a deterministic per-user biasing model: `num_phrases`
    /// random phrases (1-4 words over `1..=vocab`) with bonuses in
    /// `[0.5, 4.0)`. The same `(seed, vocab, num_phrases)` always
    /// yields the same model — load generators and verify campaigns
    /// derive user populations from seeds alone.
    ///
    /// # Panics
    /// Panics if `vocab` is zero or `num_phrases` is zero.
    #[must_use]
    pub fn mint(seed: u64, vocab: u32, num_phrases: usize) -> Self {
        assert!(vocab > 0, "mint needs a non-empty vocabulary");
        assert!(num_phrases > 0, "mint needs at least one phrase");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut phrases = Vec::with_capacity(num_phrases);
        for _ in 0..num_phrases {
            let len = rng.gen_range(1..=4usize);
            let words = (0..len).map(|_| rng.gen_range(1..=vocab)).collect();
            let bonus = rng.gen_range(0.5f32..4.0);
            phrases.push((words, bonus));
        }
        Self::build(&phrases)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn walk(b: &BiasingFst, words: &[Label]) -> (u32, f32) {
        let mut q = 0u32;
        let mut cost = 0.0f32;
        for &w in words {
            let (q2, d) = b.step(q, w);
            q = q2;
            cost += d;
        }
        (q, cost)
    }

    #[test]
    fn completed_phrase_banks_its_full_bonus() {
        let b = BiasingFst::build(&[(vec![3, 5, 7], 2.0)]);
        let (q, cost) = walk(&b, &[3, 5, 7]);
        assert_ne!(q, 0);
        assert!((cost + 2.0).abs() < 1e-6, "net {cost}");
        // Leaving the phrase afterwards claws nothing back.
        let (_, d) = b.step(q, 99);
        assert!((cost + d + 2.0).abs() < 1e-6);
    }

    #[test]
    fn abandoned_prefix_is_cost_neutral() {
        let b = BiasingFst::build(&[(vec![3, 5, 7], 2.0)]);
        let (q, cost) = walk(&b, &[3, 5, 99]);
        assert_eq!(q, 0);
        assert!(cost.abs() < 1e-6, "net {cost} should be zero");
    }

    #[test]
    fn partial_credit_is_prorated_along_the_phrase() {
        let b = BiasingFst::build(&[(vec![3, 5, 7], 3.0)]);
        let (_, d1) = b.step(0, 3);
        assert!((d1 + 1.0).abs() < 1e-6, "first edge share {d1}");
        let (q1, _) = b.step(0, 3);
        let (_, d2) = b.step(q1, 5);
        assert!((d2 + 1.0).abs() < 1e-6, "second edge share {d2}");
    }

    #[test]
    fn failure_can_restart_a_phrase_at_the_root() {
        let b = BiasingFst::build(&[(vec![3, 5], 1.0), (vec![7, 9], 2.0)]);
        // 3 starts the first phrase; 7 breaks it but immediately
        // starts the second, which then completes.
        let (q, cost) = walk(&b, &[3, 7, 9]);
        assert_ne!(q, 0);
        assert!((cost + 2.0).abs() < 1e-6, "net {cost}");
    }

    #[test]
    fn shared_prefixes_keep_the_larger_claim() {
        let b = BiasingFst::build(&[(vec![3, 5], 1.0), (vec![3, 5, 7], 4.0)]);
        let (q, cost) = walk(&b, &[3, 5]);
        // Inner phrase banked; outer still speculating.
        let (_, d) = b.step(q, 99);
        assert!((cost + d + 1.0).abs() < 1e-6, "banked {}", cost + d);
        let (_, full) = walk(&b, &[3, 5, 7]);
        assert!((full + 4.0).abs() < 1e-6, "full {full}");
    }

    #[test]
    fn build_is_order_independent() {
        let a = BiasingFst::build(&[(vec![3, 5], 1.0), (vec![2], 2.0), (vec![3, 9], 0.75)]);
        let b = BiasingFst::build(&[(vec![3, 9], 0.75), (vec![3, 5], 1.0), (vec![2], 2.0)]);
        assert_eq!(a.to_bytes(), b.to_bytes());
    }

    #[test]
    fn duplicate_phrases_keep_the_largest_bonus() {
        let b = BiasingFst::build(&[(vec![4], 1.0), (vec![4], 3.0)]);
        assert_eq!(b.num_phrases(), 1);
        let (_, d) = b.step(0, 4);
        assert!((d + 3.0).abs() < 1e-6);
    }

    #[test]
    fn bytes_round_trip_bit_for_bit() {
        let b = BiasingFst::mint(0xBEEF, 40, 12);
        let bytes = b.to_bytes();
        assert_eq!(bytes.len(), b.byte_len());
        let back = BiasingFst::from_bytes(&bytes).unwrap();
        assert_eq!(back.to_bytes(), bytes);
        assert_eq!(back.num_states(), b.num_states());
    }

    #[test]
    fn from_bytes_rejects_malformed_payloads() {
        assert_eq!(
            BiasingFst::from_bytes(&[1, 0]).unwrap_err(),
            BiasFormatError::Truncated
        );
        let mut bad = 9u32.to_le_bytes().to_vec();
        bad.extend_from_slice(&0u32.to_le_bytes());
        assert_eq!(
            BiasingFst::from_bytes(&bad).unwrap_err(),
            BiasFormatError::BadVersion(9)
        );
        let b = BiasingFst::build(&[(vec![4], 1.0)]);
        let mut bytes = b.to_bytes();
        let bonus_at = bytes.len() - 4;
        bytes[bonus_at..].copy_from_slice(&(-1.0f32).to_le_bytes());
        assert_eq!(
            BiasingFst::from_bytes(&bytes).unwrap_err(),
            BiasFormatError::BadBonus
        );
    }

    #[test]
    fn mint_is_deterministic_and_distinct_across_seeds() {
        let a = BiasingFst::mint(7, 40, 8);
        let b = BiasingFst::mint(7, 40, 8);
        let c = BiasingFst::mint(8, 40, 8);
        assert_eq!(a.to_bytes(), b.to_bytes());
        assert_ne!(a.to_bytes(), c.to_bytes());
    }

    #[test]
    fn deltas_are_never_positive_on_match_edges() {
        let b = BiasingFst::mint(0xA11CE, 30, 20);
        for q in 0..b.num_states() as u32 {
            for w in 1..=30u32 {
                let node_child = {
                    let (q2, d) = b.step(q, w);
                    if d > 0.0 {
                        // Positive delta only on failure claw-back.
                        assert!(q2 == 0 || b.nodes[0].child(w) == Some(q2));
                    }
                    (q2, d)
                };
                let _ = node_child;
            }
        }
    }
}
