//! End-to-end differential tests: the on-the-fly biased decode must be
//! bit-for-bit identical to a decode over the offline-composed oracle,
//! and a biasing model that never fires must leave the decode
//! bit-identical to the unbiased LM.

use unfold_am::{build_am, synthesize_utterance, HmmTopology, Lexicon, NoiseModel};
use unfold_bias::{BiasedLm, BiasingFst, OfflineBiasedLm};
use unfold_decoder::{DecodeConfig, NullSink, OtfDecoder};
use unfold_lm::{lm_to_wfst, CorpusSpec, DiscountConfig, NGramModel};
use unfold_wfst::Wfst;

fn setup() -> (Lexicon, Wfst, Wfst) {
    let lex = Lexicon::generate(40, 20, 3);
    let am = build_am(&lex, HmmTopology::Kaldi3State);
    let spec = CorpusSpec {
        vocab_size: 40,
        num_sentences: 300,
        ..Default::default()
    };
    let model = NGramModel::train(&spec.generate(5), 40, DiscountConfig::default());
    (lex, am.fst, lm_to_wfst(&model))
}

#[test]
fn biased_otf_decode_matches_offline_oracle_bitwise() {
    let (lex, am, lm) = setup();
    let dec = OtfDecoder::new(DecodeConfig::default());
    for seed in 0..6u64 {
        let bias = BiasingFst::mint(seed.wrapping_mul(0x9E37_79B9), 40, 5);
        let biased = BiasedLm::new(&lm, &bias);
        let oracle = OfflineBiasedLm::compose(&lm, &bias);
        let truth = vec![(seed as u32 % 40) + 1, 7, 3, 15];
        let utt = synthesize_utterance(
            &truth,
            &lex,
            HmmTopology::Kaldi3State,
            &NoiseModel::default(),
            seed,
        );
        let otf = dec.decode(&am, &biased, &utt.scores, &mut NullSink);
        let off = dec.decode(&am, &oracle, &utt.scores, &mut NullSink);
        assert_eq!(otf.words, off.words, "word mismatch at seed {seed}");
        assert_eq!(
            otf.cost.to_bits(),
            off.cost.to_bits(),
            "cost bits mismatch at seed {seed}: {} vs {}",
            otf.cost,
            off.cost
        );
        assert_eq!(otf.word_frames, off.word_frames, "frames at seed {seed}");
    }
}

#[test]
fn never_firing_bias_is_bit_identical_to_unbiased() {
    let (lex, am, lm) = setup();
    // Phrase words far outside the vocabulary: no arc ever matches, so
    // the composite walk stays at bias root 0 and every delta is an
    // exact zero — the decode must not differ in a single bit.
    let bias = BiasingFst::build(&[(vec![9_000, 9_001], 3.0)]);
    let biased = BiasedLm::new(&lm, &bias);
    let dec = OtfDecoder::new(DecodeConfig::default());
    let truth = vec![7u32, 3, 15, 2];
    let utt = synthesize_utterance(
        &truth,
        &lex,
        HmmTopology::Kaldi3State,
        &NoiseModel::clean(),
        11,
    );
    let plain = dec.decode(&am, &lm, &utt.scores, &mut NullSink);
    let b = dec.decode(&am, &biased, &utt.scores, &mut NullSink);
    assert_eq!(plain.words, b.words);
    assert_eq!(plain.cost.to_bits(), b.cost.to_bits());
    assert_eq!(plain.word_frames, b.word_frames);
}

#[test]
fn bias_bonus_rescues_a_phrase_the_base_lm_loses() {
    let (lex, am, lm) = setup();
    let dec = OtfDecoder::new(DecodeConfig::default());
    // Find a noisy utterance the unbiased decode gets wrong, then bias
    // the truth phrase until it wins. Skips seeds the base LM already
    // decodes correctly.
    let noise = NoiseModel {
        noise_sigma: 2.5,
        ..NoiseModel::default()
    };
    let mut rescued = false;
    let mut wrong = 0usize;
    'seeds: for seed in 0..80u64 {
        let truth = vec![
            (seed as u32 % 38) + 2,
            ((seed / 3) as u32 % 38) + 1,
            ((seed / 7) as u32 % 38) + 1,
            ((seed / 11) as u32 % 38) + 2,
        ];
        let utt = synthesize_utterance(&truth, &lex, HmmTopology::Kaldi3State, &noise, seed ^ 0x5A);
        let plain = dec.decode(&am, &lm, &utt.scores, &mut NullSink);
        if plain.words == truth {
            continue;
        }
        wrong += 1;
        for bonus in [6.0f32, 12.0, 24.0, 48.0] {
            let bias = BiasingFst::build(&[(truth.clone(), bonus)]);
            let biased = BiasedLm::new(&lm, &bias);
            let b = dec.decode(&am, &biased, &utt.scores, &mut NullSink);
            if b.words == truth {
                rescued = true;
                break 'seeds;
            }
        }
    }
    assert!(
        rescued,
        "no utterance rescued by biasing its truth phrase ({wrong} wrong unbiased decodes)"
    );
}

#[test]
fn per_session_cache_does_not_change_the_answer() {
    let (lex, am, lm) = setup();
    let bias = BiasingFst::mint(0xCAFE, 40, 6);
    let biased = BiasedLm::new(&lm, &bias);
    let utt = synthesize_utterance(
        &[5u32, 9, 22],
        &lex,
        HmmTopology::Kaldi3State,
        &NoiseModel::default(),
        3,
    );
    let base = DecodeConfig::default();
    let on = OtfDecoder::new(base.to_builder().bias_cache_entries(256).build().unwrap()).decode(
        &am,
        &biased,
        &utt.scores,
        &mut NullSink,
    );
    let off = OtfDecoder::new(base.to_builder().bias_cache_entries(0).build().unwrap()).decode(
        &am,
        &biased,
        &utt.scores,
        &mut NullSink,
    );
    assert_eq!(on.words, off.words);
    assert_eq!(on.cost.to_bits(), off.cost.to_bits());
    assert!(on.stats.bias_probes > 0, "cache-on run must probe");
    assert!(
        off.stats.bias_probes == 0 && off.stats.bias_installs == 0,
        "cache-off run must not touch the session layer"
    );
}
