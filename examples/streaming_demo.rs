//! Live decoding with the streaming API: frames arrive one at a time
//! (as from a microphone), partial hypotheses are available after every
//! push, and the final result is identical to batch decoding — the
//! property the paper's GPU/accelerator batch pipeline (§5.2) rests on.
//!
//! Run with: `cargo run --release -p unfold-examples --bin streaming_demo`

use unfold::{System, TaskSpec};
use unfold_decoder::{DecodeConfig, NullSink, OtfDecoder, OtfStream};

fn main() {
    let system = System::build(&TaskSpec::tiny());
    let utt = &system.test_utterances(1)[0];
    println!(
        "streaming {} frames; ground truth {:?}\n",
        utt.scores.num_frames(),
        utt.words
    );

    let mut stream = OtfStream::new(
        DecodeConfig::default(),
        &system.am_comp,
        &system.lm_comp,
        &mut NullSink,
    );
    let mut last_partial = Vec::new();
    for t in 0..utt.scores.num_frames() {
        stream.push_frame(utt.scores.frame(t), &mut NullSink);
        let partial = stream.session().partial_result();
        if partial != last_partial {
            println!("frame {t:>3} ({} active): {partial:?}", stream.num_active());
            last_partial = partial;
        }
    }
    let streamed = stream.finish();

    // Cross-check against the one-shot decoder.
    let batch = OtfDecoder::new(DecodeConfig::default()).decode(
        &system.am_comp,
        &system.lm_comp,
        &utt.scores,
        &mut NullSink,
    );
    println!(
        "\nstreamed: {:?} (cost {:.2})",
        streamed.words, streamed.cost
    );
    println!("batch   : {:?} (cost {:.2})", batch.words, batch.cost);
    assert_eq!(streamed.words, batch.words);
    assert_eq!(streamed.cost, batch.cost);
    println!("streaming and batch decoding agree exactly.");
}
