//! Measures the cost of decode-time observability.
//!
//! Runs the same utterance through `OtfDecoder` with a `NullSink` and a
//! `MetricsSink`, strictly interleaved so CPU frequency drift hits both
//! sides equally, and reports low-percentile timings (the shared
//! environment is noisy; mins and low percentiles are the stable
//! signal). Also prints the per-event component costs behind the total:
//! clock-read price, counter events, frame boundaries, stage spans.
//!
//! The serve layer's always-on instrumentation is measured the same
//! way: the per-quantum cost of a `CountingSink` decode vs `NullSink`,
//! plus the unit costs of a `LogHistogram` bump and a span open/close —
//! everything a lease quantum pays beyond the search itself.
//!
//! The repo's budget for `MetricsSink` overhead on `decode_throughput`
//! is <= 5%, and the serve-path (`CountingSink`) budget is the same.
//! The serve path is *always on* in production, so the example enforces
//! its budget — exit 1 when the interleaved A/B min overhead exceeds
//! 5% — and CI runs it as a check. The opt-in `MetricsSink` budget
//! stays advisory (it hovers at the budget line on shared hardware and
//! only runs when `--metrics`/`profile` is asked for): over-budget
//! prints a WARN without failing.
//!
//! ```text
//! cargo run --release -p unfold-examples --bin obs_overhead
//! ```

use std::time::Instant;
use unfold::{System, TaskSpec};
use unfold_decoder::{
    CountingSink, DecodeConfig, DecodeStage, MetricsSink, NullSink, OtfDecoder, TraceSink,
};
use unfold_obs::{LogHistogram, SpanLog};

/// The overhead budget (fraction) on the interleaved A/B minimum, for
/// both the profiling sink and the serve counting sink.
const BUDGET: f64 = 0.05;

/// Per-call cost of a counter event through dyn dispatch.
#[inline(never)]
fn time_events(sink: &mut dyn TraceSink, n: u64) -> f64 {
    let t = Instant::now();
    for i in 0..n {
        sink.am_arc_fetch(std::hint::black_box(i), std::hint::black_box(16));
    }
    t.elapsed().as_nanos() as f64 / n as f64
}

/// Per-frame cost of a bare `frame_start`/`frame_end` pair. With no
/// stage transitions in between, `MetricsSink` falls back to two fresh
/// clock reads — an upper bound on what a decoded frame pays.
#[inline(never)]
fn time_frames(sink: &mut dyn TraceSink, n: u64) -> f64 {
    let t = Instant::now();
    for i in 0..n {
        sink.frame_start(i as usize, 10);
        sink.frame_end(i as usize, 12, 1.0, 2.0);
    }
    t.elapsed().as_nanos() as f64 / n as f64
}

/// Per-frame cost of the stage-span pattern the decoder emits.
#[inline(never)]
fn time_stages(sink: &mut dyn TraceSink, n: u64) -> f64 {
    let t = Instant::now();
    for _ in 0..n {
        sink.stage_enter(DecodeStage::Pruning);
        sink.stage_switch(DecodeStage::Pruning, DecodeStage::ArcExpansion);
        sink.stage_exit(DecodeStage::ArcExpansion);
    }
    t.elapsed().as_nanos() as f64 / n as f64
}

fn main() {
    let system = System::build(&TaskSpec::tiny());
    let utts = system.test_utterances(1);
    let dec = OtfDecoder::new(DecodeConfig::default());

    // Event volume: what one decode actually feeds a sink.
    let mut c = CountingSink::default();
    let r = dec.decode(&system.am_comp, &system.lm_comp, &utts[0].scores, &mut c);
    println!(
        "one decode ({} words): frames={} lm_lookups={} am_arc_fetches={} lm_arc_fetches={} hash_inserts={}",
        r.words.len(),
        c.frames,
        c.lm_lookups,
        c.am_arc_fetches,
        c.lm_arc_fetches,
        c.hash_inserts
    );

    // Clock-read price on this machine (the dominant per-span cost).
    let t0 = Instant::now();
    let mut acc = 0u64;
    for _ in 0..1_000_000 {
        acc = acc.wrapping_add(Instant::now().elapsed().as_nanos() as u64);
    }
    println!(
        "Instant::now pair: {:.1} ns (checksum {acc})",
        t0.elapsed().as_nanos() as f64 / 1e6
    );
    println!("raw tick read:     {:.1} ns", {
        let t0 = Instant::now();
        let mut acc = 0u64;
        for _ in 0..1_000_000 {
            acc = acc.wrapping_add(unfold_obs::raw_ticks());
        }
        std::hint::black_box(acc);
        t0.elapsed().as_nanos() as f64 / 1e6
    });

    // Component costs, null vs metrics.
    let mut m = MetricsSink::new();
    println!(
        "counter event:     null {:.1} ns, metrics {:.1} ns",
        time_events(&mut NullSink, 1_000_000),
        time_events(&mut m, 1_000_000)
    );
    let mut m = MetricsSink::new();
    println!(
        "frame pair:        null {:.1} ns, metrics {:.1} ns",
        time_frames(&mut NullSink, 100_000),
        time_frames(&mut m, 100_000)
    );
    let mut m = MetricsSink::new();
    println!(
        "stage span pair:   null {:.1} ns, metrics {:.1} ns",
        time_stages(&mut NullSink, 100_000),
        time_stages(&mut m, 100_000)
    );

    // Serve-path unit costs: the lock-free histogram bump every lease
    // quantum records, the exact-count merge the loadgen folds with,
    // and a session-span open/close pair on the logical clock.
    let lh = LogHistogram::new();
    let t0 = Instant::now();
    for i in 0..1_000_000u64 {
        lh.record(std::hint::black_box(i));
    }
    println!(
        "loghist record:    {:.1} ns",
        t0.elapsed().as_nanos() as f64 / 1e6
    );
    let merged = LogHistogram::new();
    let t0 = Instant::now();
    for _ in 0..10_000 {
        merged.merge_from(&lh);
    }
    println!(
        "loghist merge:     {:.1} ns",
        t0.elapsed().as_nanos() as f64 / 1e4
    );
    let mut spans = SpanLog::new();
    let t0 = Instant::now();
    for i in 0..100_000u64 {
        let id = spans.open("lease", i, 0, i);
        spans.close_with(id, i + 1, &[("frames", 16.0), ("slack_ms", 3.0)]);
    }
    println!(
        "span open+close:   {:.1} ns (cap {} retained {})",
        t0.elapsed().as_nanos() as f64 / 1e5,
        unfold_obs::span::DEFAULT_SPAN_CAP,
        spans.iter_closed().count()
    );

    // End-to-end A/B, strictly interleaved: the profiling sink
    // (MetricsSink, what `profile` pays) and the serve counting sink
    // (CountingSink, what every lease quantum pays).
    let mut t_null = Vec::new();
    let mut t_met = Vec::new();
    let mut t_count = Vec::new();
    let mut counts = CountingSink::default();
    for _ in 0..100 {
        let t = Instant::now();
        std::hint::black_box(dec.decode(
            &system.am_comp,
            &system.lm_comp,
            &utts[0].scores,
            &mut NullSink,
        ));
        t_null.push(t.elapsed().as_secs_f64());
        let mut m = MetricsSink::new();
        let t = Instant::now();
        std::hint::black_box(dec.decode(&system.am_comp, &system.lm_comp, &utts[0].scores, &mut m));
        t_met.push(t.elapsed().as_secs_f64());
        counts.reset();
        let t = Instant::now();
        std::hint::black_box(dec.decode(
            &system.am_comp,
            &system.lm_comp,
            &utts[0].scores,
            &mut counts,
        ));
        t_count.push(t.elapsed().as_secs_f64());
    }
    let metrics_over = report_ab("decode + MetricsSink", &mut t_null, &mut t_met);
    let counting_over = report_ab(
        "decode + CountingSink (serve path)",
        &mut t_null,
        &mut t_count,
    );

    let budget_pct = BUDGET * 100.0;
    // The opt-in profiling sink is advisory; the always-on serve path
    // is enforced.
    if metrics_over > BUDGET {
        eprintln!(
            "WARN: MetricsSink min overhead {:.1}% exceeds the {budget_pct:.0}% budget (advisory)",
            metrics_over * 100.0
        );
    }
    if counting_over > BUDGET {
        eprintln!(
            "FAIL: serve-path CountingSink min overhead {:.1}% exceeds the {budget_pct:.0}% budget",
            counting_over * 100.0
        );
        std::process::exit(1);
    }
    println!("\nOK: serve-path min overhead within the {budget_pct:.0}% budget");
}

/// Prints min/p10/p25 of two sorted interleaved timing sets and returns
/// the min-vs-min overhead fraction.
fn report_ab(label: &str, t_null: &mut [f64], t_sink: &mut [f64]) -> f64 {
    t_null.sort_by(f64::total_cmp);
    t_sink.sort_by(f64::total_cmp);
    println!("\n{label} A/B over {} interleaved runs:", t_null.len());
    for (lab, i) in [("min", 0usize), ("p10", 10), ("p25", 25)] {
        println!(
            "  {lab}: null {:.1} us, instrumented {:.1} us, overhead {:.1}%",
            t_null[i] * 1e6,
            t_sink[i] * 1e6,
            (t_sink[i] / t_null[i] - 1.0) * 100.0
        );
    }
    t_sink[0] / t_null[0] - 1.0
}
