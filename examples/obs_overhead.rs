//! Measures the cost of decode-time observability.
//!
//! Runs the same utterance through `OtfDecoder` with a `NullSink` and a
//! `MetricsSink`, strictly interleaved so CPU frequency drift hits both
//! sides equally, and reports low-percentile timings (the shared
//! environment is noisy; mins and low percentiles are the stable
//! signal). Also prints the per-event component costs behind the total:
//! clock-read price, counter events, frame boundaries, stage spans.
//!
//! The repo's budget for `MetricsSink` overhead on `decode_throughput`
//! is <= 5%; run this after touching the sink or the stage timer.
//!
//! ```text
//! cargo run --release -p unfold-examples --bin obs_overhead
//! ```

use std::time::Instant;
use unfold::{System, TaskSpec};
use unfold_decoder::{
    CountingSink, DecodeConfig, DecodeStage, MetricsSink, NullSink, OtfDecoder, TraceSink,
};

/// Per-call cost of a counter event through dyn dispatch.
#[inline(never)]
fn time_events(sink: &mut dyn TraceSink, n: u64) -> f64 {
    let t = Instant::now();
    for i in 0..n {
        sink.am_arc_fetch(std::hint::black_box(i), std::hint::black_box(16));
    }
    t.elapsed().as_nanos() as f64 / n as f64
}

/// Per-frame cost of a bare `frame_start`/`frame_end` pair. With no
/// stage transitions in between, `MetricsSink` falls back to two fresh
/// clock reads — an upper bound on what a decoded frame pays.
#[inline(never)]
fn time_frames(sink: &mut dyn TraceSink, n: u64) -> f64 {
    let t = Instant::now();
    for i in 0..n {
        sink.frame_start(i as usize, 10);
        sink.frame_end(i as usize, 12, 1.0, 2.0);
    }
    t.elapsed().as_nanos() as f64 / n as f64
}

/// Per-frame cost of the stage-span pattern the decoder emits.
#[inline(never)]
fn time_stages(sink: &mut dyn TraceSink, n: u64) -> f64 {
    let t = Instant::now();
    for _ in 0..n {
        sink.stage_enter(DecodeStage::Pruning);
        sink.stage_switch(DecodeStage::Pruning, DecodeStage::ArcExpansion);
        sink.stage_exit(DecodeStage::ArcExpansion);
    }
    t.elapsed().as_nanos() as f64 / n as f64
}

fn main() {
    let system = System::build(&TaskSpec::tiny());
    let utts = system.test_utterances(1);
    let dec = OtfDecoder::new(DecodeConfig::default());

    // Event volume: what one decode actually feeds a sink.
    let mut c = CountingSink::default();
    let r = dec.decode(&system.am_comp, &system.lm_comp, &utts[0].scores, &mut c);
    println!(
        "one decode ({} words): frames={} lm_lookups={} am_arc_fetches={} lm_arc_fetches={} hash_inserts={}",
        r.words.len(),
        c.frames,
        c.lm_lookups,
        c.am_arc_fetches,
        c.lm_arc_fetches,
        c.hash_inserts
    );

    // Clock-read price on this machine (the dominant per-span cost).
    let t0 = Instant::now();
    let mut acc = 0u64;
    for _ in 0..1_000_000 {
        acc = acc.wrapping_add(Instant::now().elapsed().as_nanos() as u64);
    }
    println!(
        "Instant::now pair: {:.1} ns (checksum {acc})",
        t0.elapsed().as_nanos() as f64 / 1e6
    );
    println!("raw tick read:     {:.1} ns", {
        let t0 = Instant::now();
        let mut acc = 0u64;
        for _ in 0..1_000_000 {
            acc = acc.wrapping_add(unfold_obs::raw_ticks());
        }
        std::hint::black_box(acc);
        t0.elapsed().as_nanos() as f64 / 1e6
    });

    // Component costs, null vs metrics.
    let mut m = MetricsSink::new();
    println!(
        "counter event:     null {:.1} ns, metrics {:.1} ns",
        time_events(&mut NullSink, 1_000_000),
        time_events(&mut m, 1_000_000)
    );
    let mut m = MetricsSink::new();
    println!(
        "frame pair:        null {:.1} ns, metrics {:.1} ns",
        time_frames(&mut NullSink, 100_000),
        time_frames(&mut m, 100_000)
    );
    let mut m = MetricsSink::new();
    println!(
        "stage span pair:   null {:.1} ns, metrics {:.1} ns",
        time_stages(&mut NullSink, 100_000),
        time_stages(&mut m, 100_000)
    );

    // End-to-end A/B, strictly interleaved.
    let mut t_null = Vec::new();
    let mut t_met = Vec::new();
    for _ in 0..100 {
        let t = Instant::now();
        std::hint::black_box(dec.decode(
            &system.am_comp,
            &system.lm_comp,
            &utts[0].scores,
            &mut NullSink,
        ));
        t_null.push(t.elapsed().as_secs_f64());
        let mut m = MetricsSink::new();
        let t = Instant::now();
        std::hint::black_box(dec.decode(&system.am_comp, &system.lm_comp, &utts[0].scores, &mut m));
        t_met.push(t.elapsed().as_secs_f64());
    }
    t_null.sort_by(f64::total_cmp);
    t_met.sort_by(f64::total_cmp);
    println!("\ndecode A/B over 100 interleaved runs:");
    for (label, i) in [("min", 0usize), ("p10", 10), ("p25", 25)] {
        println!(
            "  {label}: null {:.1} us, metrics {:.1} us, overhead {:.1}%",
            t_null[i] * 1e6,
            t_met[i] * 1e6,
            (t_met[i] / t_null[i] - 1.0) * 100.0
        );
    }
}
