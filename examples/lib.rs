//! Example binaries live alongside this stub library target.
