//! The paper's Figure 3 walkthrough, end to end: build the 3-word AM
//! and 3-gram LM by hand, decode "ONE TWO", and replay the §3.3
//! back-off story — with human-readable symbols.
//!
//! Run with: `cargo run --release -p unfold-examples --bin figure3_walkthrough`

use unfold_am::AcousticScores;
use unfold_decoder::{DecodeConfig, NullSink, OtfDecoder};
use unfold_wfst::compose::resolve_lm_word;
use unfold_wfst::{Arc, SymbolTable, WfstBuilder, EPSILON};

fn main() {
    let mut words = SymbolTable::new();
    let (one, two, three) = (words.add("ONE"), words.add("TWO"), words.add("THREE"));
    let mut phones = SymbolTable::new();
    let s: Vec<u32> = (1..=8).map(|i| phones.add(&format!("S{i}"))).collect();

    // --- Figure 3a: the AM. ---
    let mut b = WfstBuilder::with_states(9);
    b.set_start(0);
    b.set_final(0, 0.0);
    for (word, ph_seq, states) in [
        (one, &s[0..3], [1u32, 2, 3]),
        (two, &s[3..5], [4, 5, 0]),
        (three, &s[5..8], [6, 7, 8]),
    ] {
        let mut prev = 0u32;
        let last = ph_seq.len() - 1;
        for (i, &ph) in ph_seq.iter().enumerate() {
            let dest = states[i];
            let olabel = if i == last { word } else { EPSILON };
            b.add_arc(prev, Arc::new(ph, olabel, 0.0, dest));
            prev = dest;
        }
        if prev != 0 {
            b.add_arc(prev, Arc::epsilon(0.0, 0));
        }
    }
    let am = b.build();
    println!(
        "AM (Figure 3a): {} states, {} arcs",
        am.num_states(),
        am.num_arcs()
    );

    // --- Figure 3b: the LM. ---
    let mut b = WfstBuilder::with_states(7);
    b.set_start(0);
    for st in 0..7 {
        b.set_final(st, 0.0);
    }
    b.add_arc(0, Arc::new(one, one, 1.0, 1));
    b.add_arc(0, Arc::new(two, two, 1.2, 2));
    b.add_arc(0, Arc::new(three, three, 1.5, 3));
    b.add_arc(1, Arc::new(three, three, 0.4, 4));
    b.add_arc(2, Arc::new(one, one, 0.5, 5));
    b.add_arc(3, Arc::new(two, two, 0.6, 6));
    b.add_arc(6, Arc::new(one, one, 0.2, 5)); // Prob(ONE | THREE, TWO)
    for (st, bow, dest) in [
        (1, 0.3, 0),
        (2, 0.35, 0),
        (3, 0.25, 0),
        (4, 0.1, 3),
        (5, 0.15, 1),
        (6, 0.2, 2),
    ] {
        b.add_arc(st, Arc::epsilon(bow, dest));
    }
    let mut lm = b.build();
    lm.sort_arcs_by_ilabel();
    println!(
        "LM (Figure 3b): {} states, {} arcs\n",
        lm.num_states(),
        lm.num_arcs()
    );

    // --- Figure 3c: decode "ONE TWO" on the fly. ---
    let frames = [s[0], s[1], s[2], s[3], s[4]];
    let mut flat = Vec::new();
    for &p in &frames {
        for pdf in 1..=8u32 {
            flat.push(if pdf == p { 0.1 } else { 6.0 });
        }
    }
    let scores = AcousticScores::from_flat(flat, 8);
    let res = OtfDecoder::new(DecodeConfig::default()).decode(&am, &lm, &scores, &mut NullSink);
    println!("acoustics say: {}", phones.render(&frames));
    println!(
        "decoded      : {} (cost {:.2})",
        words.render(&res.words),
        res.cost
    );

    // --- §3.3: the back-off walk for "TWO ONE" + TWO. ---
    let (dest, cost, hops) = resolve_lm_word(&lm, 5, two).expect("resolvable");
    println!("\nSection 3.3 walkthrough: history \"TWO ONE\", next word TWO");
    println!("  -> {hops} back-off hops, total LM cost {cost:.2}, lands at state {dest}");
    println!(
        "     (state {dest} = unigram history of {})",
        words.name(two).unwrap()
    );
    assert_eq!(hops, 2);
    assert_eq!(dest, 2);
}
