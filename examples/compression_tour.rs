//! A tour of the paper's §3.4 compression formats: arc classes, bit
//! widths, quantization error, and round-trip fidelity.
//!
//! Run with: `cargo run --release -p unfold-examples --bin compression_tour`

use unfold::{System, TaskSpec};
use unfold_compress::{CompressedComposed, WeightQuantizer};
use unfold_wfst::SizeModel;

fn main() {
    let system = System::build(&TaskSpec::tiny());

    // --- AM: 2-bit destination tags make most arcs 20 bits. ---
    let am = &system.am_comp;
    let total = am.short_arcs() + am.normal_arcs();
    println!(
        "AM arcs: {} short (20-bit) + {} full (58-bit) = {:.0}% short",
        am.short_arcs(),
        am.normal_arcs(),
        100.0 * am.short_arcs() as f64 / total as f64
    );
    let uncompressed = SizeModel::UNCOMPRESSED.bytes(&system.am.fst);
    println!(
        "AM: {} B -> {} B ({:.1}x)",
        uncompressed,
        am.size_bytes(),
        uncompressed as f64 / am.size_bytes() as f64
    );

    // --- LM: positional unigram arcs, 45-bit regular, 27-bit back-off. ---
    let lm = &system.lm_comp;
    let lm_uncompressed = SizeModel::UNCOMPRESSED.bytes(&system.lm_fst);
    println!(
        "LM: {} B -> {} B ({:.1}x); root words need only 6 bits each",
        lm_uncompressed,
        lm.size_bytes(),
        lm_uncompressed as f64 / lm.size_bytes() as f64
    );
    let lookup = lm.lookup(0, 5);
    println!(
        "root lookup for word 5: {} probe(s), arc -> state {}",
        lookup.probes,
        lookup.arc.expect("unigram must exist").nextstate
    );

    // --- Composed baseline compression saturates much lower. ---
    let composed = system.composed();
    let comp = CompressedComposed::compress(&composed, 64, 0);
    let cu = SizeModel::UNCOMPRESSED.bytes(&composed);
    println!(
        "composed: {} B -> {} B ({:.1}x) — the Price-et-al-style comparator",
        cu,
        comp.size_bytes(),
        cu as f64 / comp.size_bytes() as f64
    );

    // --- Quantizer: 64 clusters, 6-bit indices, tiny error. ---
    let weights: Vec<f32> = system
        .lm_fst
        .states()
        .flat_map(|s| system.lm_fst.arcs(s).iter().map(|a| a.weight))
        .collect();
    let q = WeightQuantizer::fit(&weights, 64, 0);
    let mean_err: f32 = weights
        .iter()
        .map(|&w| (q.quantize(w) - w).abs())
        .sum::<f32>()
        / weights.len() as f32;
    println!(
        "quantizer: {} clusters, {} bits/index, mean |error| {:.4} nats",
        q.num_clusters(),
        q.index_bits(),
        mean_err
    );

    // --- Round-trip proof. ---
    let rt = system.am_comp.to_wfst();
    assert_eq!(rt.num_arcs(), system.am.fst.num_arcs());
    println!("round-trip: decompressed AM has identical topology — OK");
}
