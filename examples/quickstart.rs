//! Quickstart: build a small ASR system, decode an utterance with
//! on-the-fly WFST composition, and inspect the result.
//!
//! Run with: `cargo run --release -p unfold-examples --bin quickstart`

use unfold::{System, TaskSpec};
use unfold_decoder::{wer, DecodeConfig, NullSink, OtfDecoder};

fn main() {
    // A miniature task (80-word vocabulary) that builds in milliseconds.
    let spec = TaskSpec::tiny();
    println!(
        "building task '{}' (vocab {})...",
        spec.name, spec.vocab_size
    );
    let system = System::build(&spec);

    // The two models UNFOLD keeps in memory instead of the composed WFST.
    println!(
        "AM: {} states / {} arcs; LM: {} states / {} arcs",
        system.am.fst.num_states(),
        system.am.fst.num_arcs(),
        system.lm_fst.num_states(),
        system.lm_fst.num_arcs()
    );
    println!(
        "compressed: AM {} KiB + LM {} KiB",
        system.am_comp.size_bytes() / 1024,
        system.lm_comp.size_bytes() / 1024
    );

    // Synthesize a test utterance and decode it against the compressed
    // models — exactly what the UNFOLD accelerator does.
    let utt = &system.test_utterances(1)[0];
    let decoder = OtfDecoder::new(DecodeConfig::default());
    let result = decoder.decode(&system.am_comp, &system.lm_comp, &utt.scores, &mut NullSink);

    println!("\nspoken   : {:?}", utt.words);
    println!("decoded  : {:?}", result.words);
    println!("cost     : {:.2}", result.cost);
    let report = wer(&utt.words, &result.words);
    println!("WER      : {:.1}%", report.percent());
    println!(
        "search   : {} frames, {} tokens, {} LM lookups, {} back-off hops",
        result.stats.frames,
        result.stats.tokens_created,
        result.stats.lm_lookups,
        result.stats.backoff_hops
    );
}
