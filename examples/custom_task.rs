//! Building a custom recognition task from the substrate crates
//! directly: own lexicon, own LM corpus, CTC topology, and a manual
//! decode — the paper's "the same hardware can be used for any speech
//! recognition task, just by replacing the AM and LM WFSTs" (§5.3).
//!
//! Run with: `cargo run --release -p unfold-examples --bin custom_task`

use unfold_am::{build_am, synthesize_utterance, HmmTopology, Lexicon, NoiseModel};
use unfold_compress::{CompressedAm, CompressedLm};
use unfold_decoder::{DecodeConfig, NullSink, OtfDecoder};
use unfold_lm::{lm_to_wfst, CorpusSpec, DiscountConfig, NGramModel};

fn main() {
    // 1. A 300-word vocabulary over 30 phonemes with CTC topology.
    let vocab = 300;
    let lexicon = Lexicon::generate(vocab, 30, 2024);
    let am = build_am(&lexicon, HmmTopology::Ctc);
    println!(
        "CTC AM: {} states, {} PDFs",
        am.fst.num_states(),
        am.num_pdfs
    );

    // 2. Train a trigram LM on a synthetic corpus.
    let corpus = CorpusSpec {
        vocab_size: vocab,
        num_sentences: 4_000,
        coherence: 0.8,
        ..CorpusSpec::default()
    }
    .generate(7);
    let model = NGramModel::train(&corpus, vocab, DiscountConfig::default());
    println!(
        "LM: {} bigrams, {} trigrams kept after pruning",
        model.num_bigrams(),
        model.num_trigrams()
    );
    let lm = lm_to_wfst(&model);

    // 3. Compress both models with the paper's formats.
    let am_comp = CompressedAm::compress(&am.fst, 64, 0);
    let lm_comp = CompressedLm::compress(&lm, 64, 0);
    println!(
        "compressed: AM {} KiB ({} short arcs / {} full), LM {} KiB",
        am_comp.size_bytes() / 1024,
        am_comp.short_arcs(),
        am_comp.normal_arcs(),
        lm_comp.size_bytes() / 1024
    );

    // 4. Speak a sentence from the corpus and decode it.
    let sentence = &corpus.sentences[0][..corpus.sentences[0].len().min(8)];
    let utt = synthesize_utterance(
        sentence,
        &lexicon,
        HmmTopology::Ctc,
        &NoiseModel::clean(),
        99,
    );
    let decoder = OtfDecoder::new(DecodeConfig::default());
    let result = decoder.decode(&am_comp, &lm_comp, &utt.scores, &mut NullSink);
    println!("\nspoken : {sentence:?}");
    println!("decoded: {:?}", result.words);
    assert_eq!(result.words, sentence, "clean decode must be exact");
    println!("exact match — the custom task decodes correctly.");
}
