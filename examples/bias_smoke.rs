//! Self-asserting smoke test for per-session personalized biasing.
//!
//! Builds a tiny acoustic model and n-gram LM, then demonstrates the
//! contract the `crates/bias` subsystem makes (DESIGN.md §15):
//!
//! 1. **The bonus is decisive**: a noisy utterance the unbiased decode
//!    gets *wrong* is rescued by biasing its truth phrase — the phrase
//!    only wins because the bonus pays out.
//! 2. **The adapter is exact**: the rescued on-the-fly decode is
//!    bit-identical (words, cost bits, word frames) to a decode over
//!    the eagerly composed `base LM x biasing FST` oracle.
//! 3. **A sleeping bias is free**: a biasing model whose phrases never
//!    fire leaves the decode bit-identical to the unbiased LM.
//!
//! Exits 1 when any of the three fails, so CI runs it as a check:
//!
//! ```text
//! cargo run --release -p unfold-examples --bin bias_smoke
//! ```

use unfold_am::{build_am, synthesize_utterance, HmmTopology, Lexicon, NoiseModel};
use unfold_bias::{BiasedLm, BiasingFst, OfflineBiasedLm};
use unfold_decoder::{DecodeConfig, DecodeResult, NullSink, OtfDecoder};
use unfold_lm::{lm_to_wfst, CorpusSpec, DiscountConfig, NGramModel};
use unfold_wfst::Wfst;

const VOCAB: usize = 40;

fn bit_identical(a: &DecodeResult, b: &DecodeResult) -> bool {
    a.words == b.words && a.cost.to_bits() == b.cost.to_bits() && a.word_frames == b.word_frames
}

fn main() {
    let lex = Lexicon::generate(VOCAB, 20, 3);
    let am = build_am(&lex, HmmTopology::Kaldi3State);
    let corpus = CorpusSpec {
        vocab_size: VOCAB,
        num_sentences: 300,
        ..Default::default()
    };
    let model = NGramModel::train(&corpus.generate(5), VOCAB, DiscountConfig::default());
    let lm: Wfst = lm_to_wfst(&model);
    let dec = OtfDecoder::new(DecodeConfig::default());

    // 1. Hunt for a noisy utterance the base LM decodes wrong, then
    //    bias its truth phrase until the phrase wins.
    let noise = NoiseModel {
        noise_sigma: 2.5,
        ..NoiseModel::default()
    };
    let mut rescue: Option<(Vec<u32>, f32, unfold_am::Utterance)> = None;
    'seeds: for seed in 0..80u64 {
        let truth = vec![
            (seed as u32 % 38) + 2,
            ((seed / 3) as u32 % 38) + 1,
            ((seed / 7) as u32 % 38) + 1,
            ((seed / 11) as u32 % 38) + 2,
        ];
        let utt = synthesize_utterance(&truth, &lex, HmmTopology::Kaldi3State, &noise, seed ^ 0x5A);
        let plain = dec.decode(&am.fst, &lm, &utt.scores, &mut NullSink);
        if plain.words == truth {
            continue;
        }
        for bonus in [6.0f32, 12.0, 24.0, 48.0] {
            let bias = BiasingFst::build(&[(truth.clone(), bonus)]);
            let biased = BiasedLm::new(&lm, &bias);
            let b = dec.decode(&am.fst, &biased, &utt.scores, &mut NullSink);
            if b.words == truth {
                println!(
                    "rescued: phrase {truth:?} wins only with a {bonus} bonus \
                     (unbiased decode said {:?})",
                    plain.words
                );
                rescue = Some((truth, bonus, utt));
                break 'seeds;
            }
        }
    }
    let Some((truth, bonus, utt)) = rescue else {
        eprintln!("FAIL: no utterance was rescued by biasing its truth phrase");
        std::process::exit(1);
    };

    // 2. The rescued decode, pinned bit-for-bit against the offline
    //    composed oracle (everything the on-the-fly path avoids
    //    materializing).
    let bias = BiasingFst::build(&[(truth.clone(), bonus)]);
    let biased = BiasedLm::new(&lm, &bias);
    let otf = dec.decode(&am.fst, &biased, &utt.scores, &mut NullSink);
    let oracle = OfflineBiasedLm::compose(&lm, &bias);
    let off = dec.decode(&am.fst, &oracle, &utt.scores, &mut NullSink);
    if !bit_identical(&otf, &off) {
        eprintln!(
            "FAIL: on-the-fly biased decode diverged from the offline oracle: \
             {:?}/{} vs {:?}/{}",
            otf.words, otf.cost, off.words, off.cost
        );
        std::process::exit(1);
    }
    println!(
        "oracle: on-the-fly == offline-composed, bit for bit \
         ({} composite states materialized by the oracle; the otf path holds 0)",
        oracle.num_materialized()
    );

    // 3. A never-firing bias is bit-free: phrase words outside the
    //    vocabulary never match, every delta is an exact zero.
    let asleep = BiasingFst::build(&[(vec![9_000, 9_001], 3.0)]);
    let sleeping = BiasedLm::new(&lm, &asleep);
    let plain = dec.decode(&am.fst, &lm, &utt.scores, &mut NullSink);
    let under = dec.decode(&am.fst, &sleeping, &utt.scores, &mut NullSink);
    if !bit_identical(&plain, &under) {
        eprintln!("FAIL: a sleeping biasing model perturbed the decode");
        std::process::exit(1);
    }
    println!("sleeping bias: bit-identical to the unbiased decode");
    println!("bias smoke: OK");
}
