//! Design-space exploration with the accelerator model: beam width vs
//! accuracy/latency, and cache scaling vs energy — the kind of sweep
//! §3.5 and Figure 6/7 run to pick the shipped configuration.
//!
//! Run with: `cargo run --release -p unfold-examples --bin accelerator_sweep`

use unfold::experiments::run_unfold_configured;
use unfold::{System, TaskSpec};
use unfold_decoder::DecodeConfig;
use unfold_sim::AcceleratorConfig;

fn main() {
    let system = System::build(&TaskSpec::tiny());
    let utts = system.test_utterances(4);

    println!("beam | WER % | mean active tokens | xRT");
    for beam in [4.0f32, 8.0, 12.0, 16.0] {
        let run = run_unfold_configured(
            &system,
            &utts,
            AcceleratorConfig::unfold(),
            DecodeConfig::builder()
                .beam(beam)
                .build()
                .expect("valid sweep config"),
        );
        println!(
            "{beam:4} | {:5.1} | {:18.0} | {:.0}",
            run.wer.percent(),
            run.stats.mean_active(),
            run.sim.times_real_time()
        );
    }

    println!("\ncache scale | energy mJ/s | bandwidth MB/s | state miss %");
    for factor in [1u64, 4, 16, 64] {
        let cfg = AcceleratorConfig::unfold().scaled_datasets(factor);
        let run = run_unfold_configured(&system, &utts, cfg, DecodeConfig::default());
        println!(
            "1/{factor:<9} | {:11.4} | {:14.0} | {:.1}",
            run.sim.energy_mj_per_audio_second(),
            run.sim.bandwidth_mb_per_s(),
            run.sim.state_cache.miss_ratio() * 100.0
        );
    }
}
