//! Per-phase timing of the SoA frame kernel, plus an interleaved
//! SoA-vs-legacy A/B over the same batch — the runnable companion to
//! DESIGN.md §13.
//!
//! The kernel reports `threshold` / `batch_probe` / `expand` /
//! `closure` durations through `TraceSink::kernel_phase`, but only to
//! sinks that ask (`wants_kernel_timing`). This example decodes a task
//! preset under a `MetricsSink`, prints where the frame budget goes,
//! then times both kernels interleaved (rep-by-rep, so machine-speed
//! drift cancels) with a `NullSink` to show the timing-free hot path.
//!
//! ```bash
//! cargo run --release -p unfold-examples --bin kernel_phases
//! UNFOLD_TASK=tiny cargo run --release -p unfold-examples --bin kernel_phases
//! ```

use std::time::Instant;

use unfold::{System, TaskSpec};
use unfold_decoder::{
    DecodeConfig, DecodeKernel, DecodeScratch, MetricsSink, NullSink, OtfDecoder,
};

fn main() {
    let task = std::env::var("UNFOLD_TASK").unwrap_or_else(|_| "tedlium".into());
    let spec = match task.as_str() {
        "tedlium" => TaskSpec::tedlium_kaldi(),
        "librispeech" => TaskSpec::librispeech(),
        "voxforge" => TaskSpec::voxforge(),
        "eesen" => TaskSpec::tedlium_eesen(),
        _ => TaskSpec::tiny(),
    };
    println!("building {} ...", spec.name);
    let system = System::build(&spec);
    let utts = system.test_utterances(8);
    let frames: usize = utts.iter().map(|u| u.scores.num_frames()).sum();

    let config = |kernel: DecodeKernel| {
        DecodeConfig::builder()
            .olt_entries(32 * 1024)
            .kernel(kernel)
            .build()
            .expect("valid config")
    };
    let soa = OtfDecoder::new(config(DecodeKernel::Soa));
    let legacy = OtfDecoder::new(config(DecodeKernel::Legacy));
    let mut scratch = DecodeScratch::new();

    // Phase breakdown: a MetricsSink answers `wants_kernel_timing`, so
    // the kernel reads the clock around each phase.
    let mut sink = MetricsSink::new();
    for u in &utts {
        soa.decode_with(
            &system.am_comp,
            &system.lm_comp,
            &u.scores,
            &mut scratch,
            &mut sink,
        );
    }
    let total_ns: u64 = sink
        .kernel_phases()
        .stats()
        .iter()
        .map(|s| s.total_ns)
        .sum();
    println!("\nSoA kernel phase breakdown ({frames} frames):");
    for s in sink.kernel_phases().stats() {
        println!(
            "  {:<12} {:>9.3} ms  ({:>5.1}%)  {:>7} calls  {:>6} ns/call",
            s.name,
            s.total_ns as f64 / 1e6,
            100.0 * s.total_ns as f64 / total_ns.max(1) as f64,
            s.count,
            s.mean_ns(),
        );
    }

    // Interleaved A/B with a NullSink (no phase clocks): the honest
    // kernel-vs-kernel ratio, immune to machine-speed drift.
    let reps: usize = std::env::var("UNFOLD_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);
    let mut soa_s = Vec::with_capacity(reps);
    let mut legacy_s = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        for u in &utts {
            soa.decode_with(
                &system.am_comp,
                &system.lm_comp,
                &u.scores,
                &mut scratch,
                &mut NullSink,
            );
        }
        soa_s.push(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        for u in &utts {
            legacy.decode_with(
                &system.am_comp,
                &system.lm_comp,
                &u.scores,
                &mut scratch,
                &mut NullSink,
            );
        }
        legacy_s.push(t0.elapsed().as_secs_f64());
    }
    let med = |mut v: Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    };
    let (soa_m, legacy_m) = (med(soa_s), med(legacy_s));
    println!("\ninterleaved A/B over {reps} reps (NullSink):");
    println!(
        "  soa    {:>9.3} ms  ({:>9.0} frames/s)",
        soa_m * 1e3,
        frames as f64 / soa_m
    );
    println!(
        "  legacy {:>9.3} ms  ({:>9.0} frames/s)",
        legacy_m * 1e3,
        frames as f64 / legacy_m
    );
    println!("  kernel speedup: {:.3}x", legacy_m / soa_m);
}
