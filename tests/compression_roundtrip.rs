//! Property tests across the compression stack on realistic models.

use proptest::prelude::*;
use unfold::{System, TaskSpec};
use unfold_compress::{CompressedAm, CompressedLm, WeightQuantizer};
use unfold_wfst::SizeModel;

fn system() -> System {
    System::build(&TaskSpec::tiny())
}

#[test]
fn am_roundtrip_preserves_structure_exactly() {
    let s = system();
    let rt = s.am_comp.to_wfst();
    assert_eq!(rt.num_states(), s.am.fst.num_states());
    for st in s.am.fst.states() {
        let (a, b) = (s.am.fst.arcs(st), rt.arcs(st));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(
                (x.ilabel, x.olabel, x.nextstate),
                (y.ilabel, y.olabel, y.nextstate)
            );
        }
    }
}

#[test]
fn lm_roundtrip_preserves_structure_exactly() {
    let s = system();
    let rt = s.lm_comp.to_wfst();
    assert_eq!(rt.num_states(), s.lm_fst.num_states());
    assert_eq!(rt.num_arcs(), s.lm_fst.num_arcs());
    assert!(rt.is_ilabel_sorted());
}

#[test]
fn compression_always_shrinks_realistic_models() {
    let s = system();
    assert!(s.am_comp.size_bytes() < SizeModel::UNCOMPRESSED.bytes(&s.am.fst));
    assert!(s.lm_comp.size_bytes() < SizeModel::UNCOMPRESSED.bytes(&s.lm_fst));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any seed/cluster-count combination round-trips the AM topology.
    #[test]
    fn am_roundtrip_under_any_quantization(k in 2usize..=64, seed in 0u64..50) {
        let s = system();
        let comp = CompressedAm::compress(&s.am.fst, k, seed);
        let rt = comp.to_wfst();
        prop_assert_eq!(rt.num_arcs(), s.am.fst.num_arcs());
    }

    /// Quantized weights never stray beyond the codebook range.
    #[test]
    fn quantizer_output_within_range(k in 2usize..64, seed in 0u64..20) {
        let s = system();
        let weights: Vec<f32> = s.lm_fst.states()
            .flat_map(|st| s.lm_fst.arcs(st).iter().map(|a| a.weight))
            .collect();
        let q = WeightQuantizer::fit(&weights, k, seed);
        let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
        for &w in &weights {
            lo = lo.min(w);
            hi = hi.max(w);
        }
        for &w in weights.iter().step_by(7) {
            let v = q.quantize(w);
            prop_assert!(v >= lo - 1e-5 && v <= hi + 1e-5);
        }
    }

    /// Compressed LM lookups equal uncompressed binary search for any
    /// (state, word) pair.
    #[test]
    fn lm_lookup_agreement(sstep in 1usize..20, wstep in 1usize..20) {
        let s = system();
        let clm = CompressedLm::compress(&s.lm_fst, 64, 1);
        for st in (0..s.lm_fst.num_states() as u32).step_by(sstep) {
            for w in (1..=80u32).step_by(wstep) {
                let a = s.lm_fst.find_arc(st, w).0.map(|x| x.nextstate);
                let b = clm.lookup(st, w).arc.map(|x| x.nextstate);
                prop_assert_eq!(a, b);
            }
        }
    }
}

/// Regression: promoted from `proptest-regressions/compression_roundtrip.txt`
/// (cc 16b15bc5…, "shrinks to k = 65, seed = 0") so the case survives a
/// proptest cache wipe. k = 65 is the exact boundary of the packed
/// formats' 6-bit weight-index field: the free-standing quantizer
/// accepts it (spilling to 7 index bits), but `compress` must reject it
/// loudly instead of silently truncating codebook indices — and k = 64
/// must keep round-tripping bit-exactly.
#[test]
fn regression_k65_seed0_is_rejected_at_the_format_boundary() {
    let s = system();
    let weights: Vec<f32> = s
        .lm_fst
        .states()
        .flat_map(|st| s.lm_fst.arcs(st).iter().map(|a| a.weight))
        .collect();

    // The quantizer itself is format-agnostic: k = 65 fits and needs a
    // 7th index bit.
    let q = WeightQuantizer::fit(&weights, 65, 0);
    assert!(q.index_bits() >= 7, "k = 65 must spill past 6 index bits");
    for &w in weights.iter().step_by(7) {
        assert!(q.quantize(w).is_finite());
    }

    // The packed formats must refuse k = 65 (their arc layouts store
    // 6-bit indices) rather than emit corrupt models.
    for result in [
        std::panic::catch_unwind(|| CompressedAm::compress(&s.am.fst, 65, 0).size_bytes()),
        std::panic::catch_unwind(|| CompressedLm::compress(&s.lm_fst, 65, 0).size_bytes()),
    ] {
        let err = result.expect_err("k = 65 must be rejected by compress");
        let msg = err
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("k <= 64"), "unexpected panic message: {msg}");
    }

    // One below the boundary still round-trips the topology exactly.
    let cam = CompressedAm::compress(&s.am.fst, 64, 0);
    let clm = CompressedLm::compress(&s.lm_fst, 64, 0);
    assert_eq!(cam.to_wfst().num_arcs(), s.am.fst.num_arcs());
    assert_eq!(clm.to_wfst().num_arcs(), s.lm_fst.num_arcs());
}

#[test]
fn saved_models_decode_identically_after_reload() {
    // The deployment flow: compress once, write the UNFA/UNFL files,
    // load them elsewhere, decode — results must be bit-identical.
    use unfold_compress::{load_am, load_lm, save_am, save_lm};
    use unfold_decoder::{DecodeConfig, NullSink, OtfDecoder};

    let s = system();
    let dir = std::env::temp_dir().join(format!("unfold-io-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let am_path = dir.join("task.unfa");
    let lm_path = dir.join("task.unfl");
    save_am(&s.am_comp, &am_path).expect("write AM");
    save_lm(&s.lm_comp, &lm_path).expect("write LM");

    let am = load_am(&am_path).expect("read AM");
    let lm = load_lm(&lm_path).expect("read LM");
    let dec = OtfDecoder::new(DecodeConfig::default());
    for utt in s.test_utterances(3) {
        let a = dec.decode(&s.am_comp, &s.lm_comp, &utt.scores, &mut NullSink);
        let b = dec.decode(&am, &lm, &utt.scores, &mut NullSink);
        assert_eq!(a.words, b.words);
        assert_eq!(a.cost, b.cost);
    }
    std::fs::remove_dir_all(&dir).ok();
}
