//! Independent oracle for the beam decoders: unroll the search space
//! into a frame-by-frame trellis WFST (acoustic costs folded into arc
//! weights) and solve it *exactly* with `unfold_wfst::shortest_path`.
//! With a generous beam, the dynamic decoders must find the same best
//! hypothesis — cost and words.

use unfold_am::{build_am, synthesize_utterance, AcousticScores, HmmTopology, Lexicon, NoiseModel};
use unfold_decoder::{DecodeConfig, FullyComposedDecoder, NullSink, OtfDecoder};
use unfold_lm::{lm_to_wfst, CorpusSpec, DiscountConfig, NGramModel};
use unfold_wfst::{
    compose_am_lm, shortest_path, Arc, ComposeOptions, StateId, Wfst, WfstBuilder, EPSILON,
};

/// Unrolls `graph` against `scores`: trellis state = (frame, graph
/// state); emitting arcs consume a frame and add its acoustic cost;
/// epsilon arcs stay within a frame. Finals exist only at the last
/// frame (graph-final states).
fn unroll(graph: &Wfst, scores: &AcousticScores) -> Wfst {
    let frames = scores.num_frames();
    let n = graph.num_states();
    let mut b = WfstBuilder::with_states(n * (frames + 1));
    let id = |t: usize, s: StateId| (t * n) as StateId + s;
    b.set_start(id(0, graph.start()));
    for s in graph.states() {
        if let Some(w) = graph.final_weight(s) {
            b.set_final(id(frames, s), w);
        }
    }
    for t in 0..=frames {
        for s in graph.states() {
            for a in graph.arcs(s) {
                if a.ilabel == EPSILON {
                    // Non-emitting: same frame.
                    b.add_arc(
                        id(t, s),
                        Arc::new(EPSILON, a.olabel, a.weight, id(t, a.nextstate)),
                    );
                } else if t < frames {
                    let cost = a.weight + scores.cost(t, a.ilabel);
                    b.add_arc(
                        id(t, s),
                        Arc::new(a.ilabel, a.olabel, cost, id(t + 1, a.nextstate)),
                    );
                }
            }
        }
    }
    b.build()
}

fn setup() -> (Lexicon, Wfst, Wfst, Wfst) {
    let lex = Lexicon::generate(20, 12, 12);
    let am = build_am(&lex, HmmTopology::Kaldi3State);
    let spec = CorpusSpec {
        vocab_size: 20,
        num_sentences: 150,
        ..Default::default()
    };
    let model = NGramModel::train(&spec.generate(8), 20, DiscountConfig::default());
    let lm = lm_to_wfst(&model);
    let composed = compose_am_lm(&am.fst, &lm, ComposeOptions::default());
    (lex, am.fst, lm, composed)
}

#[test]
fn beam_decoders_match_exact_shortest_path() {
    let (lex, am, lm, composed) = setup();
    let noise = NoiseModel {
        noise_sigma: 0.6,
        word_confusion_prob: 0.2,
        ..NoiseModel::default()
    };
    for seed in 0..3u64 {
        let words = [(seed as u32 % 20) + 1, ((seed as u32 * 7) % 20) + 1];
        let utt = synthesize_utterance(&words, &lex, HmmTopology::Kaldi3State, &noise, seed);

        // Exact solution on the unrolled trellis of the composed graph.
        let trellis = unroll(&composed, &utt.scores);
        let exact = shortest_path(&trellis).expect("trellis has a path");

        // Wide-beam dynamic decoders.
        let cfg = DecodeConfig::builder()
            .beam(1e9)
            .max_active(usize::MAX)
            .preemptive_pruning(false)
            .build()
            .unwrap();
        let full = FullyComposedDecoder::new(cfg).decode(&composed, &utt.scores, &mut NullSink);
        let otf = OtfDecoder::new(cfg).decode(&am, &lm, &utt.scores, &mut NullSink);

        assert!(
            (exact.cost - full.cost).abs() < 1e-2,
            "seed {seed}: exact {} vs fully-composed {}",
            exact.cost,
            full.cost
        );
        assert!(
            (exact.cost - otf.cost).abs() < 1e-2,
            "seed {seed}: exact {} vs on-the-fly {}",
            exact.cost,
            otf.cost
        );
        assert_eq!(
            exact.olabels, full.words,
            "seed {seed}: words diverged (full)"
        );
        assert_eq!(
            exact.olabels, otf.words,
            "seed {seed}: words diverged (otf)"
        );
    }
}

#[test]
fn pruned_decode_never_beats_the_oracle() {
    let (lex, am, lm, composed) = setup();
    let utt = synthesize_utterance(
        &[5, 9],
        &lex,
        HmmTopology::Kaldi3State,
        &NoiseModel::default(),
        3,
    );
    let trellis = unroll(&composed, &utt.scores);
    let exact = shortest_path(&trellis).expect("path");
    let tight = OtfDecoder::new(DecodeConfig::builder().beam(3.0).build().unwrap()).decode(
        &am,
        &lm,
        &utt.scores,
        &mut NullSink,
    );
    if tight.is_complete() {
        assert!(
            tight.cost >= exact.cost - 1e-3,
            "pruning cannot improve the optimum"
        );
    }
}
