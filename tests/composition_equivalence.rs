//! The reproduction's core correctness claim: on-the-fly composition,
//! pair-space offline composition, and the determinized LG graph all
//! implement the same search.

use unfold::{build_composed_lg, System, TaskSpec};
use unfold_decoder::{DecodeConfig, FullyComposedDecoder, NullSink, OtfDecoder};
use unfold_wfst::{compose_am_lm, ComposeOptions};

#[test]
fn otf_equals_pairspace_composition() {
    // Pair-space composition explodes, so use a very small task.
    let mut spec = TaskSpec::tiny();
    spec.vocab_size = 40;
    spec.num_sentences = 300;
    let system = System::build(&spec);
    let composed = compose_am_lm(&system.am.fst, &system.lm_fst, ComposeOptions::default());
    let otf = OtfDecoder::new(DecodeConfig::default());
    let full = FullyComposedDecoder::new(DecodeConfig::default());
    for utt in system.test_utterances(5) {
        let a = otf.decode(&system.am.fst, &system.lm_fst, &utt.scores, &mut NullSink);
        let b = full.decode(&composed, &utt.scores, &mut NullSink);
        assert_eq!(a.words, b.words, "transcripts diverged");
        assert!(
            (a.cost - b.cost).abs() < 1e-3,
            "best-path costs diverged: {} vs {}",
            a.cost,
            b.cost
        );
    }
}

#[test]
fn otf_matches_determinized_lg() {
    // The LG graph encodes back-off as *epsilon* arcs (the standard
    // ARPA-to-WFST approximation real toolchains use), so it admits a
    // back-off path even where a direct n-gram arc exists; its best
    // path can therefore only be cheaper than the exact failure
    // semantics the on-the-fly decoder implements.
    let system = System::build(&TaskSpec::tiny());
    let lg = build_composed_lg(&system.lexicon, system.spec.topology, &system.lm_model);
    let otf = OtfDecoder::new(DecodeConfig::default());
    let full = FullyComposedDecoder::new(DecodeConfig::default());
    let mut diverged = 0;
    let utts = system.test_utterances(5);
    for utt in &utts {
        let a = otf.decode(&system.am.fst, &system.lm_fst, &utt.scores, &mut NullSink);
        let b = full.decode(&lg, &utt.scores, &mut NullSink);
        assert!(
            b.cost <= a.cost + 1e-3,
            "epsilon back-off can only add paths: {} vs {}",
            b.cost,
            a.cost
        );
        if a.words != b.words {
            diverged += 1;
        }
    }
    assert!(
        diverged <= 1,
        "{diverged}/{} transcripts diverged",
        utts.len()
    );
}

#[test]
fn compressed_models_decode_like_uncompressed() {
    let system = System::build(&TaskSpec::tiny());
    let otf = OtfDecoder::new(DecodeConfig::default());
    let mut diverged = 0;
    let utts = system.test_utterances(6);
    for utt in &utts {
        let a = otf.decode(&system.am.fst, &system.lm_fst, &utt.scores, &mut NullSink);
        let b = otf.decode(&system.am_comp, &system.lm_comp, &utt.scores, &mut NullSink);
        if a.words != b.words {
            diverged += 1;
        }
    }
    // Quantization may flip a borderline hypothesis occasionally; the
    // paper reports < 0.01% WER change, i.e. essentially never.
    assert!(
        diverged <= 1,
        "{diverged}/{} transcripts changed",
        utts.len()
    );
}

#[test]
fn lm_walks_agree_between_all_representations() {
    use unfold_decoder::LmSource;
    let system = System::build(&TaskSpec::tiny());
    let lm = &system.lm_fst;
    let clm = &system.lm_comp;
    for s in (0..lm.num_states() as u32).step_by(5) {
        for w in (1..=80u32).step_by(9) {
            let a = LmSource::resolve(lm, s, w).expect("resolvable");
            let b = LmSource::resolve(clm, s, w).expect("resolvable");
            assert_eq!(a.dest, b.dest, "state {s} word {w}");
            assert_eq!(a.backoff_hops, b.backoff_hops);
        }
    }
}

mod property {
    use proptest::prelude::*;
    use unfold_am::{build_am, synthesize_utterance, HmmTopology, Lexicon, NoiseModel};
    use unfold_decoder::{DecodeConfig, FullyComposedDecoder, NullSink, OtfDecoder};
    use unfold_lm::{CorpusSpec, DiscountConfig, NGramModel};
    use unfold_wfst::{compose_am_lm, ComposeOptions};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// For random miniature tasks and utterances, on-the-fly and
        /// pair-space offline composition decode identically.
        #[test]
        fn random_tasks_decode_identically(
            seed in 0u64..1_000,
            vocab in 15usize..40,
            phones in 8usize..20,
            sigma in 0.1f32..1.2,
            w1 in 1u32..15,
            w2 in 1u32..15,
        ) {
            let lex = Lexicon::generate(vocab, phones, seed);
            let am = build_am(&lex, HmmTopology::Kaldi3State);
            let spec = CorpusSpec { vocab_size: vocab, num_sentences: 120, ..Default::default() };
            let model = NGramModel::train(&spec.generate(seed ^ 1), vocab, DiscountConfig::default());
            let lm = unfold_lm::lm_to_wfst(&model);
            let composed = compose_am_lm(&am.fst, &lm, ComposeOptions::default());

            let noise = NoiseModel { noise_sigma: sigma, ..NoiseModel::default() };
            let utt = synthesize_utterance(&[w1, w2], &lex, HmmTopology::Kaldi3State, &noise, seed ^ 2);

            let cfg = DecodeConfig::default();
            let a = OtfDecoder::new(cfg).decode(&am.fst, &lm, &utt.scores, &mut NullSink);
            let b = FullyComposedDecoder::new(cfg).decode(&composed, &utt.scores, &mut NullSink);
            prop_assert_eq!(&a.words, &b.words);
            if a.is_complete() {
                prop_assert!((a.cost - b.cost).abs() < 1e-2,
                    "costs diverged: {} vs {}", a.cost, b.cost);
            }
        }

        /// CTC-topology tasks decode identically too.
        #[test]
        fn ctc_tasks_decode_identically(seed in 0u64..500, w in 1u32..12) {
            let lex = Lexicon::generate(20, 10, seed);
            let am = build_am(&lex, HmmTopology::Ctc);
            let spec = CorpusSpec { vocab_size: 20, num_sentences: 100, ..Default::default() };
            let model = NGramModel::train(&spec.generate(seed), 20, DiscountConfig::default());
            let lm = unfold_lm::lm_to_wfst(&model);
            let composed = compose_am_lm(&am.fst, &lm, ComposeOptions::default());
            let utt = synthesize_utterance(&[w], &lex, HmmTopology::Ctc, &NoiseModel::clean(), seed);
            let cfg = DecodeConfig::default();
            let a = OtfDecoder::new(cfg).decode(&am.fst, &lm, &utt.scores, &mut NullSink);
            let b = FullyComposedDecoder::new(cfg).decode(&composed, &utt.scores, &mut NullSink);
            prop_assert_eq!(&a.words, &b.words);
            prop_assert_eq!(a.words, vec![w]);
        }
    }
}

#[test]
fn determinization_reproduces_the_prefix_tree_size_argument() {
    // DESIGN.md argues the offline-composed graph stays tractable
    // because toolchains determinize: the per-LM-state word chains
    // collapse into a pronunciation prefix tree. Verify that argument
    // with the library's own operators: determinizing the naive
    // union-of-chains acceptor over a lexicon yields exactly the trie's
    // state count, and minimization shrinks it further (suffix sharing).
    use unfold_am::Lexicon;
    use unfold_wfst::{accept_cost, determinize, minimize, Arc, DeterminizeOptions, WfstBuilder};

    let lex = Lexicon::generate(60, 12, 31);
    // Naive union: one chain per word over phoneme labels (+1 so no
    // label collides with epsilon).
    let mut b = WfstBuilder::new();
    let start = b.add_state();
    b.set_start(start);
    for (_, pron) in lex.iter() {
        let mut prev = start;
        for &ph in pron {
            let s = b.add_state();
            b.add_arc(prev, Arc::new(u32::from(ph) + 1, u32::from(ph) + 1, 0.0, s));
            prev = s;
        }
        b.set_final(prev, 0.0);
    }
    let naive = b.build();

    // Count trie states independently (distinct pronunciation prefixes).
    let mut prefixes = std::collections::HashSet::new();
    for (_, pron) in lex.iter() {
        for len in 1..=pron.len() {
            prefixes.insert(pron[..len].to_vec());
        }
    }
    let trie_states = prefixes.len() + 1;

    let det = determinize(&naive, DeterminizeOptions::default());
    assert_eq!(
        det.num_states(),
        trie_states,
        "determinization = prefix tree"
    );
    assert!(
        det.num_states() < naive.num_states(),
        "sharing must shrink the union"
    );

    let min = minimize(&det);
    assert!(
        min.num_states() < det.num_states(),
        "suffix sharing shrinks further"
    );

    // The weighted language is intact throughout.
    for (_, pron) in lex.iter().take(10) {
        let labels: Vec<u32> = pron.iter().map(|&p| u32::from(p) + 1).collect();
        assert_eq!(accept_cost(&naive, &labels), Some(0.0));
        assert_eq!(accept_cost(&det, &labels), Some(0.0));
        assert_eq!(accept_cost(&min, &labels), Some(0.0));
    }
}
