//! Registry churn under live decode traffic.
//!
//! Eight sessions decode on real worker threads while another thread
//! hammers the server's model registries: hot-adding and retiring LMs
//! and biasing models, including hot-swapping the very entries the
//! running sessions were admitted with. The pinned-at-admission
//! contract says none of that may be observable from inside a session:
//!
//! * every surviving session's transcript is bit-identical to a
//!   standalone decode against the models it was admitted with;
//! * every lease a session ever ran carries the same `(lm_gen,
//!   bias_gen)` stamp pair — no quantum of a session ever decoded
//!   against a swapped-in model;
//! * generation stamps are never lost to the churn: distinct stamp
//!   pairs appear for distinctly-admitted sessions, and biased
//!   sessions carry a nonzero bias stamp.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use unfold_am::{build_am, synthesize_utterance, HmmTopology, Lexicon, NoiseModel, Utterance};
use unfold_bias::{BiasedLm, BiasingFst};
use unfold_decoder::{DecodeConfig, DecodeResult, NullSink, OtfDecoder};
use unfold_lm::{lm_to_wfst, CorpusSpec, DiscountConfig, NGramModel};
use unfold_obs::ObsRecord;
use unfold_serve::{ServeConfig, Server};
use unfold_wfst::Wfst;

const VOCAB: u32 = 50;

fn train_lm(seed: u64) -> Arc<Wfst> {
    let spec = CorpusSpec {
        vocab_size: VOCAB as usize,
        num_sentences: 300,
        ..Default::default()
    };
    let model = NGramModel::train(
        &spec.generate(seed),
        VOCAB as usize,
        DiscountConfig::default(),
    );
    Arc::new(lm_to_wfst(&model))
}

fn utt(lex: &Lexicon, words: &[u32], seed: u64) -> Utterance {
    synthesize_utterance(
        words,
        lex,
        HmmTopology::Kaldi3State,
        &NoiseModel::default(),
        seed,
    )
}

#[test]
fn registry_churn_never_touches_admitted_sessions() {
    let lex = Lexicon::generate(VOCAB as usize, 20, 6);
    let am = Arc::new(build_am(&lex, HmmTopology::Kaldi3State).fst);
    let lm_a = train_lm(3);
    let lm_b = train_lm(17);
    let users: Vec<Arc<BiasingFst>> = (0..4)
        .map(|u| Arc::new(BiasingFst::mint(0xB1A5 ^ u, VOCAB, 5)))
        .collect();

    let word_seqs: [&[u32]; 8] = [
        &[3, 9, 17],
        &[7, 11, 4],
        &[22, 5],
        &[14, 30, 8],
        &[2, 40, 6],
        &[19, 25],
        &[33, 1, 12],
        &[44, 10, 28],
    ];
    let utts: Vec<Utterance> = word_seqs
        .iter()
        .enumerate()
        .map(|(i, w)| utt(&lex, w, 70 + i as u64))
        .collect();

    // Session i: LM alternates default/alt, even sessions are biased
    // with user i/2 mod 4. Standalone expectations pin bit-identity.
    let base = DecodeConfig::default();
    let standalone: Vec<DecodeResult> = utts
        .iter()
        .enumerate()
        .map(|(i, u)| {
            let lm = if i % 2 == 0 { &lm_a } else { &lm_b };
            if i % 2 == 0 {
                let biased = BiasedLm::new(&**lm, &users[(i / 2) % 4]);
                OtfDecoder::new(base).decode(&*am, &biased, &u.scores, &mut NullSink)
            } else {
                OtfDecoder::new(base).decode(&*am, &**lm, &u.scores, &mut NullSink)
            }
        })
        .collect();

    let server = Server::start_multi(
        ServeConfig {
            workers: 2,
            quantum_frames: 8,
            olt_entries: 1_024,
            base,
            ..Default::default()
        },
        Arc::clone(&am),
        vec![
            ("default".to_string(), Arc::clone(&lm_a)),
            ("alt".to_string(), Arc::clone(&lm_b)),
        ],
    );
    let handle = server.handle();
    for (u, fst) in users.iter().enumerate() {
        assert!(handle
            .add_bias(&format!("user-{u}"), Arc::clone(fst))
            .is_none());
    }

    // The churn thread runs for the whole decode window: hot-swap the
    // in-use LM and bias names (admitted sessions must keep their
    // pinned Arcs), plus add/retire throwaway entries.
    let stop = Arc::new(AtomicBool::new(false));
    let churn = {
        let handle = handle.clone();
        let stop = Arc::clone(&stop);
        let lm_b = Arc::clone(&lm_b);
        let users = users.clone();
        std::thread::spawn(move || {
            let mut swaps = 0u64;
            // Post-check loop: at least one churn pass always runs,
            // even if the decodes finish before this thread spins up.
            loop {
                // Hot-swap model names sessions are actively using.
                // Content-identical handles keep the standalone
                // expectations valid for sessions that race the swap
                // and pin the *new* entry; the generation stamp still
                // advances, which is what the span checks pin down.
                handle.add_lm("alt", Arc::clone(&lm_b));
                handle.add_bias(
                    &format!("user-{}", swaps % 4),
                    Arc::clone(&users[(swaps % 4) as usize]),
                );
                // Add-then-retire churn entries.
                handle.add_lm("churn", Arc::clone(&lm_b));
                handle.retire_lm("churn").expect("churn LM present");
                handle.add_bias("churn-bias", Arc::new(BiasingFst::mint(swaps, VOCAB, 2)));
                handle
                    .retire_bias("churn-bias")
                    .expect("churn bias present");
                swaps += 1;
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            swaps
        })
    };

    let joins: Vec<_> = utts
        .iter()
        .enumerate()
        .map(|(i, u)| {
            let handle = handle.clone();
            let rows: Vec<Vec<f32>> = (0..u.scores.num_frames())
                .map(|t| u.scores.frame(t).to_vec())
                .collect();
            std::thread::spawn(move || {
                let lm = if i % 2 == 0 {
                    Some("default")
                } else {
                    Some("alt")
                };
                let bias = (i % 2 == 0).then(|| format!("user-{}", (i / 2) % 4));
                let id = handle.open_with_models(lm, bias.as_deref()).expect("admit");
                for row in &rows {
                    handle.push_frame(id, row).expect("push");
                }
                handle.finish(id).expect("finish");
                let res = handle
                    .wait_result(id, Duration::from_secs(60))
                    .expect("known")
                    .expect("no timeout");
                (id, res)
            })
        })
        .collect();
    let results: Vec<(u64, DecodeResult)> = joins.into_iter().map(|j| j.join().unwrap()).collect();
    stop.store(true, Ordering::Relaxed);
    let swaps = churn.join().unwrap();
    assert!(swaps > 0, "churn thread must have actually churned");

    // Bit-identity of the survivors, despite their models having been
    // hot-swapped out of the registry mid-decode.
    for ((_, served), alone) in results.iter().zip(&standalone) {
        assert_eq!(served.words, alone.words);
        assert_eq!(served.cost.to_bits(), alone.cost.to_bits());
        assert_eq!(served.stats.frames, alone.stats.frames);
    }

    // Per-session stamp stability, from the lease spans: a session's
    // quanta must all carry the one (lm_gen, bias_gen) pair it was
    // admitted with, and stamps must separate the distinct models.
    let spans = handle.spans_jsonl();
    let mut by_session: std::collections::HashMap<u64, Vec<(u64, u64)>> =
        std::collections::HashMap::new();
    for line in spans.lines() {
        let Ok(ObsRecord::SessionSpan(s)) = ObsRecord::parse_line(line) else {
            continue;
        };
        if s.stage != "lease" {
            continue;
        }
        let attr = |name: &str| {
            s.attrs
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v as u64)
        };
        let (Some(lm_gen), Some(bias_gen)) = (attr("lm_gen"), attr("bias_gen")) else {
            panic!("lease span missing generation stamps: {line}");
        };
        by_session
            .entry(s.session)
            .or_default()
            .push((lm_gen, bias_gen));
    }
    for (id, _) in &results {
        let stamps = &by_session[id];
        assert!(
            stamps.windows(2).all(|w| w[0] == w[1]),
            "session {id} observed more than one model generation: {stamps:?}"
        );
    }
    // Even sessions were biased (bias stamps share the LM counter and
    // start past it, so 0 never appears for them); odd ones were not.
    for (i, (id, _)) in results.iter().enumerate() {
        let (_, bias_gen) = by_session[id][0];
        if i % 2 == 0 {
            assert!(bias_gen >= 2, "biased session {id} lost its bias stamp");
        } else {
            assert_eq!(bias_gen, 0, "unbiased session {id} grew a bias stamp");
        }
    }
    // The four distinct biasing users admitted before the churn carry
    // four distinct stamps.
    let mut bias_stamps: Vec<u64> = results
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 2 == 0)
        .map(|(_, (id, _))| by_session[id][0].1)
        .collect();
    bias_stamps.sort_unstable();
    bias_stamps.dedup();
    assert_eq!(bias_stamps.len(), 4, "a biasing generation stamp was lost");

    server.shutdown();
}
