//! Integration test package; tests are the interesting part.
