//! Decode-invariance properties for the two perf paths this repo
//! treats as pure optimizations: the utterance-parallel worker pool
//! and the software Offset Lookup Table. Neither may change a single
//! bit of decode output — traces feed the cycle-accurate simulator, so
//! "almost the same" is a correctness bug, not a tolerance question.

use proptest::prelude::*;
use unfold::decode_batch;
use unfold_am::{build_am, synthesize_utterance, HmmTopology, Lexicon, NoiseModel, Utterance};
use unfold_decoder::{DecodeConfig, DecodeScratch, NullSink, OtfDecoder};
use unfold_lm::{lm_to_wfst, CorpusSpec, DiscountConfig, NGramModel};

fn mini_task(seed: u64, vocab: usize) -> (unfold_am::AmGraph, unfold_wfst::Wfst, Lexicon) {
    let lex = Lexicon::generate(vocab, 12, seed);
    let am = build_am(&lex, HmmTopology::Kaldi3State);
    let spec = CorpusSpec {
        vocab_size: vocab,
        num_sentences: 120,
        ..Default::default()
    };
    let model = NGramModel::train(&spec.generate(seed ^ 1), vocab, DiscountConfig::default());
    (am, lm_to_wfst(&model), lex)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For random miniature tasks, decoding a batch with 2 or 4
    /// workers produces byte-identical transcripts, costs, and stats
    /// to the serial run.
    #[test]
    fn any_worker_count_is_byte_identical(
        seed in 0u64..1_000,
        vocab in 15usize..35,
        sigma in 0.1f32..1.0,
    ) {
        let (am, lm, lex) = mini_task(seed, vocab);
        let noise = NoiseModel { noise_sigma: sigma, ..NoiseModel::default() };
        let utts: Vec<Utterance> = (0..5u32)
            .map(|i| {
                let w1 = (seed as u32 + i) % vocab as u32 + 1;
                let w2 = (seed as u32 * 3 + i) % vocab as u32 + 1;
                synthesize_utterance(
                    &[w1, w2],
                    &lex,
                    HmmTopology::Kaldi3State,
                    &noise,
                    seed ^ u64::from(i),
                )
            })
            .collect();
        let decoder = OtfDecoder::new(DecodeConfig::default());
        let decode = |_i: usize, utt: &Utterance, scratch: &mut DecodeScratch| {
            decoder.decode_with(&am.fst, &lm, &utt.scores, scratch, &mut NullSink)
        };
        let (serial, _) = decode_batch(&utts, 1, decode);
        for jobs in [2usize, 4] {
            let (par, _) = decode_batch(&utts, jobs, decode);
            for (a, b) in serial.iter().zip(&par) {
                prop_assert_eq!(&a.words, &b.words);
                prop_assert_eq!(a.cost.to_bits(), b.cost.to_bits());
                prop_assert_eq!(&a.stats, &b.stats);
            }
        }
    }

    /// Turning the software OLT on (any capacity) leaves the decoded
    /// words, cost bits, and search-shape statistics untouched; only
    /// the memo-table counters and the LM fetch count may move.
    #[test]
    fn olt_capacity_never_changes_the_answer(
        seed in 0u64..1_000,
        vocab in 15usize..35,
        sigma in 0.1f32..1.0,
        w1 in 1u32..15,
        w2 in 1u32..15,
    ) {
        let (am, lm, lex) = mini_task(seed, vocab);
        let noise = NoiseModel { noise_sigma: sigma, ..NoiseModel::default() };
        let utt = synthesize_utterance(
            &[w1, w2],
            &lex,
            HmmTopology::Kaldi3State,
            &noise,
            seed ^ 2,
        );
        let base =
            OtfDecoder::new(DecodeConfig::default()).decode(&am.fst, &lm, &utt.scores, &mut NullSink);
        prop_assert_eq!(base.stats.olt_probes, 0);
        for entries in [64usize, 1024] {
            let cfg = DecodeConfig::builder().olt_entries(entries).build().unwrap();
            let r = OtfDecoder::new(cfg).decode(&am.fst, &lm, &utt.scores, &mut NullSink);
            prop_assert_eq!(&r.words, &base.words);
            prop_assert_eq!(r.cost.to_bits(), base.cost.to_bits());
            prop_assert_eq!(r.stats.frames, base.stats.frames);
            prop_assert_eq!(r.stats.tokens_created, base.stats.tokens_created);
            prop_assert_eq!(r.stats.tokens_pruned, base.stats.tokens_pruned);
            prop_assert_eq!(r.stats.lm_lookups, base.stats.lm_lookups);
            prop_assert_eq!(r.stats.backoff_hops, base.stats.backoff_hops);
            prop_assert_eq!(r.stats.preemptive_prunes, base.stats.preemptive_prunes);
            // A hit skips exactly the probes the binary search would
            // have issued, so fetches can only go down.
            prop_assert!(r.stats.lm_fetches <= base.stats.lm_fetches);
            if r.stats.olt_hits > 0 {
                prop_assert!(r.stats.lm_fetches < base.stats.lm_fetches);
            }
        }
    }
}
