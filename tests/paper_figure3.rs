//! The paper's Figure 3 worked example, built arc-by-arc: a 3-word AM
//! (ONE / TWO / THREE), the 3-gram LM over those words, and the
//! on-the-fly search of Figure 3c — including the §3.3 back-off
//! walkthrough ("TWO-ONE" followed by "TWO" backs off twice).

use unfold_am::AcousticScores;
use unfold_decoder::{DecodeConfig, LmSource, NullSink, OtfDecoder};
use unfold_wfst::compose::resolve_lm_word;
use unfold_wfst::{Arc, SymbolTable, Wfst, WfstBuilder, EPSILON};

// PDF ids for the phonemes S1..S8 of Figure 3a.
const S1: u32 = 1;
const S2: u32 = 2;
const S3: u32 = 3;
const S4: u32 = 4;
const S5: u32 = 5;
const S6: u32 = 6;
const S7: u32 = 7;
const S8: u32 = 8;

fn words() -> SymbolTable {
    ["ONE", "TWO", "THREE"].into_iter().collect()
}

/// Figure 3a: the acoustic model. Words emit on their last phoneme arc;
/// an epsilon arc returns to the root.
fn am() -> Wfst {
    let w = words();
    let (one, two, three) = (
        w.get("ONE").unwrap(),
        w.get("TWO").unwrap(),
        w.get("THREE").unwrap(),
    );
    let mut b = WfstBuilder::with_states(9);
    b.set_start(0);
    b.set_final(0, 0.0);
    // ONE: S1 S2 S3
    b.add_arc(0, Arc::new(S1, EPSILON, 0.0, 1));
    b.add_arc(1, Arc::new(S2, EPSILON, 0.0, 2));
    b.add_arc(2, Arc::new(S3, one, 0.0, 3));
    b.add_arc(3, Arc::epsilon(0.0, 0));
    // TWO: S4 S5
    b.add_arc(0, Arc::new(S4, EPSILON, 0.0, 4));
    b.add_arc(4, Arc::new(S5, two, 0.0, 5));
    b.add_arc(5, Arc::epsilon(0.0, 0));
    // THREE: S6 S7 S8
    b.add_arc(0, Arc::new(S6, EPSILON, 0.0, 6));
    b.add_arc(6, Arc::new(S7, EPSILON, 0.0, 7));
    b.add_arc(7, Arc::new(S8, three, 0.0, 8));
    b.add_arc(8, Arc::epsilon(0.0, 0));
    b.build()
}

/// Figure 3b: the 3-gram LM. State 0 is the empty history; 1/2/3 are
/// the one-word histories of ONE/TWO/THREE; 4/5/6 are two-word
/// histories. Missing combinations back off, as in §3.3.
fn lm() -> Wfst {
    let w = words();
    let (one, two, three) = (
        w.get("ONE").unwrap(),
        w.get("TWO").unwrap(),
        w.get("THREE").unwrap(),
    );
    let mut b = WfstBuilder::with_states(7);
    b.set_start(0);
    for s in 0..7 {
        b.set_final(s, 0.0);
    }
    // Unigrams (word w -> state w, the layout invariant).
    b.add_arc(0, Arc::new(one, one, 1.0, 1));
    b.add_arc(0, Arc::new(two, two, 1.2, 2));
    b.add_arc(0, Arc::new(three, three, 1.5, 3));
    // Bigrams: ONE->THREE (state 4 = "ONE THREE"), TWO->ONE
    // (5 = "TWO ONE"), THREE->TWO (6 = "THREE TWO"). Crucially there is
    // *no* bigram ONE->TWO: that is the gap §3.3's walkthrough relies on.
    b.add_arc(1, Arc::new(three, three, 0.4, 4));
    b.add_arc(2, Arc::new(one, one, 0.5, 5));
    b.add_arc(3, Arc::new(two, two, 0.6, 6));
    // Trigram: Prob(ONE | THREE, TWO): state 6 -> state 5.
    b.add_arc(6, Arc::new(one, one, 0.2, 5));
    // Back-off arcs (last, per the storage convention).
    b.add_arc(1, Arc::epsilon(0.3, 0));
    b.add_arc(2, Arc::epsilon(0.35, 0));
    b.add_arc(3, Arc::epsilon(0.25, 0));
    b.add_arc(4, Arc::epsilon(0.1, 3)); // "ONE THREE" backs off to "THREE"
    b.add_arc(5, Arc::epsilon(0.15, 1)); // "TWO ONE" backs off to "ONE"
    b.add_arc(6, Arc::epsilon(0.2, 2)); // "THREE TWO" backs off to "TWO"
    let mut fst = b.build();
    fst.sort_arcs_by_ilabel();
    fst
}

/// Scores where exactly the given PDF is cheap at each frame.
fn scores_for(pdf_per_frame: &[u32]) -> AcousticScores {
    let num_pdfs = 8;
    let mut flat = Vec::new();
    for &p in pdf_per_frame {
        for pdf in 1..=num_pdfs as u32 {
            flat.push(if pdf == p { 0.1 } else { 6.0 });
        }
    }
    AcousticScores::from_flat(flat, num_pdfs)
}

#[test]
fn decodes_one_two_like_figure_3c() {
    let w = words();
    let utt = scores_for(&[S1, S2, S3, S4, S5]);
    let dec = OtfDecoder::new(DecodeConfig::default());
    let res = dec.decode(&am(), &lm(), &utt, &mut NullSink);
    assert_eq!(w.render(&res.words), "ONE TWO");
    // Cost: acoustics 5 x 0.1 + unigram(ONE)=1.0, then TWO has no
    // bigram after ONE: backoff(1)=0.3 + unigram(TWO)=1.2.
    assert!(
        (res.cost - (0.5 + 1.0 + 0.3 + 1.2)).abs() < 1e-4,
        "cost {}",
        res.cost
    );
}

#[test]
fn decodes_three_through_the_unigram() {
    let w = words();
    let utt = scores_for(&[S6, S7, S8]);
    let dec = OtfDecoder::new(DecodeConfig::default());
    let res = dec.decode(&am(), &lm(), &utt, &mut NullSink);
    assert_eq!(w.render(&res.words), "THREE");
    assert!((res.cost - (0.3 + 1.5)).abs() < 1e-4);
}

#[test]
fn section_3_3_backoff_walkthrough() {
    // "Consider the word sequence TWO-ONE ... if the next word is TWO,
    // then we use a back-off transition to state 1 ... since there is
    // no 3-gram model for TWO-ONE-TWO. Next, as there is no bigram from
    // state 1 for the word TWO, another back-off transition is taken to
    // state 0. Then, by traversing the right arc, it reaches ... state
    // [2], which corresponds to having seen the unigram TWO."
    let lm = lm();
    let two = words().get("TWO").unwrap();
    // State 5 encodes the history "TWO ONE".
    let (dest, cost, hops) = resolve_lm_word(&lm, 5, two).unwrap();
    assert_eq!(hops, 2, "two back-off transitions");
    assert_eq!(dest, 2, "lands at the unigram history of TWO");
    // Weight: backoff(5) 0.15 + backoff(1) 0.3 + unigram(TWO) 1.2.
    assert!((cost - (0.15 + 0.3 + 1.2)).abs() < 1e-5);
}

#[test]
fn trigram_is_used_when_present() {
    // History "THREE TWO" (state 6) + ONE has an explicit trigram arc.
    let lm = lm();
    let one = words().get("ONE").unwrap();
    let (dest, cost, hops) = resolve_lm_word(&lm, 6, one).unwrap();
    assert_eq!(hops, 0);
    assert_eq!(dest, 5, "transitions to the TWO-ONE history");
    assert!((cost - 0.2).abs() < 1e-6);
}

#[test]
fn compressed_figure_3_lm_behaves_identically() {
    let lm = lm();
    let comp = unfold_compress::CompressedLm::compress(&lm, 8, 0);
    for s in 0..7u32 {
        for word in 1..=3u32 {
            let a = resolve_lm_word(&lm, s, word).unwrap();
            let (d, c, h, _) = comp.resolve(s, word).unwrap();
            assert_eq!(a.0, d);
            assert_eq!(a.2, h);
            assert!((a.1 - c).abs() < 0.2);
        }
    }
}

#[test]
fn figure_3_lm_probes_stay_logarithmic() {
    let lm = lm();
    for s in 0..7u32 {
        for word in 1..=3u32 {
            let res = LmSource::lookup_word(&lm, s, word);
            assert!(
                res.probes.len() <= 2,
                "state {s} word {word}: {} probes",
                res.probes.len()
            );
        }
    }
}
