//! Integration tests for the `unfold-verify` differential campaign:
//! a clean fixed-seed campaign finds nothing, and an intentionally
//! injected decoder bug is found, delta-debugged down to a handful of
//! LM states, serialized as a repro file, and replayed through
//! `unfold-cli verify --repro`.

use unfold_verify::{
    run_campaign, run_repro, shrink, CampaignConfig, CaseModels, CaseSpec, CheckId, Mutation,
    ReproCase,
};

/// How many cases the clean campaign runs under `cargo test`. The full
/// 256-case acceptance campaign is the CI smoke job / manual run
/// (`cargo run --release -p unfold-verify -- --cases 256`); here a
/// smaller fixed prefix of the same seed keeps debug-build test time
/// reasonable while still sweeping the edge-case knobs.
const CLEAN_CASES: u64 = 48;

#[test]
fn clean_campaign_has_zero_divergences() {
    let report = run_campaign(&CampaignConfig {
        seed: 42,
        cases: CLEAN_CASES,
        mutation: Mutation::None,
        only: None,
        out_dir: None,
        shrink: false,
        jobs: 4,
    })
    .expect("campaign I/O");
    assert_eq!(report.cases, CLEAN_CASES);
    assert!(
        report.is_clean(),
        "divergences on a clean decoder: {:#?}",
        report.divergences
    );
}

/// The acceptance scenario from the issue: inject a decoder bug that
/// skips the OLT-style full-key compare, let the campaign catch it,
/// and shrink the first diverging case to a repro of at most 10 LM
/// states.
#[test]
fn injected_olt_bug_is_caught_and_shrunk_to_tiny_repro() {
    let mutation = Mutation::OltAliasing;
    let report = run_campaign(&CampaignConfig {
        seed: 7,
        cases: 32,
        mutation,
        only: None,
        out_dir: None,
        shrink: false,
        jobs: 4,
    })
    .expect("campaign I/O");
    assert!(
        !report.divergences.is_empty(),
        "the aliasing bug must be detected within 32 cases"
    );

    // Shrink every diverging case; the best minimization must reach the
    // ≤ 10 LM-state budget (a near-minimal model: root + a few word
    // histories).
    let mut best_states = usize::MAX;
    let mut best: Option<(CaseSpec, unfold_verify::CheckId)> = None;
    for d in &report.divergences {
        let out = shrink(&d.original, mutation, None).expect("divergence must still reproduce");
        assert_eq!(
            out.divergence.check, d.divergence.check,
            "shrinking must preserve the failing check"
        );
        if out.lm_states < best_states {
            best_states = out.lm_states;
            best = Some((out.spec.clone(), out.divergence.check));
        }
    }
    let (spec, check) = best.expect("at least one shrink outcome");
    assert!(
        best_states <= 10,
        "best shrunk repro has {best_states} LM states, want <= 10"
    );

    // The minimized spec really is that small when rebuilt from scratch.
    let rebuilt = CaseModels::build(&spec);
    assert_eq!(rebuilt.lm_fst.num_states(), best_states);

    // And it still diverges on the same check when replayed as a repro.
    let repro = ReproCase {
        spec,
        check: Some(check),
        mutation,
    };
    let replayed = run_repro(&repro).expect("minimized repro must still diverge");
    assert_eq!(replayed.check, check);
}

/// The lattice-oracle acceptance scenario: a campaign restricted to the
/// lattice-oracle check runs clean on the correct decoder, and a
/// planted lattice-beam-skip bug (the lattice builder ignores
/// `lattice_beam` while claiming it) is caught by that check alone and
/// shrinks to a repro of at most 10 LM states.
#[test]
fn planted_lattice_beam_skip_is_caught_and_shrunk() {
    // Clean first: the same restricted campaign must find nothing.
    let clean = run_campaign(&CampaignConfig {
        seed: 7,
        cases: 16,
        mutation: Mutation::None,
        only: Some(CheckId::LatticeOracle),
        out_dir: None,
        shrink: false,
        jobs: 4,
    })
    .expect("campaign I/O");
    assert!(
        clean.is_clean(),
        "lattice-oracle divergences on a clean decoder: {:#?}",
        clean.divergences
    );

    let mutation = Mutation::LatticeBeamSkip;
    let report = run_campaign(&CampaignConfig {
        seed: 7,
        cases: 16,
        mutation,
        only: Some(CheckId::LatticeOracle),
        out_dir: None,
        shrink: false,
        jobs: 4,
    })
    .expect("campaign I/O");
    assert!(
        !report.divergences.is_empty(),
        "the skipped lattice beam must be detected within 16 cases"
    );
    for d in &report.divergences {
        assert_eq!(d.divergence.check, CheckId::LatticeOracle);
    }

    let mut best_states = usize::MAX;
    let mut best: Option<CaseSpec> = None;
    for d in &report.divergences {
        let out = shrink(&d.original, mutation, Some(CheckId::LatticeOracle))
            .expect("divergence must still reproduce");
        assert_eq!(out.divergence.check, CheckId::LatticeOracle);
        if out.lm_states < best_states {
            best_states = out.lm_states;
            best = Some(out.spec.clone());
        }
    }
    let spec = best.expect("at least one shrink outcome");
    assert!(
        best_states <= 10,
        "best shrunk repro has {best_states} LM states, want <= 10"
    );

    // The minimized case still diverges on the same check as a repro.
    let repro = ReproCase {
        spec,
        check: Some(CheckId::LatticeOracle),
        mutation,
    };
    let replayed = run_repro(&repro).expect("minimized repro must still diverge");
    assert_eq!(replayed.check, CheckId::LatticeOracle);
}

/// The pipeline-identity acceptance scenario: a campaign restricted to
/// the pipelined-vs-lockstep comparison runs clean on the correct
/// decoder, and a planted stale-lag bug (the scoring stage hands search
/// the previous frame's row) is caught by that check alone and shrinks
/// to a repro of at most 10 LM states.
#[test]
fn planted_stale_lag_is_caught_and_shrunk() {
    // Clean first: the same restricted campaign must find nothing.
    let clean = run_campaign(&CampaignConfig {
        seed: 7,
        cases: 16,
        mutation: Mutation::None,
        only: Some(CheckId::PipelineIdentity),
        out_dir: None,
        shrink: false,
        jobs: 4,
    })
    .expect("campaign I/O");
    assert!(
        clean.is_clean(),
        "pipeline-identity divergences on a clean decoder: {:#?}",
        clean.divergences
    );

    let mutation = Mutation::StaleLag;
    let report = run_campaign(&CampaignConfig {
        seed: 7,
        cases: 16,
        mutation,
        only: Some(CheckId::PipelineIdentity),
        out_dir: None,
        shrink: false,
        jobs: 4,
    })
    .expect("campaign I/O");
    assert!(
        !report.divergences.is_empty(),
        "the stale scoring ring must be detected within 16 cases"
    );
    for d in &report.divergences {
        assert_eq!(d.divergence.check, CheckId::PipelineIdentity);
    }

    let mut best_states = usize::MAX;
    let mut best: Option<CaseSpec> = None;
    for d in &report.divergences {
        let out = shrink(&d.original, mutation, Some(CheckId::PipelineIdentity))
            .expect("divergence must still reproduce");
        assert_eq!(out.divergence.check, CheckId::PipelineIdentity);
        if out.lm_states < best_states {
            best_states = out.lm_states;
            best = Some(out.spec.clone());
        }
    }
    let spec = best.expect("at least one shrink outcome");
    assert!(
        best_states <= 10,
        "best shrunk repro has {best_states} LM states, want <= 10"
    );

    // The minimized case still diverges on the same check as a repro.
    let repro = ReproCase {
        spec,
        check: Some(CheckId::PipelineIdentity),
        mutation,
    };
    let replayed = run_repro(&repro).expect("minimized repro must still diverge");
    assert_eq!(replayed.check, CheckId::PipelineIdentity);
}

/// The repro file round-trips through disk and through the CLI: the
/// `verify --repro` subcommand reports DIVERGED for a buggy decode and
/// PASS once the mutation is turned off.
#[test]
fn cli_replays_repro_files() {
    let mutation = Mutation::FreeBackoff;
    let diverging = (0..16)
        .map(|i| CaseSpec::derive(0xB00, i))
        .find(|spec| unfold_verify::run_case_caught(spec, mutation).is_some())
        .expect("free-backoff must diverge within 16 cases");

    let dir = std::env::temp_dir().join(format!("unfold-verify-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("repro.txt");
    let repro = ReproCase {
        spec: diverging.clone(),
        check: None,
        mutation,
    };
    std::fs::write(&path, repro.to_text()).unwrap();

    let argv = |m: &str| -> Vec<String> {
        ["verify", "--repro", m]
            .iter()
            .map(|s| s.to_string())
            .collect()
    };
    let out = unfold_cli::run(&argv(path.to_str().unwrap())).unwrap();
    assert!(out.contains("DIVERGED"), "expected DIVERGED in:\n{out}");

    // Same spec, mutation disabled: the decoder is correct, so the CLI
    // reports the divergence as gone.
    let fixed = ReproCase {
        spec: diverging,
        check: None,
        mutation: Mutation::None,
    };
    std::fs::write(&path, fixed.to_text()).unwrap();
    let out = unfold_cli::run(&argv(path.to_str().unwrap())).unwrap();
    assert!(out.contains("PASS"), "expected PASS in:\n{out}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Campaign repro files land on disk with the shrunk spec inside.
#[test]
fn campaign_writes_replayable_repro_files() {
    let dir = std::env::temp_dir().join(format!("unfold-verify-camp-{}", std::process::id()));
    let report = run_campaign(&CampaignConfig {
        seed: 7,
        cases: 8,
        mutation: Mutation::OltAliasing,
        only: None,
        out_dir: Some(dir.clone()),
        shrink: true,
        jobs: 2,
    })
    .expect("campaign I/O");
    assert!(!report.divergences.is_empty());
    for d in &report.divergences {
        let path = d.repro_path.as_ref().expect("repro path recorded");
        let text = std::fs::read_to_string(path).expect("repro file written");
        let parsed = ReproCase::from_text(&text).expect("repro file parses");
        assert_eq!(parsed.mutation, Mutation::OltAliasing);
        let shrunk = d.shrunk.as_ref().expect("shrink ran");
        assert_eq!(parsed.spec, shrunk.spec, "file holds the minimized spec");
        assert_eq!(parsed.check, Some(shrunk.divergence.check));
    }
    std::fs::remove_dir_all(&dir).ok();
}
