//! Simulator invariants that must hold for any decode.

use unfold::experiments::{run_baseline_on, run_unfold, run_unfold_configured};
use unfold::{System, TaskSpec};
use unfold_decoder::DecodeConfig;
use unfold_sim::AcceleratorConfig;

fn setup() -> (System, Vec<unfold_am::Utterance>) {
    let system = System::build(&TaskSpec::tiny());
    let utts = system.test_utterances(3);
    (system, utts)
}

#[test]
fn energy_components_are_nonnegative_and_sum() {
    let (system, utts) = setup();
    let run = run_unfold(&system, &utts);
    let e = &run.sim.energy;
    for (name, v) in [
        ("state", e.state_cache),
        ("am", e.am_arc_cache),
        ("lm", e.lm_arc_cache),
        ("token", e.token_cache),
        ("hash", e.hash),
        ("olt", e.offset_table),
        ("acoustic", e.acoustic_buffer),
        ("pipeline", e.pipeline),
        ("dram", e.dram),
        ("static", e.static_energy),
    ] {
        assert!(v >= 0.0, "{name} energy negative: {v}");
    }
    assert!(e.total() > 0.0);
}

#[test]
fn traffic_breakdown_sums_to_dram_stats() {
    let (system, utts) = setup();
    let run = run_unfold(&system, &utts);
    let t = &run.sim.traffic;
    let reads = t.state_bursts + t.am_arc_bursts + t.lm_arc_bursts;
    let writes = t.token_bursts + t.hash_bursts;
    assert_eq!(reads, run.sim.dram.read_bursts);
    assert_eq!(writes, run.sim.dram.write_bursts);
}

#[test]
fn smaller_caches_never_speed_things_up() {
    let (system, utts) = setup();
    let big = run_unfold_configured(
        &system,
        &utts,
        AcceleratorConfig::unfold(),
        DecodeConfig::default(),
    );
    let small = run_unfold_configured(
        &system,
        &utts,
        AcceleratorConfig::unfold().scaled_datasets(64),
        DecodeConfig::default(),
    );
    assert!(small.sim.cycles >= big.sim.cycles);
    assert!(small.sim.dram.total_bytes() >= big.sim.dram.total_bytes());
}

#[test]
fn olt_reduces_lm_cycles() {
    let (system, utts) = setup();
    let with = run_unfold_configured(
        &system,
        &utts,
        AcceleratorConfig::unfold(),
        DecodeConfig::default(),
    );
    let mut no_olt_cfg = AcceleratorConfig::unfold();
    no_olt_cfg.offset_table_entries = None;
    let without = run_unfold_configured(&system, &utts, no_olt_cfg, DecodeConfig::default());
    assert!(with.sim.cycles <= without.sim.cycles);
    assert!(with.sim.olt.probes > 0);
    assert_eq!(without.sim.olt.probes, 0);
}

#[test]
fn miss_ratios_within_unit_interval() {
    let (system, utts) = setup();
    let composed = system.composed();
    for sim in [
        run_unfold(&system, &utts).sim,
        run_baseline_on(&system, &composed, &utts).sim,
    ] {
        for (name, stats) in [
            ("state", sim.state_cache),
            ("am", sim.am_arc_cache),
            ("lm", sim.lm_arc_cache),
            ("token", sim.token_cache),
        ] {
            let r = stats.miss_ratio();
            assert!((0.0..=1.0).contains(&r), "{name} ratio {r}");
            assert!(stats.misses <= stats.accesses);
        }
    }
}

#[test]
fn audio_time_equals_frames_times_hop() {
    let (system, utts) = setup();
    let run = run_unfold(&system, &utts);
    let frames: usize = utts.iter().map(|u| u.scores.num_frames()).sum();
    assert!((run.audio_seconds - frames as f64 * 0.01).abs() < 1e-9);
}
