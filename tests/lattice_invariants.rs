//! Cross-crate tests for the exact word lattice and N-best decoding:
//! N-best against exhaustive path enumeration on tiny graphs, N=1
//! equivalence with plain 1-best decoding across every task preset, and
//! property-based structural invariants of the lattice itself
//! (frame-ordered acyclicity, lattice-beam slack, posterior mass).

use proptest::prelude::*;
use unfold::{System, TaskSpec};
use unfold_decoder::{DecodeConfig, NullSink, OtfDecoder};
use unfold_verify::{CaseModels, CaseSpec};

/// A tiny unigram case: a handful of LM states, so `paths_within` can
/// enumerate the lattice exhaustively as the N-best reference.
fn tiny_spec(seed: u64, words: Vec<u32>) -> CaseSpec {
    let mut spec = CaseSpec::derive(seed, 0);
    spec.vocab_size = 5;
    spec.phonemes = 4;
    spec.ctc = false;
    spec.sentences = 30;
    spec.min_bigram_count = u64::MAX; // unigram-only: <= 10 LM states
    spec.min_trigram_count = u64::MAX;
    spec.weight_grid = 0.0;
    spec.noise_sigma = 1.0;
    spec.word_confusion = 0.0;
    spec.words = words;
    spec.max_frames = usize::MAX;
    spec.beam = 24.0;
    spec.max_active = 6000;
    spec
}

#[test]
fn nbest_equals_exhaustive_enumeration_on_tiny_graphs() {
    let mut widest = 0usize;
    for (seed, words) in [
        (11u64, vec![1u32, 3, 2]),
        (23, vec![4, 1]),
        (35, vec![2, 2, 5, 1]),
    ] {
        let spec = tiny_spec(seed, words);
        let m = CaseModels::build(&spec);
        assert!(
            m.lm_fst.num_states() <= 10,
            "want a tiny graph, got {} LM states",
            m.lm_fst.num_states()
        );
        let lattice_beam = 20.0f32;
        let dec = OtfDecoder::new(
            DecodeConfig::builder()
                .beam(spec.beam)
                .max_active(spec.max_active)
                .lattice_beam(lattice_beam)
                .build()
                .unwrap(),
        );
        let (res, lattice) = dec.decode_lattice(&m.am.fst, &m.lm_fst, &m.utt.scores, &mut NullSink);
        assert!(res.is_complete());

        // Exhaustive reference: every distinct word sequence in the
        // lattice with its best cost.
        let all = lattice
            .paths_within(lattice.best_cost() + lattice_beam, 2_000_000)
            .expect("tiny lattice enumerates exhaustively");
        assert!(!all.is_empty());
        let mut reference: Vec<(Vec<u32>, f64)> = all.into_iter().collect();
        reference.sort_by(|a, b| a.1.total_cmp(&b.1));

        // `nbest` has no cost bound, so ask for exactly as many paths
        // as fall inside the beam: best-first order means those first
        // `reference.len()` entries must be exactly the bounded set.
        let k = reference.len();
        let nbest = dec.decode_nbest(&m.am.fst, &m.lm_fst, &m.utt.scores, k, &mut NullSink);
        assert_eq!(
            nbest.len(),
            reference.len(),
            "nbest must surface every in-beam sequence"
        );

        // Ordering, no duplicates, and per-sequence cost equality.
        let mut seen = std::collections::BTreeSet::new();
        for (i, (words, cost)) in nbest.iter().enumerate() {
            assert!(seen.insert(words.clone()), "duplicate sequence {words:?}");
            if i > 0 {
                assert!(
                    nbest[i - 1].1 <= *cost + 1e-4,
                    "nbest out of order at {i}: {} then {cost}",
                    nbest[i - 1].1
                );
            }
            let (ref_words, ref_cost) = &reference[i];
            assert!(
                (f64::from(*cost) - ref_cost).abs() <= 1e-3,
                "rank {i}: nbest cost {cost} vs exhaustive {ref_cost}"
            );
            // Cost ties may order differently; the sequence must still
            // be somewhere in the reference at the same cost.
            if words != ref_words {
                let found = reference
                    .iter()
                    .find(|(w, _)| w == words)
                    .expect("nbest sequence missing from exhaustive enumeration");
                assert!((f64::from(*cost) - found.1).abs() <= 1e-3);
            }
        }

        // Rank 0 is the exact Viterbi result.
        assert_eq!(nbest[0].0, res.words);
        assert_eq!(nbest[0].1.to_bits(), res.cost.to_bits());
        widest = widest.max(reference.len());
    }
    // The comparison must not be vacuous: at least one case has to
    // carry genuine alternatives, not a single-path lattice.
    assert!(widest > 1, "no case produced any N-best alternatives");
}

#[test]
fn nbest_of_one_equals_one_best_across_presets() {
    let mut presets = TaskSpec::all_paper_tasks();
    presets.push(TaskSpec::tiny());
    for spec in presets {
        let system = System::build(&spec);
        let dec = OtfDecoder::new(DecodeConfig::default());
        for utt in system.test_utterances(2) {
            let one = dec.decode(&system.am.fst, &system.lm_fst, &utt.scores, &mut NullSink);
            let nbest = dec.decode_nbest(
                &system.am.fst,
                &system.lm_fst,
                &utt.scores,
                1,
                &mut NullSink,
            );
            if !one.is_complete() {
                assert!(
                    nbest.is_empty(),
                    "{}: incomplete decode must yield no list",
                    spec.name
                );
                continue;
            }
            assert_eq!(nbest.len(), 1, "{}", spec.name);
            assert_eq!(nbest[0].0, one.words, "{}", spec.name);
            assert_eq!(
                nbest[0].1.to_bits(),
                one.cost.to_bits(),
                "{}: N=1 must reproduce the 1-best cost bit-exactly",
                spec.name
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Structural invariants of the pruned word lattice, over randomly
    /// derived cases and lattice beams:
    /// 1. acyclic in frame order — every arc advances the node frame
    ///    (emitting) or stays within it toward a later sort position
    ///    (epsilon);
    /// 2. every arc lies on a complete path within `lattice_beam` of
    ///    the best cost;
    /// 3. the emitting arcs of each frame carry ~1.0 posterior mass;
    /// 4. the exact Viterbi path is present with a bit-identical cost.
    #[test]
    fn lattice_structural_invariants(
        case in 0u64..64,
        lattice_beam in 2.0f32..12.0,
    ) {
        let spec = CaseSpec::derive(0x1A77, case);
        let m = CaseModels::build(&spec);
        let dec = OtfDecoder::new(
            DecodeConfig::builder()
                .beam(spec.beam)
                .max_active(spec.max_active)
                .lattice_beam(lattice_beam)
                .build()
                .unwrap(),
        );
        let (res, lattice) =
            dec.decode_lattice(&m.am.fst, &m.lm_fst, &m.utt.scores, &mut NullSink);
        if !res.is_complete() {
            prop_assert!(lattice.is_empty());
            return Ok(());
        }

        let nodes = lattice.nodes();
        for a in lattice.arcs() {
            let (from, to) = (&nodes[a.from as usize], &nodes[a.to as usize]);
            // (1a) frame-monotone: emitting arcs advance exactly one
            // frame, epsilon arcs stay within it.
            prop_assert!(
                to.frame == from.frame + 1 || (to.frame == from.frame && a.to != a.from),
                "arc {}->{} spans frames {}->{}",
                a.from, a.to, from.frame, to.frame
            );
            // (2) on a path within the lattice beam of the best cost.
            let through = from.forward + a.weight + to.backward;
            prop_assert!(
                through - lattice.best_cost() <= lattice_beam + 1e-3,
                "arc slack {} exceeds beam {lattice_beam}",
                through - lattice.best_cost()
            );
            prop_assert!((0.0..=1.0 + 1e-4).contains(&a.posterior));
        }

        // (1b) genuinely acyclic: the frame check above cannot order
        // same-frame epsilon arcs, so settle it with Kahn's algorithm.
        let mut indeg = vec![0usize; nodes.len()];
        let mut adj = vec![Vec::new(); nodes.len()];
        for a in lattice.arcs() {
            indeg[a.to as usize] += 1;
            adj[a.from as usize].push(a.to);
        }
        let mut ready: Vec<u32> =
            (0..nodes.len() as u32).filter(|&n| indeg[n as usize] == 0).collect();
        let mut visited = 0usize;
        while let Some(n) = ready.pop() {
            visited += 1;
            for &t in &adj[n as usize] {
                indeg[t as usize] -= 1;
                if indeg[t as usize] == 0 {
                    ready.push(t);
                }
            }
        }
        prop_assert!(visited == nodes.len(), "lattice contains a cycle");

        // (3) each frame's emitting arcs carry all the posterior mass.
        for t in 0..lattice.num_frames() {
            let mass = lattice.emitting_posterior_sum(t);
            prop_assert!(
                (mass - 1.0).abs() < 2e-2,
                "frame {t}: emitting posterior mass {mass}"
            );
        }

        // (4) the Viterbi path is in the lattice at the exact cost.
        prop_assert_eq!(lattice.best_cost().to_bits(), res.cost.to_bits());
        let nb = lattice.nbest(1);
        prop_assert_eq!(&nb[0].0, &res.words);
    }
}
