//! Observability listens, it never steers: whatever `TraceSink` rides a
//! decode, the `DecodeResult` must be bit-identical. These tests pin
//! the invariant for the batch decoder, the streaming decoder, and the
//! fully-composed baseline, across `NullSink`, `MetricsSink`, and a
//! `TeeSink` fan-out — plus a JSONL round-trip for the exported
//! telemetry itself.

use unfold::{System, TaskSpec};
use unfold_decoder::{
    CountingSink, DecodeConfig, DecodeResult, FullyComposedDecoder, MetricsSink, NullSink,
    OtfDecoder, OtfStream, TeeSink,
};

fn assert_identical(a: &DecodeResult, b: &DecodeResult, what: &str) {
    assert_eq!(a.words, b.words, "{what}: words differ");
    assert_eq!(a.cost.to_bits(), b.cost.to_bits(), "{what}: cost differs");
    assert_eq!(a.stats, b.stats, "{what}: stats differ");
}

#[test]
fn otf_decode_is_identical_under_every_sink() {
    let system = System::build(&TaskSpec::tiny());
    let utts = system.test_utterances(3);
    let dec = OtfDecoder::new(DecodeConfig::default());
    for utt in &utts {
        let null = dec.decode(&system.am_comp, &system.lm_comp, &utt.scores, &mut NullSink);

        let mut metrics = MetricsSink::new();
        let with_metrics = dec.decode(&system.am_comp, &system.lm_comp, &utt.scores, &mut metrics);
        assert_identical(&null, &with_metrics, "otf metrics");
        assert_eq!(
            metrics.frames().total_seen() as usize,
            null.stats.frames,
            "metrics saw a different frame count than the decode reported"
        );

        let mut metrics = MetricsSink::new();
        let mut counting = CountingSink::default();
        let mut tee = TeeSink::new(vec![&mut metrics, &mut counting]);
        let with_tee = dec.decode(&system.am_comp, &system.lm_comp, &utt.scores, &mut tee);
        assert_identical(&null, &with_tee, "otf tee");
        assert_eq!(counting.frames, null.stats.frames);
    }
}

#[test]
fn streaming_decode_is_identical_under_every_sink() {
    let system = System::build(&TaskSpec::tiny());
    let utts = system.test_utterances(2);
    let config = DecodeConfig::default();

    for utt in &utts {
        let run = |sink: &mut dyn unfold_decoder::TraceSink| -> DecodeResult {
            let mut s = OtfStream::new(config, &system.am_comp, &system.lm_comp, sink);
            for t in 0..utt.scores.num_frames() {
                s.push_frame(utt.scores.frame(t), sink);
            }
            s.finish_with(sink)
        };

        let null = run(&mut NullSink);

        let mut metrics = MetricsSink::new();
        let with_metrics = run(&mut metrics);
        assert_identical(&null, &with_metrics, "stream metrics");

        let mut metrics = MetricsSink::new();
        let mut counting = CountingSink::default();
        let mut tee = TeeSink::new(vec![&mut metrics, &mut counting]);
        let with_tee = run(&mut tee);
        assert_identical(&null, &with_tee, "stream tee");
    }
}

#[test]
fn fully_composed_decode_is_identical_under_every_sink() {
    let system = System::build(&TaskSpec::tiny());
    let utts = system.test_utterances(2);
    let composed = system.composed();
    let dec = FullyComposedDecoder::new(DecodeConfig::default());
    for utt in &utts {
        let null = dec.decode(&composed, &utt.scores, &mut NullSink);
        let mut metrics = MetricsSink::new();
        let with_metrics = dec.decode(&composed, &utt.scores, &mut metrics);
        assert_identical(&null, &with_metrics, "full metrics");
    }
}

#[test]
fn exported_telemetry_roundtrips_through_jsonl() {
    let system = System::build(&TaskSpec::tiny());
    let utts = system.test_utterances(1);
    let dec = OtfDecoder::new(DecodeConfig::default());
    let mut metrics = MetricsSink::new();
    let result = dec.decode(
        &system.am_comp,
        &system.lm_comp,
        &utts[0].scores,
        &mut metrics,
    );

    let jsonl = metrics.to_jsonl();
    let mut frames = 0usize;
    let mut spans = 0usize;
    let mut runs = 0usize;
    for line in jsonl.lines() {
        let rec = unfold_obs::ObsRecord::parse_line(line)
            .unwrap_or_else(|e| panic!("unparseable telemetry line: {e}\n{line}"));
        // Parse → serialize → parse must be a fixed point.
        let again = unfold_obs::ObsRecord::parse_line(&rec.to_json()).unwrap();
        assert_eq!(
            rec, again,
            "telemetry record not a serialization fixed point"
        );
        match rec {
            unfold_obs::ObsRecord::Frame(f) => {
                frames += 1;
                assert!(f.active_out > 0, "decode kept tokens every frame");
            }
            unfold_obs::ObsRecord::Span(_) => spans += 1,
            unfold_obs::ObsRecord::Run(counters) => {
                runs += 1;
                assert!(!counters.is_empty(), "run record carries no counters");
            }
            // Serve-side record types; a MetricsSink decode emits none.
            r @ (unfold_obs::ObsRecord::SessionSpan(_) | unfold_obs::ObsRecord::Flight(_)) => {
                panic!("decoder telemetry emitted a serve-side record: {r:?}")
            }
        }
    }
    assert_eq!(
        frames,
        result
            .stats
            .frames
            .min(unfold_obs::frame::DEFAULT_FRAME_CAPACITY)
    );
    assert!(
        spans >= 3,
        "expected span records for the decode stages, got {spans}"
    );
    assert_eq!(runs, 1, "expected exactly one run-totals record");
}
