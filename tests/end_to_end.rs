//! End-to-end integration: build a task, decode with every system
//! configuration, and check the paper's qualitative relationships.

use unfold::experiments::{run_baseline_on, run_gpu, run_unfold};
use unfold::{System, TaskSpec};

fn tiny() -> (System, Vec<unfold_am::Utterance>) {
    let system = System::build(&TaskSpec::tiny());
    let utts = system.test_utterances(4);
    (system, utts)
}

#[test]
fn unfold_beats_baseline_on_footprint_energy_bandwidth() {
    let (system, utts) = tiny();
    let composed = system.composed();
    let unf = run_unfold(&system, &utts);
    let reza = run_baseline_on(&system, &composed, &utts);

    // Footprint: the paper's headline (on tiny scale the ratio is
    // smaller but must still be large).
    let sizes = system.sizes();
    assert!(sizes.reduction_vs_composed() > 8.0);
    // Energy and bandwidth: UNFOLD below the baseline.
    assert!(unf.sim.total_energy_mj() < reza.sim.total_energy_mj());
    assert!(unf.sim.dram.total_bytes() < reza.sim.dram.total_bytes());
    // Both accelerators decode faster than real time by a large margin.
    assert!(unf.sim.times_real_time() > 10.0);
    assert!(reza.sim.times_real_time() > 10.0);
}

#[test]
fn accelerators_beat_gpu_by_orders_of_magnitude() {
    let (system, utts) = tiny();
    let unf = run_unfold(&system, &utts);
    let gpu = run_gpu(&system, &utts);
    assert!(gpu.search_seconds > unf.sim.seconds * 5.0);
    assert!(gpu.search_energy_mj > unf.sim.total_energy_mj());
}

#[test]
fn both_systems_transcribe_equally_well() {
    let (system, utts) = tiny();
    let composed = system.composed();
    let unf = run_unfold(&system, &utts);
    let reza = run_baseline_on(&system, &composed, &utts);
    assert!((unf.wer.percent() - reza.wer.percent()).abs() < 5.0);
}

#[test]
fn deterministic_end_to_end() {
    let (sys_a, utts_a) = tiny();
    let (sys_b, utts_b) = tiny();
    let a = run_unfold(&sys_a, &utts_a);
    let b = run_unfold(&sys_b, &utts_b);
    assert_eq!(a.sim.cycles, b.sim.cycles);
    assert_eq!(a.wer, b.wer);
    assert_eq!(a.stats, b.stats);
}

#[test]
fn every_paper_task_spec_builds() {
    // Full builds are exercised by the bench binaries; here we verify
    // the specs are internally consistent at reduced size.
    for mut spec in TaskSpec::all_paper_tasks() {
        spec.vocab_size = 120;
        spec.num_sentences = 800;
        let system = System::build(&spec);
        let utts = system.test_utterances(2);
        let run = run_unfold(&system, &utts);
        assert!(run.sim.cycles > 0, "{} produced no work", spec.name);
        assert!(run.wer.ref_words > 0);
    }
}

#[test]
fn clean_presets_transcribe_exactly() {
    // Stronger than the WER bounds above: with the noise knobs zeroed,
    // every synthetic preset must recover the reference transcript
    // *exactly* — any systematic decode error shows up here even when
    // it stays under a WER threshold.
    use unfold_am::NoiseModel;
    use unfold_decoder::{DecodeConfig, NullSink, OtfDecoder};

    let mut specs = TaskSpec::all_paper_tasks();
    specs.push(TaskSpec::tiny());
    for mut spec in specs {
        spec.vocab_size = 120;
        spec.num_sentences = 800;
        spec.scoring = unfold::ScoringSynth::Table;
        spec.noise = NoiseModel {
            noise_sigma: 0.05,
            confusion_prob: 0.0,
            word_confusion_prob: 0.0,
            ..NoiseModel::default()
        };
        let system = System::build(&spec);
        let decoder = OtfDecoder::new(DecodeConfig::default());
        for (i, utt) in system.test_utterances(3).iter().enumerate() {
            let res = decoder.decode(&system.am.fst, &system.lm_fst, &utt.scores, &mut NullSink);
            assert_eq!(
                res.words, utt.words,
                "{} utt {i}: clean decode must be exact",
                spec.name
            );
        }
    }
}

#[test]
fn decode_batch_handles_empty_and_one_frame_batches() {
    use unfold_am::AcousticScores;
    use unfold_decoder::{DecodeConfig, DecodeResult, NullSink, OtfDecoder};

    let (system, utts) = tiny();
    let decoder = OtfDecoder::new(DecodeConfig::default());
    let decode_one =
        |_i: usize, utt: &unfold_am::Utterance, scratch: &mut unfold_decoder::DecodeScratch| {
            decoder.decode_with(
                &system.am_comp,
                &system.lm_comp,
                &utt.scores,
                scratch,
                &mut NullSink,
            )
        };

    // Zero utterances: no workers panic, telemetry stays sane.
    let empty: Vec<unfold_am::Utterance> = Vec::new();
    let (results, pool) = unfold::decode_batch(&empty, 4, decode_one);
    assert!(results.is_empty());
    assert!(pool.workers <= 1, "an empty batch needs no worker pool");

    // A batch containing a 1-frame and a 0-frame utterance decodes
    // without panicking and matches the serial path bit for bit.
    let num_pdfs = utts[0].scores.num_pdfs();
    let one_frame = unfold_am::Utterance {
        words: utts[0].words.clone(),
        alignment: utts[0].alignment.iter().take(1).copied().collect(),
        scores: AcousticScores::from_flat(utts[0].scores.frame(0).to_vec(), num_pdfs),
    };
    let zero_frame = unfold_am::Utterance {
        words: Vec::new(),
        alignment: Vec::new(),
        scores: AcousticScores::from_flat(Vec::new(), num_pdfs),
    };
    let batch = vec![one_frame, zero_frame];
    let (serial, _) = unfold::decode_batch(&batch, 1, decode_one);
    let (parallel, pool) = unfold::decode_batch(&batch, 8, decode_one);
    assert!(pool.workers <= batch.len(), "pool must clamp to batch size");
    let bits = |r: &DecodeResult| (r.words.clone(), r.cost.to_bits(), r.stats);
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(bits(a), bits(b));
    }
    assert_eq!(serial[0].stats.frames, 1);
    assert_eq!(serial[1].stats.frames, 0);
    assert!(serial[1].words.is_empty());
}

#[test]
fn bigram_only_grammar_is_supported() {
    // §5.3: "supporting any grammar (bigram, trigram, pentagram...)".
    // Pruning every trigram yields a pure bigram LM; the whole pipeline
    // (WFST conversion, compression, decoding) must still work.
    let mut spec = TaskSpec::tiny();
    spec.discount = unfold_lm::DiscountConfig {
        min_trigram_count: u64::MAX,
        ..Default::default()
    };
    let system = System::build(&spec);
    assert_eq!(
        system.lm_model.num_trigrams(),
        0,
        "trigrams must all be pruned"
    );
    // The LM WFST collapses to root + unigram-history states.
    assert_eq!(system.lm_fst.num_states(), 1 + spec.vocab_size);
    let utts = system.test_utterances(3);
    let run = run_unfold(&system, &utts);
    assert!(
        run.wer.percent() < 60.0,
        "bigram decode degenerated: {}",
        run.wer.percent()
    );
    assert!(run.sim.cycles > 0);
}

#[test]
fn real_gmm_scoring_decodes_and_errors_track_separation() {
    // The GMM substrate: feature vectors sampled from per-PDF Gaussians
    // and scored with real likelihood arithmetic. Well-separated models
    // decode near-perfectly; overlapping ones err — no injected
    // confusion involved.
    use unfold_am::{build_am, synthesize_utterance_gmm, GmmModel, HmmTopology, Lexicon};
    use unfold_decoder::{wer, DecodeConfig, NullSink, OtfDecoder, WerReport};
    use unfold_lm::{lm_to_wfst, CorpusSpec, NGramModel};

    let lex = Lexicon::generate(60, 20, 21);
    let am = build_am(&lex, HmmTopology::Kaldi3State);
    let spec = CorpusSpec {
        vocab_size: 60,
        num_sentences: 400,
        ..Default::default()
    };
    let model = NGramModel::train(&spec.generate(22), 60, Default::default());
    let lm = lm_to_wfst(&model);
    let decoder = OtfDecoder::new(DecodeConfig::default());

    let run = |separation: f32| -> f64 {
        let gmm = GmmModel::synthesize(am.num_pdfs, 12, 2, separation, 23);
        let mut rep = WerReport::default();
        for seed in 0..6u64 {
            let words = [
                (seed as u32 % 60) + 1,
                ((seed as u32 * 11) % 60) + 1,
                ((seed as u32 * 5) % 60) + 1,
            ];
            let utt = synthesize_utterance_gmm(&words, &lex, HmmTopology::Kaldi3State, &gmm, seed);
            let res = decoder.decode(&am.fst, &lm, &utt.scores, &mut NullSink);
            rep.accumulate(wer(&utt.words, &res.words));
        }
        rep.percent()
    };

    let clean = run(6.0);
    let noisy = run(0.15);
    assert!(clean < 10.0, "separated GMM should be near-exact: {clean}%");
    assert!(
        noisy > clean + 10.0,
        "heavy overlap must produce word errors: {noisy}% vs {clean}%"
    );
}
