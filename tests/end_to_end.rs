//! End-to-end integration: build a task, decode with every system
//! configuration, and check the paper's qualitative relationships.

use unfold::experiments::{run_baseline_on, run_gpu, run_unfold};
use unfold::{System, TaskSpec};

fn tiny() -> (System, Vec<unfold_am::Utterance>) {
    let system = System::build(&TaskSpec::tiny());
    let utts = system.test_utterances(4);
    (system, utts)
}

#[test]
fn unfold_beats_baseline_on_footprint_energy_bandwidth() {
    let (system, utts) = tiny();
    let composed = system.composed();
    let unf = run_unfold(&system, &utts);
    let reza = run_baseline_on(&system, &composed, &utts);

    // Footprint: the paper's headline (on tiny scale the ratio is
    // smaller but must still be large).
    let sizes = system.sizes();
    assert!(sizes.reduction_vs_composed() > 8.0);
    // Energy and bandwidth: UNFOLD below the baseline.
    assert!(unf.sim.total_energy_mj() < reza.sim.total_energy_mj());
    assert!(unf.sim.dram.total_bytes() < reza.sim.dram.total_bytes());
    // Both accelerators decode faster than real time by a large margin.
    assert!(unf.sim.times_real_time() > 10.0);
    assert!(reza.sim.times_real_time() > 10.0);
}

#[test]
fn accelerators_beat_gpu_by_orders_of_magnitude() {
    let (system, utts) = tiny();
    let unf = run_unfold(&system, &utts);
    let gpu = run_gpu(&system, &utts);
    assert!(gpu.search_seconds > unf.sim.seconds * 5.0);
    assert!(gpu.search_energy_mj > unf.sim.total_energy_mj());
}

#[test]
fn both_systems_transcribe_equally_well() {
    let (system, utts) = tiny();
    let composed = system.composed();
    let unf = run_unfold(&system, &utts);
    let reza = run_baseline_on(&system, &composed, &utts);
    assert!((unf.wer.percent() - reza.wer.percent()).abs() < 5.0);
}

#[test]
fn deterministic_end_to_end() {
    let (sys_a, utts_a) = tiny();
    let (sys_b, utts_b) = tiny();
    let a = run_unfold(&sys_a, &utts_a);
    let b = run_unfold(&sys_b, &utts_b);
    assert_eq!(a.sim.cycles, b.sim.cycles);
    assert_eq!(a.wer, b.wer);
    assert_eq!(a.stats, b.stats);
}

#[test]
fn every_paper_task_spec_builds() {
    // Full builds are exercised by the bench binaries; here we verify
    // the specs are internally consistent at reduced size.
    for mut spec in TaskSpec::all_paper_tasks() {
        spec.vocab_size = 120;
        spec.num_sentences = 800;
        let system = System::build(&spec);
        let utts = system.test_utterances(2);
        let run = run_unfold(&system, &utts);
        assert!(run.sim.cycles > 0, "{} produced no work", spec.name);
        assert!(run.wer.ref_words > 0);
    }
}

#[test]
fn bigram_only_grammar_is_supported() {
    // §5.3: "supporting any grammar (bigram, trigram, pentagram...)".
    // Pruning every trigram yields a pure bigram LM; the whole pipeline
    // (WFST conversion, compression, decoding) must still work.
    let mut spec = TaskSpec::tiny();
    spec.discount = unfold_lm::DiscountConfig {
        min_trigram_count: u64::MAX,
        ..Default::default()
    };
    let system = System::build(&spec);
    assert_eq!(
        system.lm_model.num_trigrams(),
        0,
        "trigrams must all be pruned"
    );
    // The LM WFST collapses to root + unigram-history states.
    assert_eq!(system.lm_fst.num_states(), 1 + spec.vocab_size);
    let utts = system.test_utterances(3);
    let run = run_unfold(&system, &utts);
    assert!(
        run.wer.percent() < 60.0,
        "bigram decode degenerated: {}",
        run.wer.percent()
    );
    assert!(run.sim.cycles > 0);
}

#[test]
fn real_gmm_scoring_decodes_and_errors_track_separation() {
    // The GMM substrate: feature vectors sampled from per-PDF Gaussians
    // and scored with real likelihood arithmetic. Well-separated models
    // decode near-perfectly; overlapping ones err — no injected
    // confusion involved.
    use unfold_am::{build_am, synthesize_utterance_gmm, GmmModel, HmmTopology, Lexicon};
    use unfold_decoder::{wer, DecodeConfig, NullSink, OtfDecoder, WerReport};
    use unfold_lm::{lm_to_wfst, CorpusSpec, NGramModel};

    let lex = Lexicon::generate(60, 20, 21);
    let am = build_am(&lex, HmmTopology::Kaldi3State);
    let spec = CorpusSpec {
        vocab_size: 60,
        num_sentences: 400,
        ..Default::default()
    };
    let model = NGramModel::train(&spec.generate(22), 60, Default::default());
    let lm = lm_to_wfst(&model);
    let decoder = OtfDecoder::new(DecodeConfig::default());

    let run = |separation: f32| -> f64 {
        let gmm = GmmModel::synthesize(am.num_pdfs, 12, 2, separation, 23);
        let mut rep = WerReport::default();
        for seed in 0..6u64 {
            let words = [
                (seed as u32 % 60) + 1,
                ((seed as u32 * 11) % 60) + 1,
                ((seed as u32 * 5) % 60) + 1,
            ];
            let utt = synthesize_utterance_gmm(&words, &lex, HmmTopology::Kaldi3State, &gmm, seed);
            let res = decoder.decode(&am.fst, &lm, &utt.scores, &mut NullSink);
            rep.accumulate(wer(&utt.words, &res.words));
        }
        rep.percent()
    };

    let clean = run(6.0);
    let noisy = run(0.15);
    assert!(clean < 10.0, "separated GMM should be near-exact: {clean}%");
    assert!(
        noisy > clean + 10.0,
        "heavy overlap must produce word errors: {noisy}% vs {clean}%"
    );
}
